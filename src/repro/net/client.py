"""The network client: :class:`RemoteConnection`.

``connect("graql://host:port")`` returns one of these — the same
:class:`~repro.serve.connection.Connection` ABC as the in-process
transports, so cursors, prepared statements and
:class:`~repro.storage.table.Row` behave identically; the difference is
that statements execute inside the :class:`~repro.net.GraqlServer` at
the other end of the socket.

Result tables are **streamed**: ``execute`` drains the stream and hands
back fully-materialized results, while a :class:`Cursor` consumes BATCH
frames off the socket as the consumer advances — ``fetchmany(n)`` on a
million-row result pulls only the frames it needs.  One request runs at
a time per connection (the protocol is strictly request/response); a
new request on a connection with an unfinished cursor first buffers the
remaining frames so the cursor still completes from memory.

Server-side errors arrive as one ERROR frame and re-raise here as the
originating :mod:`repro.errors` class with its attributes intact
(``ServerBusy.reason``, ``ParseError.line``/``column``, ...), plus the
server's request span under ``remote_span``.

The connection is **self-healing** (docs/REPLICATION.md):

* ``connect("graql://h1:p1,h2:p2")`` takes a comma-separated endpoint
  list and dials the first that answers;
* a transport fault (peer vanished, reset, corrupt frame) during an
  **idempotent** request — any script with no write statements, or a
  PREPARE — is retried on a fresh connection with capped exponential
  backoff plus jitter, walking the endpoint list.  Non-idempotent
  statements and exhausted retries poison the connection (every later
  call fails fast with :class:`~repro.errors.ClosedError`): a write
  interrupted mid-flight is ambiguous and must surface;
* a :class:`~repro.errors.NotPrimary` rejection (the endpoint is a
  read-only replica) is followed as a redirect — the statement never
  ran, so this is safe for writes too — re-dialing the primary the
  error names, or re-walking the endpoint list after a failover until
  a writable node answers;
* prepared statements survive reconnects: the server-side statement id
  dies with the session, so they transparently re-prepare on the new
  connection.

The one non-healing window is a cursor mid-stream: rows already handed
to the application cannot be glued to a retried stream, so the cursor's
consumer sees :class:`~repro.errors.ProtocolError` — but the
*connection* recovers on its next request instead of poisoning.

A ``RemoteConnection`` is not thread-safe — it is one socket carrying
one conversation.  Open one connection per thread; the server end
multiplexes them through its admission-controlled engine.
"""

from __future__ import annotations

import random
import socket
import time
from collections import deque
from typing import Any, Callable, Iterator, Mapping, Optional, Tuple
from urllib.parse import urlsplit

from repro.errors import ClosedError, GraQLError, NotPrimary, ProtocolError
from repro.net.frame import (
    FT_BATCH,
    FT_BYE,
    FT_DONE,
    FT_ERROR,
    FT_EXEC_PREPARED,
    FT_EXECUTE,
    FT_HELLO,
    FT_HELLO_OK,
    FT_PING,
    FT_PONG,
    FT_PREPARE,
    FT_PREPARED,
    FT_RESULT,
    FrameSocket,
    PROTOCOL_VERSION,
)
from repro.net.protocol import (
    decode_error,
    decode_result,
    encode_options,
    table_from_meta,
)
from repro.obs.options import QueryOptions
from repro.query.executor import StatementResult
from repro.serve.connection import (
    BasePreparedStatement,
    Connection,
    CursorExec,
    DEFAULT_BATCH_ROWS,
)
from repro.storage.table import Row

#: bounded-retry defaults for idempotent requests (docs/REPLICATION.md)
DEFAULT_RETRY_ATTEMPTS = 5
DEFAULT_MAX_REDIRECTS = 5
RETRY_BASE_DELAY = 0.05
RETRY_MAX_DELAY = 1.0


def parse_url(url: str) -> Tuple[str, int]:
    """``graql://host:port`` -> ``(host, port)`` (single endpoint)."""
    parts = urlsplit(url)
    if parts.scheme != "graql":
        raise ProtocolError(f"not a graql:// URL: {url!r}")
    if not parts.hostname or parts.port is None:
        raise ProtocolError(
            f"a graql:// URL needs host and port, got {url!r}"
        )
    return parts.hostname, parts.port


def parse_endpoints(url: str) -> list[Tuple[str, int]]:
    """``graql://h1:p1,h2:p2,...`` -> ordered ``(host, port)`` list.

    The multi-endpoint form names the nodes of one replicated
    deployment; the client dials them in order until one answers.
    """
    if not url.startswith("graql://"):
        raise ProtocolError(f"not a graql:// URL: {url!r}")
    netloc = url[len("graql://"):].split("/", 1)[0]
    endpoints = []
    for part in netloc.split(","):
        part = part.strip()
        if not part:
            continue
        endpoints.append(parse_url(f"graql://{part}"))
    if not endpoints:
        raise ProtocolError(f"a graql:// URL needs host and port, got {url!r}")
    return endpoints


def ping(url: str, *, timeout: float = 5.0) -> dict[str, Any]:
    """One PING/PONG exchange with the first answering endpoint.

    Served by the node without authentication or an admission-queue
    entry, so it answers even when the engine is saturated.  Returns
    the PONG payload — role, WAL position, replication epoch, primary
    URL and per-replica lag — plus the measured ``rtt_s`` and the
    ``endpoint`` that answered.
    """
    last: Optional[Exception] = None
    for host, port in parse_endpoints(url):
        t0 = time.perf_counter()
        try:
            sock = socket.create_connection((host, port), timeout=timeout)
        except OSError as e:
            last = ProtocolError(f"cannot connect to graql://{host}:{port}: {e}")
            continue
        fs = FrameSocket(sock)
        try:
            sock.settimeout(timeout)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            fs.send_magic()
            fs.send_frame(FT_PING, {})
            ftype, payload = fs.recv_frame()
            if ftype == FT_ERROR:
                raise decode_error(payload)
            if ftype != FT_PONG:
                raise ProtocolError(f"expected PONG, got frame type {ftype}")
            payload["rtt_s"] = round(time.perf_counter() - t0, 6)
            payload["endpoint"] = f"graql://{host}:{port}"
            return payload
        except (ProtocolError, socket.timeout) as e:
            last = e
            continue
        finally:
            fs.close()
    assert last is not None
    raise last


class RemoteConnection(Connection):
    """A TCP client session against a :class:`~repro.net.GraqlServer`."""

    def __init__(
        self,
        url: str,
        user: str = "admin",
        *,
        connect_timeout: float = 10.0,
        request_timeout: Optional[float] = None,
        batch_rows: int = DEFAULT_BATCH_ROWS,
        retry_attempts: int = DEFAULT_RETRY_ATTEMPTS,
        max_redirects: int = DEFAULT_MAX_REDIRECTS,
    ) -> None:
        #: the deployment's endpoints, in dialing order; NotPrimary
        #: redirects push the named primary to the front
        self.endpoints = parse_endpoints(url)
        self.batch_rows = max(1, int(batch_rows))
        self.connect_timeout = connect_timeout
        self.request_timeout = request_timeout
        self.retry_attempts = max(0, int(retry_attempts))
        self.max_redirects = max(0, int(max_redirects))
        super().__init__(user)
        self._fs: Optional[FrameSocket] = None
        self._active: Optional[_ResultStream] = None
        self._broken = False
        #: bumped per successful dial; prepared statements re-prepare
        #: when their generation is stale
        self._generation = 0
        self.url = ""
        self._connect_once()

    # ------------------------------------------------------------------
    # Dialing / healing
    # ------------------------------------------------------------------
    def _connect_once(self) -> None:
        """One pass over the endpoint list; first success wins.

        Transport failures move on to the next endpoint; a typed server
        rejection (bad user, version mismatch) raises immediately — no
        other endpoint would answer differently.
        """
        last: Optional[Exception] = None
        for host, port in self.endpoints:
            try:
                self._dial(host, port)
                return
            except (ProtocolError, socket.timeout) as e:
                last = e
        assert last is not None
        raise last

    def _dial(self, host: str, port: int) -> None:
        try:
            sock = socket.create_connection(
                (host, port), timeout=self.connect_timeout
            )
        except OSError as e:
            raise ProtocolError(
                f"cannot connect to graql://{host}:{port}: {e}"
            ) from e
        sock.settimeout(self.request_timeout)
        # frames are small and the protocol is request/response: without
        # TCP_NODELAY, Nagle + delayed-ACK stalls every exchange ~40ms
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        fs = FrameSocket(sock)
        try:
            fs.send_magic()
            fs.send_frame(FT_HELLO, {"proto": PROTOCOL_VERSION, "user": self.user})
            ftype, payload = fs.recv_frame()
            if ftype == FT_ERROR:
                raise decode_error(payload)
            if ftype != FT_HELLO_OK:
                raise ProtocolError(
                    f"expected HELLO_OK to open the session, got frame type {ftype}"
                )
        except BaseException:
            fs.close()
            raise
        self._fs = fs
        self._broken = False
        self._active = None
        self._generation += 1
        self.url = f"graql://{host}:{port}"
        #: server-assigned connection id (appears in request spans)
        self.session_id = payload.get("session")
        #: the server's stream batch size (== DEFAULT_BATCH_ROWS unless
        #: the server was tuned)
        self.server_batch_rows = payload.get("batch_rows")

    def _reconnect(self) -> None:
        if self._fs is not None:
            self._fs.close()
        self._active = None
        self._connect_once()

    def _adopt_primary(self, primary_url: str) -> None:
        """A NotPrimary redirect named the primary: dial it first."""
        try:
            endpoint = parse_endpoints(primary_url)[0]
        except ProtocolError:
            return  # a malformed hint never breaks the endpoint list
        if endpoint in self.endpoints:
            self.endpoints.remove(endpoint)
        self.endpoints.insert(0, endpoint)

    def _rotate_endpoints(self) -> None:
        """No primary hint: try the endpoints in a different order."""
        if len(self.endpoints) > 1:
            self.endpoints.append(self.endpoints.pop(0))

    @staticmethod
    def _backoff(attempt: int) -> None:
        delay = min(RETRY_BASE_DELAY * (2 ** attempt), RETRY_MAX_DELAY)
        time.sleep(delay * (0.5 + random.random() / 2))  # full-ish jitter

    def _run_with_healing(
        self, fn: Callable[[], Any], *, idempotent: bool
    ) -> Any:
        """Run one request, healing the transport around it.

        Transport faults reconnect-and-retry (bounded, backed off) when
        *idempotent*; otherwise they poison.  NotPrimary redirects are
        followed for any statement — the server rejected it before
        executing, so nothing ran.
        """
        attempts = 0
        redirects = 0
        while True:
            try:
                self._check_open()
                if self._broken or self._fs is None:
                    self._reconnect()
                return fn()
            except NotPrimary as e:
                if redirects >= self.max_redirects:
                    raise
                redirects += 1
                if e.primary:
                    self._adopt_primary(e.primary)
                else:
                    # mid-failover: nobody claims the crown yet; back
                    # off and re-walk the deployment
                    self._rotate_endpoints()
                    self._backoff(redirects - 1)
                self._drop_transport()
            except (ProtocolError, socket.timeout):
                if not idempotent or attempts >= self.retry_attempts:
                    self._poison()
                    raise
                attempts += 1
                self._drop_transport()
                self._backoff(attempts - 1)

    def _drop_transport(self) -> None:
        """Mark the transport dead; the next attempt re-dials."""
        self._broken = True
        self._active = None
        if self._fs is not None:
            self._fs.close()

    @staticmethod
    def _source_is_write(source: str) -> bool:
        """Client-side idempotency classification: same rule as the
        server's admission (:func:`repro.serve.engine.script_is_write`).
        An unparseable script is classified read — nothing would ever
        execute, so retrying it is harmless."""
        from repro.graql.parser import parse_script
        from repro.serve.engine import script_is_write

        try:
            return script_is_write(parse_script(source))
        except GraQLError:
            return False

    # ------------------------------------------------------------------
    # Execution surface (Connection ABC)
    # ------------------------------------------------------------------
    def execute(
        self,
        source: str,
        params: Optional[Mapping[str, Any]] = None,
        options: Optional[QueryOptions] = None,
        timeout_s: Optional[float] = None,
    ) -> list[StatementResult]:
        payload = self._execute_payload(
            source, params, options, timeout_s, self.batch_rows
        )

        def attempt() -> list[StatementResult]:
            stream = self._request_stream(FT_EXECUTE, payload)
            stream.drain()
            return stream.results

        return self._run_with_healing(
            attempt, idempotent=not self._source_is_write(source)
        )

    def prepare(self, source: str) -> "RemotePreparedStatement":
        # PREPARE only compiles — always safe to retry
        payload = self._run_with_healing(
            lambda: self._prepare_raw(source), idempotent=True
        )
        return RemotePreparedStatement(self, source, payload)

    def _prepare_raw(self, source: str) -> dict[str, Any]:
        self._check_open()
        self._settle()
        self._fs.send_frame(FT_PREPARE, {"source": source})
        ftype, payload = self._recv()
        if ftype == FT_ERROR:
            raise decode_error(payload)
        if ftype != FT_PREPARED:
            self._drop_transport()
            raise ProtocolError(f"expected PREPARED, got frame type {ftype}")
        return payload

    def _cursor_run(
        self,
        source: str,
        params: Optional[Mapping[str, Any]],
        options: Optional[QueryOptions],
        batch_size: int,
    ) -> CursorExec:
        payload = self._execute_payload(source, params, options, None, batch_size)
        # healing covers establishing the stream; a fault mid-cursor
        # surfaces to the consumer (rows already handed out cannot be
        # glued to a retried stream)
        stream = self._run_with_healing(
            lambda: self._request_stream(FT_EXECUTE, payload),
            idempotent=not self._source_is_write(source),
        )
        return stream.cursor_exec()

    # ------------------------------------------------------------------
    # Wire plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _execute_payload(source, params, options, timeout_s, batch_rows):
        payload: dict[str, Any] = {
            "source": source,
            "batch_rows": batch_rows,
        }
        if params:
            payload["params"] = dict(params)
        opts = encode_options(options)
        if opts is not None:
            payload["options"] = opts
        if timeout_s is not None:
            payload["timeout_s"] = timeout_s
        return payload

    def _request_stream(self, ftype: int, payload: dict) -> "_ResultStream":
        self._check_open()
        self._settle()
        self._fs.send_frame(ftype, payload)
        rt, rp = self._recv()
        if rt == FT_ERROR:
            raise decode_error(rp)
        if rt != FT_RESULT:
            self._drop_transport()
            raise ProtocolError(f"expected RESULT, got frame type {rt}")
        stream = _ResultStream(self, rp)
        if not stream.done:
            self._active = stream
        return stream

    def _recv(self) -> Tuple[int, dict]:
        """One frame; a transport failure breaks (not poisons) the
        connection — the healing wrapper or the next request re-dials."""
        try:
            return self._fs.recv_frame()
        except (ProtocolError, socket.timeout):
            self._drop_transport()
            raise

    def _settle(self) -> None:
        """Buffer any unfinished stream so the socket is request-clean."""
        if self._active is not None:
            self._active.buffer_remaining()

    def _poison(self) -> None:
        """Unrecoverable: a write died mid-flight or retries ran out."""
        self._closed = True
        self._active = None
        if self._fs is not None:
            self._fs.close()

    # ------------------------------------------------------------------
    def _do_close(self) -> None:
        try:
            if not self._broken and self._fs is not None:
                self._settle()
                self._fs.send_frame(FT_BYE, {})
        except (ProtocolError, OSError, socket.timeout):
            pass
        self._active = None
        if self._fs is not None:
            self._fs.close()

    def _abort(self) -> None:
        """Tear the socket down with no goodbye (tests use this to
        simulate a client dying mid-stream)."""
        self._closed = True
        self._active = None
        if self._fs is not None:
            self._fs.close()

    def __repr__(self) -> str:
        state = (
            "closed" if self._closed
            else "broken" if self._broken else "open"
        )
        return f"RemoteConnection({self.url}, user={self.user!r}, {state})"


class RemotePreparedStatement(BasePreparedStatement):
    """A statement compiled once inside the server's session.

    The client holds only the server-assigned id plus the metadata
    needed for parity with the in-process
    :class:`~repro.serve.connection.PreparedStatement`: ``param_names``
    (missing bindings raise :class:`~repro.errors.TypeCheckError`
    before any bytes move) and ``ir_size``.  The id is session-scoped,
    so after the connection heals onto a new session the statement
    re-prepares itself transparently (same source, new pid).
    """

    def __init__(self, connection: RemoteConnection, source: str, payload) -> None:
        self.connection = connection
        self.source = source
        self._load(payload)
        self._generation = connection._generation

    def _load(self, payload) -> None:
        self.pid = int(payload["pid"])
        self.param_names = tuple(payload.get("params") or ())
        #: binary IR bytes the server compiled for this statement
        self.ir_size = int(payload.get("ir_bytes", 0))
        self.num_statements = int(payload.get("statements", 0))

    def _refresh(self) -> None:
        """Re-prepare on the current session if ours died with an old
        connection (called inside the healing loop, so a reconnect
        mid-request re-prepares before the retry)."""
        conn = self.connection
        if self._generation != conn._generation:
            self._load(conn._prepare_raw(self.source))
            self._generation = conn._generation

    def _payload(self, params, options, batch_rows) -> dict[str, Any]:
        payload: dict[str, Any] = {"pid": self.pid, "batch_rows": batch_rows}
        if params:
            payload["params"] = dict(params)
        opts = encode_options(options)
        if opts is not None:
            payload["options"] = opts
        return payload

    def execute(
        self,
        params: Optional[Mapping[str, Any]] = None,
        options: Optional[QueryOptions] = None,
    ) -> list[StatementResult]:
        conn = self.connection
        conn._check_open()
        self._require_params(params)

        def attempt() -> list[StatementResult]:
            self._refresh()
            stream = conn._request_stream(
                FT_EXEC_PREPARED,
                self._payload(params, options, conn.batch_rows),
            )
            stream.drain()
            return stream.results

        return self._run(attempt)

    def _cursor_exec(
        self,
        params: Optional[Mapping[str, Any]],
        options: Optional[QueryOptions],
        batch_size: int,
    ) -> CursorExec:
        conn = self.connection
        conn._check_open()
        self._require_params(params)

        def attempt() -> "_ResultStream":
            self._refresh()
            return conn._request_stream(
                FT_EXEC_PREPARED, self._payload(params, options, batch_size)
            )

        return self._run(attempt).cursor_exec()

    def _run(self, attempt):
        return self.connection._run_with_healing(
            attempt,
            idempotent=not self.connection._source_is_write(self.source),
        )

    def __repr__(self) -> str:
        return (
            f"RemotePreparedStatement(pid={self.pid}, "
            f"{self.num_statements} stmts, params={list(self.param_names)}, "
            f"ir={self.ir_size}B)"
        )


class _ResultStream:
    """One request's response: the RESULT header plus its row stream.

    Rows accumulate as they arrive so that, once DONE is seen, the
    streamed table materializes and is patched into its
    :class:`StatementResult` — after full consumption a remote result
    list is indistinguishable from a local one.
    """

    def __init__(self, conn: RemoteConnection, header: dict) -> None:
        self.conn = conn
        self.results = [decode_result(p) for p in header["results"]]
        self.stream = header.get("stream")
        self.done = False
        self._buffered: deque[list[Row]] = deque()
        self._rows: list[tuple] = []
        self._exec: Optional[CursorExec] = None
        if self.stream is not None:
            idx = int(self.stream["index"])
            self.meta = header["results"][idx]["table"]
            self._row_cls = Row.make_class(
                [str(name) for name, _ in self.meta["columns"]]
            )
        else:
            self.meta = None
            # no table to stream: consume the DONE right away so the
            # conversation is immediately request-clean
            self._pull()

    # ------------------------------------------------------------------
    def _pull(self) -> Optional[list[Row]]:
        """Read one stream frame; a batch of rows, or None at DONE."""
        ftype, payload = self.conn._recv()
        if ftype == FT_BATCH:
            raw = [tuple(r) for r in payload["rows"]]
            self._rows.extend(raw)
            return [self._row_cls(r) for r in raw]
        if ftype == FT_DONE:
            self._finish()
            return None
        if ftype == FT_ERROR:
            self.done = True
            self.conn._active = None
            raise decode_error(payload)
        self.conn._drop_transport()
        raise ProtocolError(
            f"expected BATCH/DONE/ERROR in a result stream, got type {ftype}"
        )

    def _finish(self) -> None:
        self.done = True
        if self.conn._active is self:
            self.conn._active = None
        if self.stream is not None:
            idx = int(self.stream["index"])
            table = table_from_meta(self.meta, self._rows)
            self.results[idx].table = table
            if self._exec is not None:
                self._exec.table = table

    def next_batch(self) -> Optional[list[Row]]:
        if self._buffered:
            return self._buffered.popleft()
        if self.done:
            return None
        return self._pull()

    def drain(self) -> None:
        """Consume the stream to completion (materializes the table)."""
        self._buffered.clear()
        while not self.done:
            self._pull()

    def buffer_remaining(self) -> None:
        """Pull the rest of the stream into memory (another request
        needs the socket); an attached cursor keeps reading from the
        buffer."""
        while not self.done:
            batch = self._pull()
            if batch:
                self._buffered.append(batch)

    # ------------------------------------------------------------------
    def _batches(self) -> Iterator[list[Row]]:
        while True:
            batch = self.next_batch()
            if batch is None:
                return
            yield batch

    def cursor_exec(self) -> CursorExec:
        if self.stream is None:
            return CursorExec(self.results, None, -1, None, None)
        description = [
            (str(name), str(ddl)) for name, ddl in self.meta["columns"]
        ]
        ex = CursorExec(
            self.results,
            None,  # patched in at DONE
            int(self.stream["num_rows"]),
            description,
            self._batches(),
            finish=self.buffer_remaining,
        )
        self._exec = ex
        return ex
