"""The network client: :class:`RemoteConnection`.

``connect("graql://host:port")`` returns one of these — the same
:class:`~repro.serve.connection.Connection` ABC as the in-process
transports, so cursors, prepared statements and
:class:`~repro.storage.table.Row` behave identically; the difference is
that statements execute inside the :class:`~repro.net.GraqlServer` at
the other end of the socket.

Result tables are **streamed**: ``execute`` drains the stream and hands
back fully-materialized results, while a :class:`Cursor` consumes BATCH
frames off the socket as the consumer advances — ``fetchmany(n)`` on a
million-row result pulls only the frames it needs.  One request runs at
a time per connection (the protocol is strictly request/response); a
new request on a connection with an unfinished cursor first buffers the
remaining frames so the cursor still completes from memory.

Server-side errors arrive as one ERROR frame and re-raise here as the
originating :mod:`repro.errors` class with its attributes intact
(``ServerBusy.reason``, ``ParseError.line``/``column``, ...), plus the
server's request span under ``remote_span``.  A connection-fatal
transport failure (peer vanished, corrupt frame) raises
:class:`~repro.errors.ProtocolError` and poisons the connection: every
later call fails fast with :class:`~repro.errors.ClosedError`.

A ``RemoteConnection`` is not thread-safe — it is one socket carrying
one conversation.  Open one connection per thread; the server end
multiplexes them through its admission-controlled engine.
"""

from __future__ import annotations

import socket
from collections import deque
from typing import Any, Iterator, Mapping, Optional, Tuple
from urllib.parse import urlsplit

from repro.errors import ClosedError, ProtocolError
from repro.net.frame import (
    FT_BATCH,
    FT_BYE,
    FT_DONE,
    FT_ERROR,
    FT_EXEC_PREPARED,
    FT_EXECUTE,
    FT_HELLO,
    FT_HELLO_OK,
    FT_PREPARE,
    FT_PREPARED,
    FT_RESULT,
    FrameSocket,
    PROTOCOL_VERSION,
)
from repro.net.protocol import (
    decode_error,
    decode_result,
    encode_options,
    table_from_meta,
)
from repro.obs.options import QueryOptions
from repro.query.executor import StatementResult
from repro.serve.connection import (
    BasePreparedStatement,
    Connection,
    CursorExec,
    DEFAULT_BATCH_ROWS,
)
from repro.storage.table import Row


def parse_url(url: str) -> Tuple[str, int]:
    """``graql://host:port`` -> ``(host, port)``."""
    parts = urlsplit(url)
    if parts.scheme != "graql":
        raise ProtocolError(f"not a graql:// URL: {url!r}")
    if not parts.hostname or parts.port is None:
        raise ProtocolError(
            f"a graql:// URL needs host and port, got {url!r}"
        )
    return parts.hostname, parts.port


class RemoteConnection(Connection):
    """A TCP client session against a :class:`~repro.net.GraqlServer`."""

    def __init__(
        self,
        url: str,
        user: str = "admin",
        *,
        connect_timeout: float = 10.0,
        request_timeout: Optional[float] = None,
        batch_rows: int = DEFAULT_BATCH_ROWS,
    ) -> None:
        host, port = parse_url(url)
        self.url = f"graql://{host}:{port}"
        self.batch_rows = max(1, int(batch_rows))
        super().__init__(user)
        try:
            sock = socket.create_connection((host, port), timeout=connect_timeout)
        except OSError as e:
            raise ProtocolError(f"cannot connect to {self.url}: {e}") from e
        sock.settimeout(request_timeout)
        # frames are small and the protocol is request/response: without
        # TCP_NODELAY, Nagle + delayed-ACK stalls every exchange ~40ms
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._fs = FrameSocket(sock)
        self._active: Optional[_ResultStream] = None
        try:
            self._fs.send_magic()
            self._fs.send_frame(
                FT_HELLO, {"proto": PROTOCOL_VERSION, "user": user}
            )
            ftype, payload = self._fs.recv_frame()
        except (ProtocolError, socket.timeout):
            self._poison()
            raise
        if ftype == FT_ERROR:
            self._poison()
            raise decode_error(payload)
        if ftype != FT_HELLO_OK:
            self._poison()
            raise ProtocolError(
                f"expected HELLO_OK to open the session, got frame type {ftype}"
            )
        #: server-assigned connection id (appears in request spans)
        self.session_id = payload.get("session")
        #: the server's stream batch size (== DEFAULT_BATCH_ROWS unless
        #: the server was tuned)
        self.server_batch_rows = payload.get("batch_rows")

    # ------------------------------------------------------------------
    # Execution surface (Connection ABC)
    # ------------------------------------------------------------------
    def execute(
        self,
        source: str,
        params: Optional[Mapping[str, Any]] = None,
        options: Optional[QueryOptions] = None,
        timeout_s: Optional[float] = None,
    ) -> list[StatementResult]:
        stream = self._request_stream(
            FT_EXECUTE,
            self._execute_payload(source, params, options, timeout_s,
                                  self.batch_rows),
        )
        stream.drain()
        return stream.results

    def prepare(self, source: str) -> "RemotePreparedStatement":
        self._check_open()
        self._settle()
        self._fs.send_frame(FT_PREPARE, {"source": source})
        ftype, payload = self._recv()
        if ftype == FT_ERROR:
            raise decode_error(payload)
        if ftype != FT_PREPARED:
            self._poison()
            raise ProtocolError(
                f"expected PREPARED, got frame type {ftype}"
            )
        return RemotePreparedStatement(self, source, payload)

    def _cursor_run(
        self,
        source: str,
        params: Optional[Mapping[str, Any]],
        options: Optional[QueryOptions],
        batch_size: int,
    ) -> CursorExec:
        stream = self._request_stream(
            FT_EXECUTE,
            self._execute_payload(source, params, options, None, batch_size),
        )
        return stream.cursor_exec()

    # ------------------------------------------------------------------
    # Wire plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _execute_payload(source, params, options, timeout_s, batch_rows):
        payload: dict[str, Any] = {
            "source": source,
            "batch_rows": batch_rows,
        }
        if params:
            payload["params"] = dict(params)
        opts = encode_options(options)
        if opts is not None:
            payload["options"] = opts
        if timeout_s is not None:
            payload["timeout_s"] = timeout_s
        return payload

    def _request_stream(self, ftype: int, payload: dict) -> "_ResultStream":
        self._check_open()
        self._settle()
        self._fs.send_frame(ftype, payload)
        rt, rp = self._recv()
        if rt == FT_ERROR:
            raise decode_error(rp)
        if rt != FT_RESULT:
            self._poison()
            raise ProtocolError(f"expected RESULT, got frame type {rt}")
        stream = _ResultStream(self, rp)
        if not stream.done:
            self._active = stream
        return stream

    def _recv(self) -> Tuple[int, dict]:
        """One frame; transport failure poisons the connection."""
        try:
            return self._fs.recv_frame()
        except (ProtocolError, socket.timeout):
            self._poison()
            raise

    def _settle(self) -> None:
        """Buffer any unfinished stream so the socket is request-clean."""
        if self._active is not None:
            self._active.buffer_remaining()

    def _poison(self) -> None:
        """Transport failure: the conversation is unrecoverable."""
        self._closed = True
        self._active = None
        self._fs.close()

    # ------------------------------------------------------------------
    def _do_close(self) -> None:
        try:
            self._settle()
            self._fs.send_frame(FT_BYE, {})
        except (ProtocolError, OSError, socket.timeout):
            pass
        self._active = None
        self._fs.close()

    def _abort(self) -> None:
        """Tear the socket down with no goodbye (tests use this to
        simulate a client dying mid-stream)."""
        self._closed = True
        self._active = None
        self._fs.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"RemoteConnection({self.url}, user={self.user!r}, {state})"


class RemotePreparedStatement(BasePreparedStatement):
    """A statement compiled once inside the server's session.

    The client holds only the server-assigned id plus the metadata
    needed for parity with the in-process
    :class:`~repro.serve.connection.PreparedStatement`: ``param_names``
    (missing bindings raise :class:`~repro.errors.TypeCheckError`
    before any bytes move) and ``ir_size``.
    """

    def __init__(self, connection: RemoteConnection, source: str, payload) -> None:
        self.connection = connection
        self.source = source
        self.pid = int(payload["pid"])
        self.param_names = tuple(payload.get("params") or ())
        #: binary IR bytes the server compiled for this statement
        self.ir_size = int(payload.get("ir_bytes", 0))
        self.num_statements = int(payload.get("statements", 0))

    def _payload(self, params, options, batch_rows) -> dict[str, Any]:
        payload: dict[str, Any] = {"pid": self.pid, "batch_rows": batch_rows}
        if params:
            payload["params"] = dict(params)
        opts = encode_options(options)
        if opts is not None:
            payload["options"] = opts
        return payload

    def execute(
        self,
        params: Optional[Mapping[str, Any]] = None,
        options: Optional[QueryOptions] = None,
    ) -> list[StatementResult]:
        self.connection._check_open()
        self._require_params(params)
        stream = self.connection._request_stream(
            FT_EXEC_PREPARED,
            self._payload(params, options, self.connection.batch_rows),
        )
        stream.drain()
        return stream.results

    def _cursor_exec(
        self,
        params: Optional[Mapping[str, Any]],
        options: Optional[QueryOptions],
        batch_size: int,
    ) -> CursorExec:
        self.connection._check_open()
        self._require_params(params)
        stream = self.connection._request_stream(
            FT_EXEC_PREPARED, self._payload(params, options, batch_size)
        )
        return stream.cursor_exec()

    def __repr__(self) -> str:
        return (
            f"RemotePreparedStatement(pid={self.pid}, "
            f"{self.num_statements} stmts, params={list(self.param_names)}, "
            f"ir={self.ir_size}B)"
        )


class _ResultStream:
    """One request's response: the RESULT header plus its row stream.

    Rows accumulate as they arrive so that, once DONE is seen, the
    streamed table materializes and is patched into its
    :class:`StatementResult` — after full consumption a remote result
    list is indistinguishable from a local one.
    """

    def __init__(self, conn: RemoteConnection, header: dict) -> None:
        self.conn = conn
        self.results = [decode_result(p) for p in header["results"]]
        self.stream = header.get("stream")
        self.done = False
        self._buffered: deque[list[Row]] = deque()
        self._rows: list[tuple] = []
        self._exec: Optional[CursorExec] = None
        if self.stream is not None:
            idx = int(self.stream["index"])
            self.meta = header["results"][idx]["table"]
            self._row_cls = Row.make_class(
                [str(name) for name, _ in self.meta["columns"]]
            )
        else:
            self.meta = None
            # no table to stream: consume the DONE right away so the
            # conversation is immediately request-clean
            self._pull()

    # ------------------------------------------------------------------
    def _pull(self) -> Optional[list[Row]]:
        """Read one stream frame; a batch of rows, or None at DONE."""
        ftype, payload = self.conn._recv()
        if ftype == FT_BATCH:
            raw = [tuple(r) for r in payload["rows"]]
            self._rows.extend(raw)
            return [self._row_cls(r) for r in raw]
        if ftype == FT_DONE:
            self._finish()
            return None
        if ftype == FT_ERROR:
            self.done = True
            self.conn._active = None
            raise decode_error(payload)
        self.conn._poison()
        raise ProtocolError(
            f"expected BATCH/DONE/ERROR in a result stream, got type {ftype}"
        )

    def _finish(self) -> None:
        self.done = True
        if self.conn._active is self:
            self.conn._active = None
        if self.stream is not None:
            idx = int(self.stream["index"])
            table = table_from_meta(self.meta, self._rows)
            self.results[idx].table = table
            if self._exec is not None:
                self._exec.table = table

    def next_batch(self) -> Optional[list[Row]]:
        if self._buffered:
            return self._buffered.popleft()
        if self.done:
            return None
        return self._pull()

    def drain(self) -> None:
        """Consume the stream to completion (materializes the table)."""
        self._buffered.clear()
        while not self.done:
            self._pull()

    def buffer_remaining(self) -> None:
        """Pull the rest of the stream into memory (another request
        needs the socket); an attached cursor keeps reading from the
        buffer."""
        while not self.done:
            batch = self._pull()
            if batch:
                self._buffered.append(batch)

    # ------------------------------------------------------------------
    def _batches(self) -> Iterator[list[Row]]:
        while True:
            batch = self.next_batch()
            if batch is None:
                return
            yield batch

    def cursor_exec(self) -> CursorExec:
        if self.stream is None:
            return CursorExec(self.results, None, -1, None, None)
        description = [
            (str(name), str(ddl)) for name, ddl in self.meta["columns"]
        ]
        ex = CursorExec(
            self.results,
            None,  # patched in at DONE
            int(self.stream["num_rows"]),
            description,
            self._batches(),
            finish=self.buffer_remaining,
        )
        self._exec = ex
        return ex
