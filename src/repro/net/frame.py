"""The binary wire framing: length-prefixed, checksummed, typed.

Stream layout (after the client's 8-byte magic preamble)::

    GRQLNET1                                  preamble, client -> server
    [u8 type][u32 length][u32 crc32][payload]     frame 0
    [u8 type][u32 length][u32 crc32][payload]     frame 1
    ...

Each payload is one canonical-JSON message; ``length`` counts payload
bytes and ``crc32`` covers the type byte *and* the payload, so a bit
flip anywhere in type, length, checksum or body is detected: a wrong
length misaligns the checksum window, a wrong checksum fails outright,
and a corrupt body fails the check.  The discipline deliberately
mirrors :mod:`repro.durability.wal` — nothing past the first bad byte
is ever interpreted; a bad frame raises
:class:`~repro.errors.ProtocolError` and the connection dies rather
than misparse.

:class:`FrameSocket` wraps a connected TCP socket with framed
send/receive plus byte accounting (fed into the server's
``graql_net_bytes_*`` counters).
"""

from __future__ import annotations

import json
import socket
import struct
import zlib
from typing import Any, Optional, Tuple

from repro.errors import ProtocolError

#: stream preamble the client sends immediately after connecting
MAGIC = b"GRQLNET1"
#: protocol revision negotiated in HELLO; bumped on incompatible change
PROTOCOL_VERSION = 1

_HEADER = struct.Struct("<BII")
HEADER_LEN = _HEADER.size
#: sanity cap on one frame's payload; a length beyond this is corruption
#: (or abuse), not a message we should try to allocate
MAX_FRAME_BYTES = 64 * 1024 * 1024

# ----------------------------------------------------------------------
# Frame types
# ----------------------------------------------------------------------
FT_HELLO = 1          # client -> server: {proto, user}
FT_HELLO_OK = 2       # server -> client: {proto, session, server}
FT_EXECUTE = 3        # client -> server: {source, params?, options?, timeout_s?, batch_rows?}
FT_PREPARE = 4        # client -> server: {source}
FT_PREPARED = 5       # server -> client: {pid, params, ir_bytes, statements}
FT_EXEC_PREPARED = 6  # client -> server: {pid, params?, options?, batch_rows?}
FT_RESULT = 7         # server -> client: results header (stream follows if stream != null)
FT_BATCH = 8          # server -> client: {rows: [[...], ...]}
FT_DONE = 9           # server -> client: {rows: n} — stream complete
FT_ERROR = 10         # server -> client: {code, message, attrs, span}
FT_BYE = 11           # client -> server: {} — orderly goodbye
# -- health checks (served without an admission-queue entry) -----------
FT_PING = 12          # client -> server: {} — may precede HELLO
FT_PONG = 13          # server -> client: {role, seq?, repl_epoch?, primary?, replicas?}
# -- WAL-shipping replication (docs/REPLICATION.md) --------------------
FT_REPL_SUBSCRIBE = 14  # replica -> primary: {from_seq, repl_epoch}
FT_REPL_SNAPSHOT = 15   # primary -> replica: {resume} | {snapshot} catch-up
FT_REPL_RECORD = 16     # primary -> replica: {record} — one WAL record
FT_REPL_ACK = 17        # replica -> primary: {seq} — durable through seq
FT_PROMOTE = 18         # admin -> replica: {} — promote to primary
FT_PROMOTED = 19        # replica -> admin: {repl_epoch, seq}

FRAME_TYPES = frozenset(
    (FT_HELLO, FT_HELLO_OK, FT_EXECUTE, FT_PREPARE, FT_PREPARED,
     FT_EXEC_PREPARED, FT_RESULT, FT_BATCH, FT_DONE, FT_ERROR, FT_BYE,
     FT_PING, FT_PONG, FT_REPL_SUBSCRIBE, FT_REPL_SNAPSHOT,
     FT_REPL_RECORD, FT_REPL_ACK, FT_PROMOTE, FT_PROMOTED)
)


def encode_frame(ftype: int, payload: dict[str, Any]) -> bytes:
    """Render one frame as header + canonical-JSON payload bytes."""
    if ftype not in FRAME_TYPES:
        raise ProtocolError(f"unknown frame type {ftype}")
    body = json.dumps(payload, separators=(",", ":"), sort_keys=True).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame payload of {len(body)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte cap"
        )
    crc = zlib.crc32(bytes((ftype,)) + body)
    return _HEADER.pack(ftype, len(body), crc) + body


def decode_frame(blob: bytes, offset: int = 0) -> Tuple[int, dict[str, Any], int]:
    """Decode the frame starting at *offset*; returns
    ``(type, payload, next_offset)``.

    Raises :class:`~repro.errors.ProtocolError` on any violation —
    truncated header or body, unknown type, oversized length, checksum
    mismatch, undecodable payload.  Never returns a partially-decoded
    frame.
    """
    if offset + HEADER_LEN > len(blob):
        raise ProtocolError(
            f"truncated frame header at offset {offset} "
            f"({len(blob) - offset} of {HEADER_LEN} bytes)"
        )
    ftype, length, crc = _HEADER.unpack_from(blob, offset)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame length {length} exceeds the {MAX_FRAME_BYTES}-byte cap"
        )
    start = offset + HEADER_LEN
    if start + length > len(blob):
        raise ProtocolError(
            f"truncated frame payload at offset {start} "
            f"({len(blob) - start} of {length} bytes)"
        )
    body = blob[start : start + length]
    if zlib.crc32(bytes((ftype,)) + body) != crc:
        raise ProtocolError(f"frame checksum mismatch at offset {offset}")
    if ftype not in FRAME_TYPES:
        raise ProtocolError(f"unknown frame type {ftype} at offset {offset}")
    try:
        payload = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as e:
        raise ProtocolError(f"undecodable frame payload: {e}") from None
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"frame payload must be an object, got {type(payload).__name__}"
        )
    return ftype, payload, start + length


class FrameSocket:
    """Framed, checksummed messaging over one connected socket.

    Owns nothing but the conversation: callers create/close the
    underlying socket.  ``bytes_sent`` / ``bytes_received`` account
    every wire byte that passed through, for the server's metrics.
    """

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.bytes_sent = 0
        self.bytes_received = 0

    # ------------------------------------------------------------------
    def send_magic(self) -> None:
        self._send_all(MAGIC)

    def expect_magic(self) -> None:
        got = self._recv_exact(len(MAGIC), context="magic preamble")
        if got != MAGIC:
            raise ProtocolError(
                f"bad magic preamble {got!r} (expected {MAGIC!r})"
            )

    def send_frame(self, ftype: int, payload: dict[str, Any]) -> None:
        self._send_all(encode_frame(ftype, payload))

    def recv_frame(self) -> Tuple[int, dict[str, Any]]:
        """Read exactly one frame; :class:`~repro.errors.ProtocolError`
        on EOF, truncation or corruption."""
        header = self._recv_exact(HEADER_LEN, context="frame header")
        ftype, length, _crc = _HEADER.unpack_from(header, 0)
        if length > MAX_FRAME_BYTES:
            raise ProtocolError(
                f"frame length {length} exceeds the {MAX_FRAME_BYTES}-byte cap"
            )
        body = self._recv_exact(length, context="frame payload")
        ftype, payload, _ = decode_frame(header + body)
        return ftype, payload

    # ------------------------------------------------------------------
    def _send_all(self, data: bytes) -> None:
        try:
            self.sock.sendall(data)
        except OSError as e:
            raise ProtocolError(f"connection lost while sending: {e}") from e
        self.bytes_sent += len(data)

    def _recv_exact(self, n: int, context: str) -> bytes:
        chunks: list[bytes] = []
        remaining = n
        while remaining > 0:
            try:
                chunk = self.sock.recv(min(remaining, 1 << 20))
            except socket.timeout:
                raise
            except OSError as e:
                raise ProtocolError(
                    f"connection lost while reading {context}: {e}"
                ) from e
            if not chunk:
                if chunks or remaining != n:
                    raise ProtocolError(
                        f"connection closed by peer mid-{context}"
                    )
                raise ProtocolError("connection closed by peer")
            chunks.append(chunk)
            remaining -= len(chunk)
        data = b"".join(chunks)
        self.bytes_received += len(data)
        return data

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass
