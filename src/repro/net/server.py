"""The TCP serving layer: :class:`GraqlServer`.

The paper's Section III client/front-end split, made real: clients dial
a socket, authenticate as a server account, and ship statements that
the front-end typechecks, compiles to binary IR and executes — every
property of the in-process serving engine (admission control, the
reader-writer catalog lock, the plan cache, durability, metrics) now
holds *across the wire* because requests run through the very same
:class:`~repro.engine.server.Server`.

Connection lifecycle (frames: :mod:`repro.net.frame`)::

    client                          server
    ------                          ------
    GRQLNET1 magic     ->
    HELLO {proto,user} ->           authenticate (AccessError over the
                       <- HELLO_OK  wire on unknown users)
    EXECUTE {source}   ->           admission -> submit -> results
                       <- RESULT    header (non-streamed results inline)
                       <- BATCH*    the last table's rows, batched
                       <- DONE
    PREPARE {source}   ->           compile once, session-scoped id
                       <- PREPARED
    EXEC_PREPARED      ->           bind + execute
                       <- RESULT / BATCH* / DONE
    BYE                ->           orderly close

Failure semantics: any server-side exception crosses as one ERROR frame
(stable code + message + request span) and the conversation continues;
a malformed frame, an idle timeout, or a client that vanishes kills
*that* connection only.  ``shutdown(drain=True)`` stops accepting,
lets in-flight requests finish their response, then closes every
session — the SIGTERM path of ``graql serve`` (docs/NETWORK.md).
"""

from __future__ import annotations

import itertools
import socket
import threading
import time
from collections import deque
from typing import Any, Mapping, Optional, Tuple

from repro.errors import (
    AccessError,
    GraQLError,
    PromotionError,
    ProtocolError,
    ServerBusy,
    WalError,
)
from repro.net.frame import (
    FT_BATCH,
    FT_BYE,
    FT_DONE,
    FT_ERROR,
    FT_EXEC_PREPARED,
    FT_EXECUTE,
    FT_HELLO,
    FT_HELLO_OK,
    FT_PING,
    FT_PONG,
    FT_PREPARE,
    FT_PREPARED,
    FT_PROMOTE,
    FT_PROMOTED,
    FT_REPL_SUBSCRIBE,
    FT_RESULT,
    FrameSocket,
    PROTOCOL_VERSION,
)
from repro.net.protocol import (
    decode_options,
    encode_error,
    encode_results,
    error_code,
)
from repro.obs.trace import Span
from repro.serve.connection import (
    DEFAULT_BATCH_ROWS,
    LocalConnection,
    TRANSPORT_IR,
)

#: sessions a server carries at once before refusing with ServerBusy
DEFAULT_MAX_CONNECTIONS = 64
#: seconds a connection may sit idle between requests before reaping
DEFAULT_IDLE_TIMEOUT = 300.0
#: seconds a fresh connection gets to complete the handshake
HANDSHAKE_TIMEOUT = 10.0


class GraqlServer:
    """A TCP front-end over an engine :class:`~repro.engine.server.Server`
    (or a :class:`~repro.engine.session.Database`, e.g. one opened over a
    durable store — ``graql serve HOST:PORT --db PATH``).

    One thread accepts, one thread per connection serves; all statement
    execution funnels through the shared serving engine, so the socket
    layer adds transport concerns only: framing, auth, streaming,
    deadlines, drain and reaping.
    """

    def __init__(
        self,
        target,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        batch_rows: int = DEFAULT_BATCH_ROWS,
        idle_timeout: Optional[float] = DEFAULT_IDLE_TIMEOUT,
        max_connections: int = DEFAULT_MAX_CONNECTIONS,
        replica=None,
    ) -> None:
        from repro.engine.session import Database

        #: the :class:`~repro.replication.Replica` this server fronts
        #: (``graql serve --replica-of``); None for a plain server
        self.replica = replica
        if replica is not None:
            target = replica.database
        if isinstance(target, Database):
            #: the Database whose engine is being served (None when a
            #: bare Server was passed); closed by ``graql serve`` on exit
            self.database: Optional[Database] = target
            self.app = target.server
        else:
            self.database = None
            self.app = target
        #: WAL-shipping manager (docs/REPLICATION.md); present whenever
        #: the served database is durable — a replica can chain-feed
        #: further replicas, and must stream as primary once promoted
        self.replication = None
        if self.database is not None and self.database.store is not None:
            from repro.replication.primary import PrimaryReplication

            self.replication = PrimaryReplication(self.database)
        self.host = host
        self.port = port
        self.batch_rows = max(1, int(batch_rows))
        self.idle_timeout = idle_timeout
        self.max_connections = max_connections
        self.metrics = self.app.metrics
        #: finished per-request spans (conn/req/user/kind attrs), newest
        #: last — the observability hook for "what is this server doing"
        self.recent_spans: deque[Span] = deque(maxlen=256)
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._sessions: dict[int, _Session] = {}
        self._sessions_lock = threading.Lock()
        self._conn_ids = itertools.count(1)
        self._draining = threading.Event()
        self._stopped = threading.Event()
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> Tuple[str, int]:
        """Bind, listen and start accepting; returns ``(host, port)``
        (the OS-assigned port when constructed with ``port=0``)."""
        if self._started:
            return (self.host, self.port)
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(128)
        # closing a listener does NOT wake a thread blocked in accept();
        # a short accept timeout lets the loop notice shutdown promptly
        listener.settimeout(0.2)
        self.host, self.port = listener.getsockname()[:2]
        self._listener = listener
        self._started = True
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="graql-net-accept", daemon=True
        )
        self._accept_thread.start()
        return (self.host, self.port)

    @property
    def address(self) -> Tuple[str, int]:
        return (self.host, self.port)

    @property
    def url(self) -> str:
        return f"graql://{self.host}:{self.port}"

    def serve_forever(self) -> None:
        """Block the calling thread until :meth:`shutdown` completes."""
        if not self._started:
            self.start()
        self._stopped.wait()

    def shutdown(self, drain: bool = True, timeout: float = 10.0) -> None:
        """Stop the server.  Idempotent.

        With ``drain`` (the default), in-flight requests finish writing
        their response before their connection closes — sessions stop
        *reading* immediately but may still write.  Without it, sockets
        are torn down outright.
        """
        if self._stopped.is_set():
            return
        self._draining.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        with self._sessions_lock:
            sessions = list(self._sessions.values())
        for sess in sessions:
            sess.stop(drain)
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=timeout)
        for sess in sessions:
            if sess.thread is not None:
                sess.thread.join(timeout=timeout)
        self._stopped.set()

    close = shutdown

    def __enter__(self) -> "GraqlServer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    @property
    def active_connections(self) -> int:
        with self._sessions_lock:
            return len(self._sessions)

    # ------------------------------------------------------------------
    # Accept loop
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._draining.is_set():
            try:
                csock, addr = self._listener.accept()
            except socket.timeout:
                continue  # poll the draining flag
            except OSError:
                break  # listener closed by shutdown
            csock.settimeout(None)
            # request/response with multi-frame responses: Nagle +
            # delayed-ACK would add ~40ms stalls per small write
            csock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            if self._draining.is_set():
                _close_quietly(csock)
                break
            conn_id = next(self._conn_ids)
            with self._sessions_lock:
                active = len(self._sessions)
            if active >= self.max_connections:
                self._refuse(csock)
                continue
            self.metrics.counter(
                "graql_net_connections_total", "TCP connections accepted"
            ).inc()
            sess = _Session(self, csock, addr, conn_id)
            with self._sessions_lock:
                self._sessions[conn_id] = sess
            sess.thread = threading.Thread(
                target=sess.run, name=f"graql-net-conn-{conn_id}", daemon=True
            )
            sess.thread.start()

    def _refuse(self, csock: socket.socket) -> None:
        """Over capacity: finish the handshake far enough to deliver a
        typed :class:`~repro.errors.ServerBusy`, then hang up."""
        self.metrics.counter(
            "graql_net_connections_refused_total",
            "connections refused at the max_connections cap",
        ).inc()
        fs = FrameSocket(csock)
        try:
            csock.settimeout(HANDSHAKE_TIMEOUT)
            fs.expect_magic()
            fs.recv_frame()  # the HELLO, discarded
            fs.send_frame(
                FT_ERROR,
                encode_error(
                    ServerBusy(
                        f"server at its {self.max_connections}-connection cap",
                        reason="connections",
                    )
                ),
            )
        except (ProtocolError, OSError):
            pass
        finally:
            fs.close()

    # ------------------------------------------------------------------
    def _pong_payload(self) -> dict[str, Any]:
        """The PONG body: role, position, fence and subscriber lag —
        the whole replication health surface in one frame."""
        out: dict[str, Any] = {"role": "memory"}
        if self.replica is not None:
            out = self.replica.status()
        elif self.database is not None and self.database.store is not None:
            store = self.database.store
            out = {
                "role": "primary",
                "seq": store.seq,
                "repl_epoch": store.replication_epoch,
            }
        if self.replication is not None:
            out["replicas"] = self.replication.peers()
        return out

    # ------------------------------------------------------------------
    def _unregister(self, conn_id: int) -> None:
        with self._sessions_lock:
            self._sessions.pop(conn_id, None)

    def _record_span(self, span: Span) -> None:
        span.finish()
        self.recent_spans.append(span)

    def __repr__(self) -> str:
        state = (
            "stopped" if self._stopped.is_set()
            else "serving" if self._started else "unstarted"
        )
        return (
            f"GraqlServer({self.host}:{self.port}, {state}, "
            f"connections={self.active_connections})"
        )


class _Session:
    """One authenticated client connection, served by its own thread."""

    def __init__(
        self, server: GraqlServer, sock: socket.socket, addr, conn_id: int
    ) -> None:
        self.server = server
        self.sock = sock
        self.addr = addr
        self.conn_id = conn_id
        self.thread: Optional[threading.Thread] = None
        self.user: Optional[str] = None
        self._prepared: dict[int, Any] = {}
        self._pid_seq = itertools.count(1)
        self._flushed_sent = 0
        self._flushed_received = 0

    # ------------------------------------------------------------------
    def stop(self, drain: bool) -> None:
        """Called by :meth:`GraqlServer.shutdown` from another thread."""
        try:
            if drain:
                # stop reading: the in-flight request (if any) still
                # writes its response, then the loop sees EOF and exits
                self.sock.shutdown(socket.SHUT_RD)
            else:
                self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass

    # ------------------------------------------------------------------
    def run(self) -> None:
        srv = self.server
        fs = FrameSocket(self.sock)
        gauge = srv.metrics.gauge(
            "graql_net_connections_active", "currently-open client sessions"
        )
        gauge.inc()
        try:
            if self._handshake(fs):
                self._request_loop(fs)
        except (ProtocolError, OSError):
            # a vanished or misbehaving client takes down its own
            # session, never the server
            pass
        finally:
            gauge.dec()
            self._flush_byte_metrics(fs)
            srv._unregister(self.conn_id)
            fs.close()

    def _handshake(self, fs: FrameSocket) -> bool:
        srv = self.server
        self.sock.settimeout(HANDSHAKE_TIMEOUT)
        fs.expect_magic()
        ftype, hello = fs.recv_frame()
        while ftype == FT_PING:
            # health checks are answered before (and without) auth, and
            # never touch the admission queue — a wedged engine still
            # reports its role and position
            fs.send_frame(FT_PONG, srv._pong_payload())
            ftype, hello = fs.recv_frame()
        if ftype != FT_HELLO:
            fs.send_frame(
                FT_ERROR,
                encode_error(ProtocolError("expected HELLO to open the session")),
            )
            return False
        proto = hello.get("proto")
        if proto != PROTOCOL_VERSION:
            fs.send_frame(
                FT_ERROR,
                encode_error(
                    ProtocolError(
                        f"unsupported protocol version {proto!r} "
                        f"(server speaks {PROTOCOL_VERSION})"
                    )
                ),
            )
            return False
        user = str(hello.get("user", ""))
        try:
            srv.app._require(user, "reader")
        except AccessError as e:
            fs.send_frame(FT_ERROR, encode_error(e))
            return False
        self.user = user
        #: the server-side connection this session executes through;
        #: the IR transport is the paper's front-end pipeline
        self.conn = LocalConnection(srv.app, user, transport=TRANSPORT_IR)
        fs.send_frame(
            FT_HELLO_OK,
            {
                "proto": PROTOCOL_VERSION,
                "session": self.conn_id,
                "batch_rows": srv.batch_rows,
            },
        )
        return True

    def _request_loop(self, fs: FrameSocket) -> None:
        srv = self.server
        req = 0
        while True:
            self.sock.settimeout(srv.idle_timeout)
            try:
                ftype, payload = fs.recv_frame()
            except socket.timeout:
                srv.metrics.counter(
                    "graql_net_idle_reaped_total",
                    "sessions closed by the idle-connection reaper",
                ).inc()
                return
            if ftype == FT_BYE:
                return
            if ftype == FT_PING:
                # no admission-queue entry, no request accounting: pings
                # must answer even when the engine is saturated
                fs.send_frame(FT_PONG, srv._pong_payload())
                continue
            req += 1
            if ftype == FT_EXECUTE:
                self._serve_request(fs, req, "execute", payload)
            elif ftype == FT_PREPARE:
                self._handle_prepare(fs, req, payload)
            elif ftype == FT_EXEC_PREPARED:
                self._serve_request(fs, req, "exec_prepared", payload)
            elif ftype == FT_REPL_SUBSCRIBE:
                self._handle_subscribe(fs, req, payload)
                return  # the socket was dedicated to the stream
            elif ftype == FT_PROMOTE:
                self._handle_promote(fs, req)
            else:
                fs.send_frame(
                    FT_ERROR,
                    encode_error(
                        ProtocolError(f"unexpected frame type {ftype}"),
                        span=self._span_ctx(req),
                    ),
                )
                return
            self._flush_byte_metrics(fs)

    # ------------------------------------------------------------------
    # Request handlers
    # ------------------------------------------------------------------
    def _span_ctx(self, req: int) -> dict[str, Any]:
        return {"conn": self.conn_id, "req": req}

    def _serve_request(
        self, fs: FrameSocket, req: int, kind: str, payload: Mapping[str, Any]
    ) -> None:
        """Execute one statement request and stream its results."""
        srv = self.server
        span = Span(
            f"net.{kind}", {"conn": self.conn_id, "req": req, "user": self.user}
        )
        t0 = time.perf_counter()
        srv.metrics.counter(
            "graql_net_requests_total", "statement requests received",
            labels={"kind": kind},
        ).inc()
        batch_rows = max(1, int(payload.get("batch_rows") or srv.batch_rows))
        try:
            options = decode_options(payload.get("options"))
            params = payload.get("params") or None
            if kind == "execute":
                results = self.conn.execute(
                    str(payload.get("source", "")),
                    params,
                    options,
                    timeout_s=payload.get("timeout_s"),
                )
            else:
                pid = payload.get("pid")
                ps = self._prepared.get(pid)
                if ps is None:
                    raise ProtocolError(
                        f"unknown prepared statement id {pid!r} on this session"
                    )
                results = ps.execute(params, options)
        except Exception as e:  # noqa: BLE001 - every failure crosses typed
            span.set(error=error_code(e))
            srv._record_span(span)
            srv.metrics.counter(
                "graql_net_errors_total", "requests answered with an error",
                labels={"code": error_code(e)},
            ).inc()
            fs.send_frame(FT_ERROR, encode_error(e, span=self._span_ctx(req)))
            return
        rows = self._stream_results(fs, results, batch_rows)
        elapsed = time.perf_counter() - t0
        span.set(rows=rows, statements=len(results))
        srv._record_span(span)
        srv.metrics.histogram(
            "graql_net_request_seconds", "wall time per request",
        ).observe(elapsed)

    def _stream_results(self, fs: FrameSocket, results, batch_rows: int) -> int:
        """RESULT header, then the last table's rows in BATCH frames."""
        srv = self.server
        header = encode_results(results)
        fs.send_frame(FT_RESULT, header)
        streamed = 0
        if header["stream"] is not None:
            table = results[header["stream"]["index"]].table
            for batch in table.iter_batches(batch_rows):
                fs.send_frame(FT_BATCH, {"rows": [list(r) for r in batch]})
                streamed += len(batch)
        if streamed:
            # count before DONE: once the client has the acknowledgment,
            # the rows are visible in the server's metrics
            srv.metrics.counter(
                "graql_net_rows_streamed_total", "result rows streamed to clients"
            ).inc(streamed)
        fs.send_frame(FT_DONE, {"rows": streamed})
        return streamed

    def _handle_prepare(
        self, fs: FrameSocket, req: int, payload: Mapping[str, Any]
    ) -> None:
        srv = self.server
        srv.metrics.counter(
            "graql_net_requests_total", "statement requests received",
            labels={"kind": "prepare"},
        ).inc()
        span = Span(
            "net.prepare", {"conn": self.conn_id, "req": req, "user": self.user}
        )
        try:
            ps = self.conn.prepare(str(payload.get("source", "")))
        except Exception as e:  # noqa: BLE001
            span.set(error=error_code(e))
            srv._record_span(span)
            srv.metrics.counter(
                "graql_net_errors_total", "requests answered with an error",
                labels={"code": error_code(e)},
            ).inc()
            fs.send_frame(FT_ERROR, encode_error(e, span=self._span_ctx(req)))
            return
        pid = next(self._pid_seq)
        self._prepared[pid] = ps
        srv._record_span(span)
        fs.send_frame(
            FT_PREPARED,
            {
                "pid": pid,
                "params": list(ps.param_names),
                "ir_bytes": ps.ir_size,
                "statements": len(ps.script.statements),
            },
        )

    # ------------------------------------------------------------------
    # Replication handlers (docs/REPLICATION.md)
    # ------------------------------------------------------------------
    def _handle_subscribe(
        self, fs: FrameSocket, req: int, payload: Mapping[str, Any]
    ) -> None:
        """Hand this session's socket to the replication manager; owns
        the connection until the replica goes away."""
        srv = self.server
        span = Span(
            "net.repl_subscribe",
            {"conn": self.conn_id, "req": req, "user": self.user,
             "from_seq": int(payload.get("from_seq", 0))},
        )
        try:
            # the full WAL (accounts included) crosses the wire: admin only
            srv.app._require(self.user, "admin")
            if srv.replication is None:
                raise WalError(
                    "this server has no durable store; nothing to replicate"
                )
        except GraQLError as e:
            span.set(error=error_code(e))
            srv._record_span(span)
            fs.send_frame(FT_ERROR, encode_error(e, span=self._span_ctx(req)))
            return
        # a streaming subscription is never idle in the reaper's sense
        self.sock.settimeout(None)
        addr = f"{self.addr[0]}:{self.addr[1]}" if self.addr else "?"
        try:
            srv.replication.serve_subscription(
                fs, f"conn{self.conn_id}", addr, payload
            )
        except GraQLError as e:
            span.set(error=error_code(e))
            try:
                fs.send_frame(FT_ERROR, encode_error(e, span=self._span_ctx(req)))
            except (ProtocolError, OSError):
                pass
        srv._record_span(span)

    def _handle_promote(self, fs: FrameSocket, req: int) -> None:
        """PROMOTE: fence off the old primary and open for writes."""
        srv = self.server
        span = Span(
            "net.promote", {"conn": self.conn_id, "req": req, "user": self.user}
        )
        try:
            srv.app._require(self.user, "admin")
            if srv.replica is None:
                raise PromotionError(
                    "this node is not a replica; nothing to promote"
                )
            result = srv.replica.promote()
        except Exception as e:  # noqa: BLE001 - crosses typed
            span.set(error=error_code(e))
            srv._record_span(span)
            fs.send_frame(FT_ERROR, encode_error(e, span=self._span_ctx(req)))
            return
        span.set(**result)
        srv._record_span(span)
        # the replica's own replication.promote span carries the timing
        # of the fence bump; surface it on the same ring
        if srv.replica.last_promote_span is not None:
            srv.recent_spans.append(srv.replica.last_promote_span)
        fs.send_frame(FT_PROMOTED, result)

    # ------------------------------------------------------------------
    def _flush_byte_metrics(self, fs: FrameSocket) -> None:
        srv = self.server
        sent = fs.bytes_sent - self._flushed_sent
        received = fs.bytes_received - self._flushed_received
        if sent:
            srv.metrics.counter(
                "graql_net_bytes_sent_total", "wire bytes sent to clients"
            ).inc(sent)
            self._flushed_sent = fs.bytes_sent
        if received:
            srv.metrics.counter(
                "graql_net_bytes_received_total", "wire bytes received from clients"
            ).inc(received)
            self._flushed_received = fs.bytes_received


def _close_quietly(sock: socket.socket) -> None:
    try:
        sock.close()
    except OSError:
        pass
