"""Vertex types: views over tables (Eq. 1 of the paper).

.. math::

   V(a_1, ..., a_k) = \\Pi_{a_1,...,a_k} \\, \\sigma_\\varphi(T)

Building a vertex type applies the declaration's ``where`` selection to the
source table, projects the key columns, and creates **one vertex instance
per distinct key combination**.  Vertex ids (vids) are dense ``0..n-1``
integers in first-occurrence order, so every per-type vertex set is just an
int64 array and every frontier a boolean mask — the flat-array layout the
GEMS backend relies on.

One-to-one mappings (key unique per selected row, e.g. ``ProductVtx(id)``)
expose *every* source-table column as a vertex attribute.  Many-to-one
mappings (e.g. ``ProducerCountry(country)``) expose only the key columns,
since other attributes are not single-valued per vertex — exactly the
restriction Section II-A implies and the type checker enforces.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.dtypes import DataType
from repro.errors import CatalogError, TypeCheckError
from repro.storage.expr import Env, Expr, evaluate_predicate
from repro.storage.relops import group_rows
from repro.storage.schema import Schema
from repro.storage.table import Table


class VertexType:
    """A built vertex view: declaration + materialized instance mapping."""

    def __init__(
        self,
        name: str,
        key_cols: list[str],
        table: Table,
        where: Optional[Expr] = None,
    ) -> None:
        for k in key_cols:
            if not table.schema.has(k):
                raise CatalogError(
                    f"vertex {name!r}: key column {k!r} not in table {table.name!r}"
                )
        self.name = name
        self.key_cols = list(key_cols)
        self.table = table
        self.where = where
        self._build()

    # ------------------------------------------------------------------
    # Construction (Eq. 1)
    # ------------------------------------------------------------------
    def _build(self) -> None:
        table = self.table
        if self.where is not None:
            mask = evaluate_predicate(self.where, Env.from_table(table))
            selected = np.flatnonzero(mask)
        else:
            selected = np.arange(table.num_rows)
        view = table.take(selected)
        # drop rows whose key contains a NULL: a NULL key identifies nothing
        key_null = np.zeros(view.num_rows, dtype=bool)
        for k in self.key_cols:
            key_null |= view.column(k).null_mask()
        if key_null.any():
            keep = ~key_null
            selected = selected[keep]
            view = view.filter(keep)
        _, first, inv = group_rows(view, self.key_cols)
        order = np.argsort(first, kind="stable")  # first-occurrence order
        remap = np.empty(len(first), dtype=np.int64)
        remap[order] = np.arange(len(first))
        #: number of vertex instances
        self.num_vertices: int = len(first)
        #: vid of each *selected source row* (aligned with ``self.rows``)
        self.row_vids: np.ndarray = remap[inv]
        #: source-table row index of each selected row
        self.rows: np.ndarray = selected
        #: representative source row per vid (first occurrence)
        self.rep_rows: np.ndarray = selected[first[order]]
        self.one_to_one: bool = self.num_vertices == len(selected)
        # key tuples per vid (materialized lazily)
        self._keys: Optional[list[tuple]] = None
        self._key_index: Optional[dict[tuple, int]] = None

    def refresh(self) -> None:
        """Rebuild after the source table changed (atomic ingest)."""
        self._build()

    # ------------------------------------------------------------------
    # Schema
    # ------------------------------------------------------------------
    def key_schema(self) -> Schema:
        return self.table.schema.subset(self.key_cols)

    def attribute_schema(self) -> Schema:
        """The attributes visible in queries: all source columns for
        one-to-one views, just the key for many-to-one views."""
        if self.one_to_one:
            return self.table.schema
        return self.key_schema()

    def has_attribute(self, name: str) -> bool:
        return self.attribute_schema().has(name)

    def attribute_type(self, name: str) -> DataType:
        schema = self.attribute_schema()
        if not schema.has(name):
            extra = "" if self.one_to_one else " (many-to-one view: only key attributes)"
            raise TypeCheckError(
                f"vertex type {self.name!r} has no attribute {name!r}{extra}"
            )
        return schema.type_of(name)

    # ------------------------------------------------------------------
    # Attribute access, vid-aligned
    # ------------------------------------------------------------------
    def attribute_array(self, name: str) -> tuple[np.ndarray, DataType]:
        """The attribute values aligned with vids 0..n-1."""
        dtype = self.attribute_type(name)
        col = self.table.column(name)
        return col.data[self.rep_rows], dtype

    def key_tuples(self) -> list[tuple]:
        """Key tuple of each vid (cached)."""
        if self._keys is None:
            cols = [self.table.column(k) for k in self.key_cols]
            self._keys = [
                tuple(c.value(int(r)) for c in cols) for r in self.rep_rows
            ]
        return self._keys

    def key_of(self, vid: int) -> tuple:
        return self.key_tuples()[vid]

    def vid_of(self, key: tuple) -> Optional[int]:
        """The vid carrying *key*, or None."""
        if self._key_index is None:
            self._key_index = {k: i for i, k in enumerate(self.key_tuples())}
        return self._key_index.get(tuple(key))

    def attributes_of(self, vid: int) -> dict[str, Any]:
        """All visible attributes of one vertex (cold path)."""
        schema = self.attribute_schema()
        row = int(self.rep_rows[vid])
        return {c.name: self.table.column(c.name).value(row) for c in schema}

    # ------------------------------------------------------------------
    # Query-time selection (a vertex query step, Eq. 4)
    # ------------------------------------------------------------------
    def select(self, cond: Optional[Expr], candidates: Optional[np.ndarray] = None) -> np.ndarray:
        """vids satisfying *cond*, optionally restricted to *candidates*.

        This is the per-step selection sigma_phi(V) of Eq. 4: conditions are
        evaluated over the vid-aligned attribute arrays.
        """
        if candidates is None:
            candidates = np.arange(self.num_vertices)
        if cond is None or len(candidates) == 0:
            return candidates

        def resolver(qualifier: str | None, name: str):
            arr, dtype = self.attribute_array(name)
            return arr[candidates], dtype

        env = Env(resolver, len(candidates))
        mask = evaluate_predicate(cond, env)
        return candidates[mask]

    def env_for(self, vids: np.ndarray, qualifier_names: tuple[str, ...] = ()) -> Env:
        """An expression environment over the given vids.

        Accepts unqualified references and any qualifier in
        *qualifier_names* (the step's own type/label names).
        """
        allowed = set(qualifier_names) | {None, self.name}

        def resolver(qualifier: str | None, name: str):
            if qualifier not in allowed:
                raise TypeCheckError(
                    f"cannot resolve qualifier {qualifier!r} on vertex type "
                    f"{self.name!r}"
                )
            arr, dtype = self.attribute_array(name)
            return arr[vids], dtype

        return Env(resolver, len(vids))

    def __repr__(self) -> str:
        kind = "1:1" if self.one_to_one else "N:1"
        return (
            f"VertexType({self.name!r}, key={self.key_cols}, "
            f"table={self.table.name!r}, n={self.num_vertices}, {kind})"
        )
