"""Graph views over tabular data — the paper's second design principle.

Vertex and edge types are *views* over tables (Section II-A):

* :class:`~repro.graph.vertex.VertexType` implements Eq. 1 — a selection
  over the source table followed by key projection; one vertex instance
  per distinct key (one-to-one when the key is unique per row, many-to-one
  otherwise, as in the ProducerCountry example of Figs. 4-5).
* :class:`~repro.graph.edge.EdgeType` implements Eq. 2 — the natural join
  of the source vertices, an optional associated table, and the target
  vertices, driven by the declaration's ``where`` clause.
* :class:`~repro.graph.edge_index.EdgeIndex` is the fundamental backend
  data structure of Section III-B: CSR adjacency in both the declared
  (forward) and reverse directions, enabling direction-free query
  planning.
* :class:`~repro.graph.graphdb.GraphDB` assembles the overall multigraph
  G = (∪ V_p, ∪ E_r) whose vertex/edge types partition V and E
  (Section II-A1).
"""

from repro.graph.edge import EdgeType
from repro.graph.edge_index import EdgeIndex
from repro.graph.graphdb import GraphDB
from repro.graph.subgraph import Subgraph
from repro.graph.vertex import VertexType

__all__ = ["VertexType", "EdgeType", "EdgeIndex", "GraphDB", "Subgraph"]
