"""Named secondary indexes over vertex/edge attributes (``create index``).

A :class:`GraphAttrIndex` binds an index name to a target vertex or edge
type and an attribute column list, and owns the range-capable
:class:`~repro.storage.indexes.AttributeIndex` built over the target's
vid/eid-aligned attribute arrays.  The index is maintained exactly like
the bidirectional edge indexes: :meth:`rebuild` runs inside
``GraphDB._rebuild_dependents`` whenever an ingest refreshed the target
view, so lookups are never stale.
"""

from __future__ import annotations

from typing import Union

from repro.graph.edge import EdgeType
from repro.graph.vertex import VertexType
from repro.storage.column import Column
from repro.storage.indexes import AttributeIndex

KIND_VERTEX = "vertex"
KIND_EDGE = "edge"


class GraphAttrIndex:
    """One built ``create index I on V(a, ...)`` object."""

    def __init__(
        self,
        name: str,
        target: Union[VertexType, EdgeType],
        attrs: list[str],
    ) -> None:
        self.name = name
        self.target = target
        self.attrs = list(attrs)
        self.kind = KIND_VERTEX if isinstance(target, VertexType) else KIND_EDGE
        self.index: AttributeIndex = self._build()

    def _build(self) -> AttributeIndex:
        arrays = []
        masks = []
        for a in self.attrs:
            arr, dtype = self.target.attribute_array(a)
            arrays.append(arr)
            masks.append(Column(dtype, arr).null_mask())
        return AttributeIndex(arrays, masks)

    def rebuild(self) -> None:
        """Re-derive the index after the target view refreshed."""
        self.index = self._build()

    @property
    def target_name(self) -> str:
        return self.target.name

    @property
    def num_entries(self) -> int:
        return len(self.index)

    def __repr__(self) -> str:
        cols = ", ".join(self.attrs)
        return (
            f"GraphAttrIndex({self.name!r} on {self.target.name}({cols}), "
            f"entries={self.num_entries})"
        )
