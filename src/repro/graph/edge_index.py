"""Bidirectional CSR edge indexes (paper Section III-B).

    "A fundamental data structure that we use in the GEMS cluster backend
    is the edge index. ... we not only create an edge index in the lexical
    direction declared by the user S -> E -> T, but also in the reverse
    direction T -> E -> S."

An :class:`EdgeIndex` stores one direction as compressed sparse rows:
``indptr`` over source vids, with parallel ``neighbors`` (endpoint vids)
and ``eids`` arrays.  Expansion of a whole frontier is a single gather —
no per-vertex Python loops — which is what makes the set-frontier query
strategy fast and what the distributed backend shards per worker.
"""

from __future__ import annotations

import numpy as np


class EdgeIndex:
    """One direction of adjacency in CSR form."""

    def __init__(self, num_sources: int, from_vids: np.ndarray, to_vids: np.ndarray, eids: np.ndarray | None = None) -> None:
        if eids is None:
            eids = np.arange(len(from_vids), dtype=np.int64)
        order = np.argsort(from_vids, kind="stable")
        self.num_sources = int(num_sources)
        self._sorted_from = from_vids[order]
        self.neighbors = to_vids[order]
        self.eids = eids[order]
        counts = np.bincount(from_vids, minlength=num_sources)
        self.indptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)

    @property
    def num_edges(self) -> int:
        return len(self.neighbors)

    def degree(self, vid: int) -> int:
        return int(self.indptr[vid + 1] - self.indptr[vid])

    def degrees(self) -> np.ndarray:
        return np.diff(self.indptr)

    def neighbors_of(self, vid: int) -> np.ndarray:
        return self.neighbors[self.indptr[vid] : self.indptr[vid + 1]]

    def eids_of(self, vid: int) -> np.ndarray:
        return self.eids[self.indptr[vid] : self.indptr[vid + 1]]

    def expand(self, frontier: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Expand a frontier of vids in one vectorized gather.

        Returns aligned ``(sources, targets, eids)`` — one entry per
        traversed edge, where ``sources[i]`` is the frontier vid the edge
        left from.  This is the hot loop of path-query execution.
        """
        starts = self.indptr[frontier]
        ends = self.indptr[frontier + 1]
        counts = ends - starts
        total = int(counts.sum())
        if total == 0:
            e = np.empty(0, dtype=np.int64)
            return e, e.copy(), e.copy()
        srcs = np.repeat(frontier, counts)
        base = np.repeat(starts, counts)
        offsets = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
        slots = base + offsets
        return srcs, self.neighbors[slots], self.eids[slots]

    def expand_restricted(self, frontier: np.ndarray, allowed_eids: np.ndarray | None) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Expand, keeping only edges whose eid is in *allowed_eids*.

        *allowed_eids* must be sorted; None means all edges allowed.
        """
        srcs, tgts, eids = self.expand(frontier)
        if allowed_eids is None or len(eids) == 0:
            return srcs, tgts, eids
        pos = np.searchsorted(allowed_eids, eids)
        pos = np.minimum(pos, len(allowed_eids) - 1) if len(allowed_eids) else pos
        mask = (
            (allowed_eids[pos] == eids) if len(allowed_eids) else np.zeros(len(eids), dtype=bool)
        )
        return srcs[mask], tgts[mask], eids[mask]

    def __repr__(self) -> str:
        return f"EdgeIndex(sources={self.num_sources}, edges={self.num_edges})"


class BidirectionalIndex:
    """Forward (S->T) and reverse (T->S) CSR indexes for one edge type."""

    def __init__(self, edge_type) -> None:
        self.edge_type = edge_type
        self.forward = EdgeIndex(
            edge_type.source.num_vertices, edge_type.src_vids, edge_type.tgt_vids
        )
        self.reverse = EdgeIndex(
            edge_type.target.num_vertices, edge_type.tgt_vids, edge_type.src_vids
        )

    def direction(self, outgoing: bool) -> EdgeIndex:
        """The index to use when traversing along (True) or against
        (False) the declared direction."""
        return self.forward if outgoing else self.reverse

    def __repr__(self) -> str:
        return f"BidirectionalIndex({self.edge_type.name!r})"
