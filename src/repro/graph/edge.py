"""Edge types: join-defined views over vertex types and tables (Eq. 2).

.. math::

   E(a_1,...,a_n) = (S \\bowtie (\\sigma_\\varphi A)) \\bowtie T

An edge declaration names a source and target vertex endpoint, optional
associated table(s) (``from table``), and a ``where`` clause.  Building the
edge type executes a small join plan:

1. split the ``where`` clause into conjuncts; equality conjuncts between
   columns of *different* relations are join predicates, everything else
   is a post-join filter;
2. start from the source endpoint's relation (its selected source rows,
   carrying a hidden vid column) and greedily join in connected relations
   — the target endpoint, declared ``from table`` relations, and any table
   mentioned only in the ``where`` clause (the paper's Fig. 3 ``feature``
   edge does exactly that);
3. apply residual filters, project the two vid columns, and deduplicate.

Deduplication implements the paper's many-to-one semantics (Fig. 5): edges
declared *without* an associated table are identified by the (source vid,
target vid) pair — the four-way country join yields exactly two ``export``
edges.  Edges *with* ``from table`` create one edge per qualifying
associated row (Section II-A: "an edge is created for each table entry
satisfying the where clause"), so parallel edges with distinct attributes
survive, making G a multigraph.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.dtypes import DataType, INTEGER
from repro.errors import CatalogError, TypeCheckError
from repro.storage.column import Column
from repro.storage.expr import (
    BinOp,
    ColRef,
    Env,
    Expr,
    col_refs,
    conjuncts,
    evaluate_predicate,
)
from repro.storage.relops import _shared_codes
from repro.storage.schema import Schema
from repro.storage.table import Table
from repro.graph.vertex import VertexType

VID = "__vid"
ROWID = "__row"


class _Relation:
    """A working relation during edge construction.

    Columns are keyed by (qualifier, name); all arrays share ``nrows``.
    """

    def __init__(self, columns: dict[tuple[str, str], Column], nrows: int) -> None:
        self.columns = columns
        self.nrows = nrows

    @classmethod
    def for_endpoint(cls, vt: VertexType, ref: str) -> "_Relation":
        cols: dict[tuple[str, str], Column] = {}
        for cdef in vt.table.schema:
            src = vt.table.column(cdef.name)
            cols[(ref, cdef.name)] = src.take(vt.rows)
        cols[(ref, VID)] = Column(INTEGER, vt.row_vids.astype(np.int64))
        return cls(cols, len(vt.rows))

    @classmethod
    def for_table(cls, table: Table, ref: str) -> "_Relation":
        cols: dict[tuple[str, str], Column] = {}
        for cdef in table.schema:
            cols[(ref, cdef.name)] = table.column(cdef.name)
        cols[(ref, ROWID)] = Column(INTEGER, np.arange(table.num_rows, dtype=np.int64))
        return cls(cols, table.num_rows)

    def qualifiers(self) -> set[str]:
        return {q for q, _ in self.columns}

    def take(self, idx: np.ndarray) -> "_Relation":
        return _Relation({k: c.take(idx) for k, c in self.columns.items()}, len(idx))

    def join(self, other: "_Relation", pairs: list[tuple[tuple[str, str], tuple[str, str]]]) -> "_Relation":
        """Equi-join on [(my_key, other_key)] column pairs (vectorized)."""
        lcols = [self.columns[a] for a, _ in pairs]
        rcols = [other.columns[b] for _, b in pairs]
        li, ri = _join_arrays(lcols, rcols)
        cols = {k: c.take(li) for k, c in self.columns.items()}
        cols.update({k: c.take(ri) for k, c in other.columns.items()})
        return _Relation(cols, len(li))

    def cross(self, other: "_Relation") -> "_Relation":
        li = np.repeat(np.arange(self.nrows), other.nrows)
        ri = np.tile(np.arange(other.nrows), self.nrows)
        cols = {k: c.take(li) for k, c in self.columns.items()}
        cols.update({k: c.take(ri) for k, c in other.columns.items()})
        return _Relation(cols, len(li))

    def env(self) -> Env:
        mapping = {
            (q, n): (c.data, c.dtype) for (q, n), c in self.columns.items()
        }
        return Env.from_columns(mapping, self.nrows)


def _join_arrays(lcols: list[Column], rcols: list[Column]) -> tuple[np.ndarray, np.ndarray]:
    """All matching row-index pairs between two column lists (inner join)."""
    lcodes, rcodes, lvalid, rvalid = _shared_codes(lcols, rcols)
    lidx = np.flatnonzero(lvalid)
    ridx = np.flatnonzero(rvalid)
    lc = lcodes[lidx]
    rc = rcodes[ridx]
    order = np.argsort(rc, kind="stable")
    rs = rc[order]
    lo = np.searchsorted(rs, lc, side="left")
    hi = np.searchsorted(rs, lc, side="right")
    counts = hi - lo
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    li_rep = np.repeat(np.arange(len(lc)), counts)
    starts = np.repeat(lo, counts)
    offsets = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
    return lidx[li_rep], ridx[order[starts + offsets]]


class EdgeType:
    """A built edge view: source/target vid arrays plus optional attributes."""

    def __init__(
        self,
        name: str,
        source: VertexType,
        target: VertexType,
        source_ref: str,
        target_ref: str,
        from_tables: list[Table],
        where: Optional[Expr],
        table_lookup: Optional[Callable[[str], Optional[Table]]] = None,
    ) -> None:
        if source_ref == target_ref:
            raise CatalogError(
                f"edge {name!r}: endpoints must have distinct names — "
                f"alias one of them ('{source.name} as A')"
            )
        self.name = name
        self.source = source
        self.target = target
        self.source_ref = source_ref
        self.target_ref = target_ref
        self.from_tables = list(from_tables)
        self.where = where
        self._table_lookup = table_lookup or (lambda _n: None)
        if len(self.from_tables) == 1:
            self.assoc_table: Optional[Table] = self.from_tables[0]
        else:
            self.assoc_table = None
        self._build()

    # ------------------------------------------------------------------
    # Construction (Eq. 2)
    # ------------------------------------------------------------------
    def _build(self) -> None:
        relations: dict[str, _Relation] = {
            self.source_ref: _Relation.for_endpoint(self.source, self.source_ref),
            self.target_ref: _Relation.for_endpoint(self.target, self.target_ref),
        }
        for t in self.from_tables:
            if t.name in relations:
                raise CatalogError(
                    f"edge {self.name!r}: relation name {t.name!r} used twice"
                )
            relations[t.name] = _Relation.for_table(t, t.name)
        cjs = conjuncts(self.where)
        # resolve qualifiers; pull in tables referenced only in the where
        for cj in cjs:
            for ref in col_refs(cj):
                q = ref.qualifier
                if q is None:
                    raise TypeCheckError(
                        f"edge {self.name!r}: unqualified attribute "
                        f"{ref.name!r} in where clause — qualify it"
                    )
                if q not in relations:
                    t = self._table_lookup(q)
                    if t is None:
                        raise TypeCheckError(
                            f"edge {self.name!r}: unknown relation {q!r} in "
                            f"where clause"
                        )
                    relations[q] = _Relation.for_table(t, q)
        join_preds: list[tuple[tuple[str, str], tuple[str, str], Expr]] = []
        filters: list[Expr] = []
        for cj in cjs:
            pred = _as_join_predicate(cj)
            if pred is not None and pred[0][0] != pred[1][0]:
                join_preds.append((pred[0], pred[1], cj))
            else:
                filters.append(cj)
        working = relations[self.source_ref]
        joined = {self.source_ref}
        remaining = {q: r for q, r in relations.items() if q != self.source_ref}
        pending = list(join_preds)
        while remaining:
            # gather all predicates connecting the joined set to one relation
            batch: dict[str, list[tuple[tuple[str, str], tuple[str, str]]]] = {}
            for a, b, _ in pending:
                if a[0] in joined and b[0] in remaining:
                    batch.setdefault(b[0], []).append((a, b))
                elif b[0] in joined and a[0] in remaining:
                    batch.setdefault(a[0], []).append((b, a))
            if batch:
                # join the relation with the most predicates first (most
                # selective under equal cardinalities)
                q = max(batch, key=lambda k: len(batch[k]))
                working = working.join(remaining.pop(q), batch[q])
                joined.add(q)
                pending = [
                    p for p in pending
                    if not (p[0][0] in joined and p[1][0] in joined)
                ]
            else:
                # no connecting predicate: cross join (rare, but Eq. 2's
                # "tables of the vertex types are joined" permits it)
                q = next(iter(remaining))
                working = working.cross(remaining.pop(q))
                joined.add(q)
        # join predicates both of whose sides were already joined act as
        # filters (cycles in the join graph)
        for a, b, cj in pending:
            filters.append(cj)
        for f in filters:
            mask = evaluate_predicate(f, working.env())
            working = working.take(np.flatnonzero(mask))
        src = working.columns[(self.source_ref, VID)].data
        tgt = working.columns[(self.target_ref, VID)].data
        if self.assoc_table is not None:
            rows = working.columns[(self.assoc_table.name, ROWID)].data
            triples = np.stack([src, tgt, rows])
            _, keep = np.unique(triples, axis=1, return_index=True)
            keep.sort()
            self.src_vids = src[keep]
            self.tgt_vids = tgt[keep]
            self.assoc_rows: Optional[np.ndarray] = rows[keep]
        else:
            pairs = np.stack([src, tgt]) if len(src) else np.empty((2, 0), dtype=np.int64)
            _, keep = np.unique(pairs, axis=1, return_index=True)
            keep.sort()
            self.src_vids = src[keep]
            self.tgt_vids = tgt[keep]
            self.assoc_rows = None
        self.num_edges: int = len(self.src_vids)

    def refresh(self) -> None:
        """Rebuild after any underlying table changed (atomic ingest)."""
        self._build()

    # ------------------------------------------------------------------
    # Attributes (from the associated table)
    # ------------------------------------------------------------------
    def attribute_schema(self) -> Schema:
        if self.assoc_table is None:
            return Schema([])
        return self.assoc_table.schema

    def has_attribute(self, name: str) -> bool:
        return self.assoc_table is not None and self.assoc_table.schema.has(name)

    def attribute_type(self, name: str) -> DataType:
        if not self.has_attribute(name):
            raise TypeCheckError(
                f"edge type {self.name!r} has no attribute {name!r}"
            )
        return self.assoc_table.schema.type_of(name)

    def attribute_array(self, name: str) -> tuple[np.ndarray, DataType]:
        """Attribute values aligned with eids 0..m-1."""
        dtype = self.attribute_type(name)
        col = self.assoc_table.column(name)
        return col.data[self.assoc_rows], dtype

    # ------------------------------------------------------------------
    # Query-time selection (an edge query step)
    # ------------------------------------------------------------------
    def select(self, cond: Optional[Expr], candidates: Optional[np.ndarray] = None) -> np.ndarray:
        """eids satisfying *cond*, optionally restricted to *candidates*."""
        if candidates is None:
            candidates = np.arange(self.num_edges)
        if cond is None or len(candidates) == 0:
            return candidates

        def resolver(qualifier: str | None, name: str):
            if qualifier not in (None, self.name):
                raise TypeCheckError(
                    f"cannot resolve qualifier {qualifier!r} on edge type "
                    f"{self.name!r}"
                )
            arr, dtype = self.attribute_array(name)
            return arr[candidates], dtype

        env = Env(resolver, len(candidates))
        mask = evaluate_predicate(cond, env)
        return candidates[mask]

    def endpoints_of(self, eid: int) -> tuple[int, int]:
        return int(self.src_vids[eid]), int(self.tgt_vids[eid])

    def __repr__(self) -> str:
        return (
            f"EdgeType({self.name!r}, {self.source.name} -> {self.target.name}, "
            f"m={self.num_edges})"
        )


def _as_join_predicate(expr: Expr):
    """If *expr* is ``a.x = b.y`` with qualified refs, return the pair."""
    if (
        isinstance(expr, BinOp)
        and expr.op == "="
        and isinstance(expr.left, ColRef)
        and isinstance(expr.right, ColRef)
        and expr.left.qualifier is not None
        and expr.right.qualifier is not None
    ):
        return (
            (expr.left.qualifier, expr.left.name),
            (expr.right.qualifier, expr.right.name),
        )
    return None
