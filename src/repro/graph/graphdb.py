"""The assembled attributed-graph database.

:class:`GraphDB` owns the tabular store plus every declared vertex/edge
view and their bidirectional edge indexes, and maintains the paper's
structural invariants:

* G = (V, E) with V = ∪ V_p and E = ∪ E_r, the types partitioning each
  (Section II-A1) — guaranteed by construction since ids are per-type;
* G is a directed multigraph (parallel edges allowed via ``from table``
  edge declarations);
* ``ingest`` is atomic: the table append either fully succeeds or changes
  nothing, and *every* dependent vertex/edge view (and its indexes) is
  rebuilt before the call returns (Section II-A2).

This class is the single-node backend; the simulated cluster
(:mod:`repro.dist`) partitions one of these across workers.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import CatalogError
from repro.graph.attr_index import GraphAttrIndex
from repro.graph.edge import EdgeType
from repro.graph.edge_index import BidirectionalIndex
from repro.graph.subgraph import Subgraph
from repro.graph.vertex import VertexType
from repro.storage.csvio import read_csv_into, read_csv_text_into
from repro.storage.expr import Expr, col_refs
from repro.storage.schema import Schema
from repro.storage.table import Table


class GraphDB:
    """Tables + vertex/edge views + indexes + named query results."""

    def __init__(self) -> None:
        self.tables: dict[str, Table] = {}
        self.vertex_types: dict[str, VertexType] = {}
        self.edge_types: dict[str, EdgeType] = {}
        self.indexes: dict[str, BidirectionalIndex] = {}
        #: named secondary attribute indexes (``create index`` DDL)
        self.attr_indexes: dict[str, GraphAttrIndex] = {}
        self.subgraphs: dict[str, Subgraph] = {}
        #: names of tables created by 'into table' (overwritable results)
        self.derived_tables: set[str] = set()
        #: durability journal (duck-typed, e.g.
        #: :class:`repro.durability.DurableStore`): when set, every
        #: mutation is logged *after* it applies, through its ``on_*``
        #: hooks.  None keeps the database purely in-memory with zero
        #: overhead.  This is the single choke point all transports
        #: (IR submission, local connections, prepared statements,
        #: pipelined scripts, direct ingest APIs) funnel through.
        self.journal = None

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------
    def create_table(self, name: str, schema: Schema) -> Table:
        if name in self.tables:
            raise CatalogError(f"table {name!r} already exists")
        if name in self.vertex_types or name in self.edge_types:
            raise CatalogError(f"name {name!r} already used by a graph type")
        table = Table(name, schema)
        self.tables[name] = table
        if self.journal is not None:
            self.journal.on_create_table(table)
        return table

    def create_vertex(
        self,
        name: str,
        key_cols: list[str],
        table_name: str,
        where: Optional[Expr] = None,
    ) -> VertexType:
        if name in self.vertex_types:
            raise CatalogError(f"vertex type {name!r} already exists")
        if name in self.tables or name in self.edge_types:
            raise CatalogError(f"name {name!r} already in use")
        table = self.table(table_name)
        vt = VertexType(name, key_cols, table, where)
        self.vertex_types[name] = vt
        if self.journal is not None:
            self.journal.on_create_vertex(vt)
        return vt

    def create_edge(
        self,
        name: str,
        source_type: str,
        target_type: str,
        source_ref: Optional[str] = None,
        target_ref: Optional[str] = None,
        from_tables: Optional[list[str]] = None,
        where: Optional[Expr] = None,
    ) -> EdgeType:
        if name in self.edge_types:
            raise CatalogError(f"edge type {name!r} already exists")
        if name in self.tables or name in self.vertex_types:
            raise CatalogError(f"name {name!r} already in use")
        src = self.vertex_type(source_type)
        tgt = self.vertex_type(target_type)
        tables = [self.table(t) for t in (from_tables or [])]
        et = EdgeType(
            name,
            src,
            tgt,
            source_ref or source_type,
            target_ref or target_type,
            tables,
            where,
            table_lookup=self.tables.get,
        )
        self.edge_types[name] = et
        self.indexes[name] = BidirectionalIndex(et)
        if self.journal is not None:
            self.journal.on_create_edge(et)
        return et

    def create_attr_index(self, name: str, target: str, attrs: list[str]) -> GraphAttrIndex:
        """Build a named secondary index over a vertex/edge type's attributes."""
        if name in self.attr_indexes:
            raise CatalogError(f"index {name!r} already exists")
        if name in self.tables or name in self.vertex_types or name in self.edge_types:
            raise CatalogError(f"name {name!r} already in use")
        if target in self.vertex_types:
            obj = self.vertex_types[target]
        elif target in self.edge_types:
            obj = self.edge_types[target]
        else:
            raise CatalogError(
                f"unknown vertex or edge type {target!r} to index"
            )
        for a in attrs:
            obj.attribute_type(a)  # raises with the view's own hint
        gi = GraphAttrIndex(name, obj, attrs)
        self.attr_indexes[name] = gi
        if self.journal is not None:
            self.journal.on_create_index(gi)
        return gi

    def drop_attr_index(self, name: str) -> None:
        if name not in self.attr_indexes:
            raise CatalogError(f"unknown index {name!r}")
        del self.attr_indexes[name]
        if self.journal is not None:
            self.journal.on_drop_index(name)

    def attr_index(self, name: str) -> GraphAttrIndex:
        try:
            return self.attr_indexes[name]
        except KeyError:
            raise CatalogError(f"unknown index {name!r}") from None

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}") from None

    def vertex_type(self, name: str) -> VertexType:
        try:
            return self.vertex_types[name]
        except KeyError:
            raise CatalogError(f"unknown vertex type {name!r}") from None

    def edge_type(self, name: str) -> EdgeType:
        try:
            return self.edge_types[name]
        except KeyError:
            raise CatalogError(f"unknown edge type {name!r}") from None

    def index(self, edge_name: str) -> BidirectionalIndex:
        return self.indexes[edge_name]

    def subgraph(self, name: str) -> Subgraph:
        try:
            return self.subgraphs[name]
        except KeyError:
            raise CatalogError(f"unknown subgraph {name!r}") from None

    def edge_types_between(
        self, source_type: Optional[str], target_type: Optional[str]
    ) -> list[EdgeType]:
        """All edge types E_i(V_a, V_b) compatible with the given endpoint
        types — the union of Section II-B4's variant-step matching.  A None
        endpoint matches any type."""
        out = []
        for et in self.edge_types.values():
            if source_type is not None and et.source.name != source_type:
                continue
            if target_type is not None and et.target.name != target_type:
                continue
            out.append(et)
        return out

    # ------------------------------------------------------------------
    # Ingest (atomic, with dependent-view rebuild)
    # ------------------------------------------------------------------
    def ingest(self, table_name: str, path: str) -> int:
        table = self.table(table_name)
        start = table.num_rows
        count = read_csv_into(table, path)
        self._rebuild_dependents(table_name)
        if self.journal is not None and count:
            # the *rows* are journaled, not the file path: replay must
            # not depend on the CSV still existing (or being unchanged)
            self.journal.on_ingest(table, start)
        return count

    def ingest_text(self, table_name: str, text: str) -> int:
        """Ingest from CSV text (workload generators and tests)."""
        table = self.table(table_name)
        start = table.num_rows
        count = read_csv_text_into(table, text)
        self._rebuild_dependents(table_name)
        if self.journal is not None and count:
            self.journal.on_ingest(table, start)
        return count

    def ingest_rows(self, table_name: str, rows) -> int:
        """Ingest stored-form rows directly (fast path for generators)."""
        table = self.table(table_name)
        start = table.num_rows
        table.append_rows(rows)
        self._rebuild_dependents(table_name)
        if self.journal is not None and rows:
            self.journal.on_ingest(table, start)
        return len(rows)

    def _edge_dependencies(self, et: EdgeType) -> set[str]:
        deps = {et.source.table.name, et.target.table.name}
        deps.update(t.name for t in et.from_tables)
        if et.where is not None:
            for ref in col_refs(et.where):
                if ref.qualifier in self.tables:
                    deps.add(ref.qualifier)
        return deps

    def _rebuild_dependents(self, table_name: str) -> None:
        refreshed_vertices = set()
        for vt in self.vertex_types.values():
            if vt.table.name == table_name:
                vt.refresh()
                refreshed_vertices.add(vt.name)
        refreshed_edges = set()
        for et in self.edge_types.values():
            deps = self._edge_dependencies(et)
            if (
                table_name in deps
                or et.source.name in refreshed_vertices
                or et.target.name in refreshed_vertices
            ):
                et.refresh()
                self.indexes[et.name] = BidirectionalIndex(et)
                refreshed_edges.add(et.name)
        for gi in self.attr_indexes.values():
            if gi.target_name in refreshed_vertices or gi.target_name in refreshed_edges:
                gi.rebuild()

    # ------------------------------------------------------------------
    # Query results
    # ------------------------------------------------------------------
    def register_result_table(self, name: str, table: Table) -> None:
        """Bind an ``into table`` result; results may be overwritten but
        never shadow a declared base table."""
        if name in self.tables and name not in self.derived_tables:
            raise CatalogError(
                f"cannot overwrite base table {name!r} with a query result"
            )
        self.tables[name] = Table(name, table.schema, table.columns)
        self.derived_tables.add(name)
        if self.journal is not None:
            self.journal.on_result_table(self.tables[name])

    def register_subgraph(self, subgraph: Subgraph) -> None:
        self.subgraphs[subgraph.name] = subgraph
        if self.journal is not None:
            self.journal.on_subgraph(subgraph)

    # ------------------------------------------------------------------
    # Whole-graph statistics
    # ------------------------------------------------------------------
    def total_vertices(self) -> int:
        return sum(vt.num_vertices for vt in self.vertex_types.values())

    def total_edges(self) -> int:
        return sum(et.num_edges for et in self.edge_types.values())

    def check_partition_invariants(self) -> bool:
        """Verify Section II-A1: every edge endpoint is a valid vid of its
        declared endpoint type (types partition V/E by construction)."""
        for et in self.edge_types.values():
            if len(et.src_vids) == 0:
                continue
            if et.src_vids.min() < 0 or et.src_vids.max() >= et.source.num_vertices:
                return False
            if et.tgt_vids.min() < 0 or et.tgt_vids.max() >= et.target.num_vertices:
                return False
        return True

    def __repr__(self) -> str:
        return (
            f"GraphDB(tables={len(self.tables)}, "
            f"vertex_types={len(self.vertex_types)}, "
            f"edge_types={len(self.edge_types)}, "
            f"V={self.total_vertices()}, E={self.total_edges()})"
        )
