"""Named subgraph results (Section II-C).

A query's ``into subgraph G`` output is a set of vertices and edges drawn
from the overall graph — possibly disconnected, and possibly spanning many
vertex/edge types.  Because vertex types partition V and edge types
partition E (Section II-A1), a subgraph is exactly: per-type sorted vid
arrays plus per-type sorted eid arrays.  Vids/eids refer back into the
database's types, so a subgraph is a lightweight selection, not a copy.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

_EMPTY = np.empty(0, dtype=np.int64)


def _clean(ids: Iterable[int] | np.ndarray) -> np.ndarray:
    arr = np.asarray(list(ids) if not isinstance(ids, np.ndarray) else ids, dtype=np.int64)
    return np.unique(arr)


class Subgraph:
    """A per-type selection of vertices and edges."""

    def __init__(
        self,
        name: str,
        vertices: Mapping[str, np.ndarray] | None = None,
        edges: Mapping[str, np.ndarray] | None = None,
    ) -> None:
        self.name = name
        self.vertices: dict[str, np.ndarray] = {
            k: _clean(v) for k, v in (vertices or {}).items() if len(v)
        }
        self.edges: dict[str, np.ndarray] = {
            k: _clean(v) for k, v in (edges or {}).items() if len(v)
        }

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def vertex_ids(self, type_name: str) -> np.ndarray:
        return self.vertices.get(type_name, _EMPTY)

    def edge_ids(self, type_name: str) -> np.ndarray:
        return self.edges.get(type_name, _EMPTY)

    def has_vertex_type(self, type_name: str) -> bool:
        return type_name in self.vertices

    @property
    def num_vertices(self) -> int:
        return sum(len(v) for v in self.vertices.values())

    @property
    def num_edges(self) -> int:
        return sum(len(e) for e in self.edges.values())

    # ------------------------------------------------------------------
    # Set algebra (or-composition, Section II-B3)
    # ------------------------------------------------------------------
    def union(self, other: "Subgraph", name: str | None = None) -> "Subgraph":
        vertices: dict[str, np.ndarray] = {}
        for k in set(self.vertices) | set(other.vertices):
            vertices[k] = np.union1d(self.vertex_ids(k), other.vertex_ids(k))
        edges: dict[str, np.ndarray] = {}
        for k in set(self.edges) | set(other.edges):
            edges[k] = np.union1d(self.edge_ids(k), other.edge_ids(k))
        return Subgraph(name or self.name, vertices, edges)

    def intersect_vertices(self, other: "Subgraph", name: str | None = None) -> "Subgraph":
        vertices: dict[str, np.ndarray] = {}
        for k in set(self.vertices) & set(other.vertices):
            common = np.intersect1d(self.vertex_ids(k), other.vertex_ids(k))
            if len(common):
                vertices[k] = common
        return Subgraph(name or self.name, vertices, {})

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Subgraph):
            return NotImplemented
        return (
            {k: tuple(v) for k, v in self.vertices.items()}
            == {k: tuple(v) for k, v in other.vertices.items()}
            and {k: tuple(v) for k, v in self.edges.items()}
            == {k: tuple(v) for k, v in other.edges.items()}
        )

    def __repr__(self) -> str:
        v = {k: len(v) for k, v in self.vertices.items()}
        e = {k: len(x) for k, x in self.edges.items()}
        return f"Subgraph({self.name!r}, vertices={v}, edges={e})"
