"""Incremental, rotation-aware tailing of a live write-ahead log.

The primary streams its WAL to replicas by *tailing its own log file*
(docs/REPLICATION.md): :class:`WalTailer` keeps a byte offset into
``wal.log`` and each :meth:`~WalTailer.poll` parses every record
appended since the last poll, applying exactly the same validation
discipline as recovery's :func:`~repro.durability.wal.read_wal` —
checksummed header, canonical-JSON payload, strictly increasing
sequence numbers.  Three situations make live tailing harder than a
one-shot recovery scan, and each has a defined behaviour:

* **Torn tail.**  A record that is incomplete or corrupt at the end of
  the file stops the poll *without advancing past the last valid
  record*.  Under normal operation that is simply an append racing the
  tailer and the next poll picks the record up whole; after a crash it
  is a genuinely torn tail, and the tailer holds position until the
  primary repairs the file (recovery truncates the tail in place), at
  which point streaming resumes from the same offset.
* **Rotation.**  ``DurableStore.checkpoint()`` atomically replaces
  ``wal.log`` with a fresh magic-only file.  The tailer detects the
  swap (file identity changed, or the file shrank below our offset)
  and restarts from byte 0, skipping records already delivered
  (``seq <= last_seq``).
* **Gap.**  If after a rotation the first unseen record's ``seq``
  jumps past ``last_seq + 1``, the checkpoint truncated records this
  subscriber never received.  The tailer cannot recover by reading —
  the bytes are gone — so the poll reports ``gap=True`` and the
  primary falls back to shipping a fresh snapshot.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.durability.wal import (
    END_BAD_LENGTH,
    END_BAD_MAGIC,
    END_BAD_PAYLOAD,
    END_CLEAN,
    END_CRC_MISMATCH,
    END_TORN_HEADER,
    END_TORN_PAYLOAD,
    HEADER_LEN,
    MAGIC,
    MAX_RECORD_BYTES,
    _HEADER,
)


@dataclass
class TailPoll:
    """The outcome of one :meth:`WalTailer.poll`.

    ``records`` are the newly visible, fully validated records with
    ``seq > last_seq`` in order.  ``gap`` means the log rotated past
    records this tailer never delivered — the subscriber needs a
    snapshot, not more polling.  ``reason`` is the
    :mod:`~repro.durability.wal` ``END_*`` constant that stopped the
    scan (``END_CLEAN`` when the poll consumed the whole file) and
    ``halted`` is True when that reason indicates a torn or corrupt
    tail the tailer is now parked on.
    """

    records: list[dict[str, Any]] = field(default_factory=list)
    gap: bool = False
    reason: str = END_CLEAN

    @property
    def halted(self) -> bool:
        return self.reason != END_CLEAN


class WalTailer:
    """Tail *path*, yielding each record exactly once past *last_seq*.

    Single-threaded: one tailer serves one subscriber.  The tailer
    opens the file fresh on every poll (polls are seconds apart at
    most and a cached handle would pin a rotated-away inode), so it is
    safe against the store's ``os.replace`` checkpoint swap on every
    platform the repo targets.
    """

    def __init__(self, path: str, last_seq: int) -> None:
        self.path = path
        #: highest seq delivered to the subscriber (or snapshotted)
        self.last_seq = last_seq
        #: byte offset of the first unparsed byte; 0 means the magic
        #: preamble has not been consumed yet
        self.offset = 0
        self._ino: Optional[int] = None

    # ------------------------------------------------------------------
    def poll(self) -> TailPoll:
        """Parse everything new since the last poll (see class docs)."""
        out = TailPoll()
        try:
            with open(self.path, "rb") as fh:
                st = os.fstat(fh.fileno())
                if self._ino is not None and (
                    st.st_ino != self._ino or st.st_size < self.offset
                ):
                    # rotated (checkpoint swap) or truncated in place
                    # (recovery repair that cut below us): rescan from
                    # the top, dropping already-delivered records
                    self.offset = 0
                self._ino = st.st_ino
                fh.seek(self.offset)
                blob = fh.read()
        except FileNotFoundError:
            # mid-rotation window between unlink and replace; treat as
            # "nothing new yet" and re-stat next poll
            return out

        base = self.offset  # file offset of blob[0]
        pos = 0
        if base == 0:
            if len(blob) < len(MAGIC):
                out.reason = END_TORN_HEADER
                return out
            if blob[: len(MAGIC)] != MAGIC:
                out.reason = END_BAD_MAGIC
                return out
            pos = len(MAGIC)
            self.offset = base + pos

        while True:
            record, consumed, reason = self._parse_one(blob, pos)
            if record is None:
                out.reason = reason
                break
            pos += consumed
            seq = record.get("seq")
            if not isinstance(seq, int):
                out.reason = END_BAD_PAYLOAD
                break
            if seq <= self.last_seq:
                # pre-rotation record we already delivered
                self.offset = base + pos
                continue
            if seq != self.last_seq + 1:
                # the log rotated past records we never saw: the bytes
                # are gone, only a snapshot can catch this subscriber up
                out.gap = True
                break
            out.records.append(record)
            self.last_seq = seq
            self.offset = base + pos
        return out

    # ------------------------------------------------------------------
    @staticmethod
    def _parse_one(
        blob: bytes, pos: int
    ) -> "tuple[Optional[dict[str, Any]], int, str]":
        """One record at *pos* of *blob*: ``(record, bytes, reason)``.

        ``record`` is None when the scan must stop; ``reason`` then
        says why (``END_CLEAN`` at a clean end-of-buffer, otherwise a
        torn/corrupt-tail constant).
        """
        remaining = len(blob) - pos
        if remaining == 0:
            return None, 0, END_CLEAN
        if remaining < HEADER_LEN:
            return None, 0, END_TORN_HEADER
        length, crc = _HEADER.unpack_from(blob, pos)
        if length > MAX_RECORD_BYTES:
            return None, 0, END_BAD_LENGTH
        start = pos + HEADER_LEN
        if start + length > len(blob):
            return None, 0, END_TORN_PAYLOAD
        payload = blob[start : start + length]
        if zlib.crc32(payload) != crc:
            return None, 0, END_CRC_MISMATCH
        try:
            record = json.loads(payload.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            return None, 0, END_BAD_PAYLOAD
        if not isinstance(record, dict):
            return None, 0, END_BAD_PAYLOAD
        return record, HEADER_LEN + length, END_CLEAN
