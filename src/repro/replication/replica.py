"""Replica-side replication: subscribe, apply, serve reads, promote.

A :class:`Replica` owns a read-only
:class:`~repro.engine.session.Database` and keeps it converged with a
primary by consuming its WAL stream (docs/REPLICATION.md):

* the **applier thread** dials the primary, performs the normal
  ``GRQLNET1`` handshake, sends ``REPL_SUBSCRIBE {from_seq,
  repl_epoch}`` and then applies whatever comes back — a snapshot
  install for catch-up, then one ``REPL_RECORD`` at a time through
  :meth:`~repro.durability.DurableStore.apply_replicated` (the recovery
  path, journal unhooked).  Each apply happens under the serving
  engine's *write* lock so readers always observe statement boundaries;
  the ``REPL_ACK`` is sent **after** the record is durable in the
  replica's own WAL and **outside** the lock (acknowledging before
  durability is the GDL021 defect; sending inside the lock is GDL010);
* **reads** are served normally — the engine is in read-only mode, so
  client writes fail fast with :class:`~repro.errors.NotPrimary`
  carrying the primary's URL for the client to follow;
* the subscription is **self-healing**: a lost primary means backoff
  and redial, not a dead replica.  Epoch-fence rejections
  (:class:`~repro.errors.ReplicaStale`) are fatal by design — they mean
  this node's history has diverged from the stream's;
* :meth:`promote` turns the replica into a primary: stop the applier,
  bump the persisted replication epoch (fencing off the old primary's
  future writes), and lift read-only mode.  Acknowledged writes are by
  definition in the replica's WAL, so nothing needs replaying beyond
  what the applier already did.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Any, Optional

from repro.engine.session import Database
from repro.errors import (
    GraQLError,
    PromotionError,
    ProtocolError,
    ReplicaStale,
)
from repro.net.frame import (
    FT_BYE,
    FT_ERROR,
    FT_HELLO,
    FT_HELLO_OK,
    FT_REPL_ACK,
    FT_REPL_RECORD,
    FT_REPL_SNAPSHOT,
    FT_REPL_SUBSCRIBE,
    FrameSocket,
    PROTOCOL_VERSION,
)
from repro.net.protocol import decode_error
from repro.obs.replication import ReplicationMetrics
from repro.obs.trace import Span

#: reconnect backoff bounds (seconds)
RECONNECT_MIN = 0.05
RECONNECT_MAX = 2.0


class Replica:
    """A streaming replica of the primary at *primary_url*.

    Owns the :class:`Database` at *path* (opened here, closed by
    :meth:`close`).  ``start()`` begins streaming; ``promote()`` ends
    it and makes the node a writable primary.
    """

    def __init__(
        self,
        path: str,
        primary_url: str,
        *,
        user: str = "admin",
        durability: Optional[dict[str, Any]] = None,
        serving_opts: Optional[dict[str, Any]] = None,
    ) -> None:
        self.primary_url = primary_url
        self.user = user
        self.database = Database.open(
            path, serving_opts=serving_opts, **dict(durability or {})
        )
        if self.database.store is None:
            self.database.close()
            raise PromotionError("a replica requires a durable database path")
        self.database.server.serving.set_read_only(primary_url)
        self.metrics = ReplicationMetrics(self.database.metrics)
        self.promoted = False
        #: message of the last subscription failure (health surface)
        self.last_error: Optional[str] = None
        #: the finished ``replication.promote`` span, once promoted
        self.last_promote_span: Optional[Span] = None
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._fs: Optional[FrameSocket] = None
        self._fs_lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "Replica":
        if self._closed:
            raise PromotionError("replica is closed")
        if self.promoted:
            raise PromotionError("this node was promoted; it no longer streams")
        if self._thread is None:
            self._stop.clear()  # a stopped replica can resubscribe
            self._thread = threading.Thread(
                target=self._run, name="graql-repl-apply", daemon=True
            )
            self._thread.start()
        return self

    def stop(self, timeout: float = 10.0) -> None:
        """Stop streaming (the database stays open and read-only)."""
        self._stop.set()
        self._close_socket()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.stop()
        self.database.close()

    def __enter__(self) -> "Replica":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def connected(self) -> bool:
        with self._fs_lock:
            return self._fs is not None

    def status(self) -> dict[str, Any]:
        store = self.database.store
        return {
            "role": "primary" if self.promoted else "replica",
            "primary": None if self.promoted else self.primary_url,
            "seq": store.seq,
            "repl_epoch": store.replication_epoch,
            "connected": self.connected,
            "last_error": self.last_error,
        }

    # ------------------------------------------------------------------
    # Promotion (docs/REPLICATION.md runbook)
    # ------------------------------------------------------------------
    def promote(self) -> dict[str, Any]:
        """Become the primary: fence, then open for writes.

        Every acknowledged write is already durable in this node's WAL
        (acks are sent post-durability), so promotion is: stop the
        applier, bump the persisted replication epoch past everything
        this timeline has seen, lift read-only mode.  Returns
        ``{"repl_epoch", "seq"}`` for the PROMOTED frame.
        """
        if self.promoted:
            raise PromotionError("this node is already the primary")
        if self._closed:
            raise PromotionError("replica is closed")
        span = Span("replication.promote", {"primary": self.primary_url})
        self.stop()  # the applier finishes its in-flight record first
        store = self.database.store
        serving = self.database.server.serving
        with serving.lock.write_locked():
            epoch = store.bump_replication_epoch()
        serving.set_writable()
        self.promoted = True
        self.metrics.promoted()
        self.metrics.set_connected(False)
        span.set(repl_epoch=epoch, seq=store.seq)
        span.finish()
        #: the finished promotion span — ``graql promote`` over the wire
        #: also lands it on the serving node's ``recent_spans`` ring
        self.last_promote_span = span
        return {"repl_epoch": epoch, "seq": store.seq}

    # ------------------------------------------------------------------
    # Applier
    # ------------------------------------------------------------------
    def _run(self) -> None:
        delay = RECONNECT_MIN
        while not self._stop.is_set():
            try:
                fs = self._subscribe()
            except ReplicaStale as e:
                self.last_error = str(e)
                self.metrics.set_connected(False)
                return  # diverged timelines never reconverge by retry
            except (GraQLError, OSError) as e:
                self.last_error = str(e)
                self.metrics.set_connected(False)
                if self._stop.wait(delay):
                    return
                delay = min(delay * 2, RECONNECT_MAX)
                continue
            delay = RECONNECT_MIN
            self.last_error = None
            self.metrics.set_connected(True)
            try:
                self._apply_loop(fs)
            except ReplicaStale as e:
                self.last_error = str(e)
                self.metrics.set_connected(False)
                return
            except (GraQLError, OSError) as e:
                if not self._stop.is_set():  # a commanded stop is not a fault
                    self.last_error = str(e)
            finally:
                self._close_socket()
                self.metrics.set_connected(False)

    def _subscribe(self) -> FrameSocket:
        """Dial the primary and leave the socket subscribed (the first
        REPL_SNAPSHOT frame — resume or snapshot — already applied)."""
        from repro.net.client import parse_endpoints

        host, port = parse_endpoints(self.primary_url)[0]
        sock = socket.create_connection((host, port), timeout=10.0)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        fs = FrameSocket(sock)
        try:
            fs.send_magic()
            fs.send_frame(
                FT_HELLO, {"proto": PROTOCOL_VERSION, "user": self.user}
            )
            ftype, payload = fs.recv_frame()
            if ftype == FT_ERROR:
                raise decode_error(payload)
            if ftype != FT_HELLO_OK:
                raise ProtocolError(f"expected HELLO_OK, got frame type {ftype}")
            store = self.database.store
            fs.send_frame(
                FT_REPL_SUBSCRIBE,
                {"from_seq": store.seq, "repl_epoch": store.replication_epoch},
            )
            sock.settimeout(None)
            ftype, payload = fs.recv_frame()
            if ftype == FT_ERROR:
                raise decode_error(payload)
            if ftype != FT_REPL_SNAPSHOT:
                raise ProtocolError(
                    f"expected REPL_SNAPSHOT to open the stream, "
                    f"got frame type {ftype}"
                )
            self._handle_snapshot(fs, payload)
        except BaseException:
            fs.close()
            raise
        with self._fs_lock:
            self._fs = fs
        return fs

    def _apply_loop(self, fs: FrameSocket) -> None:
        store = self.database.store
        while not self._stop.is_set():
            ftype, payload = fs.recv_frame()
            if ftype == FT_REPL_RECORD:
                record = payload["record"]
                seq = self._apply_record(record)
                # ack only after apply_replicated returned, i.e. the
                # record is durable in our own WAL — and outside the
                # serving lock, so a slow peer cannot stall readers
                fs.send_frame(FT_REPL_ACK, {"seq": seq})
            elif ftype == FT_REPL_SNAPSHOT:
                # mid-stream re-seed after the primary checkpointed past us
                self._handle_snapshot(fs, payload)
            elif ftype == FT_ERROR:
                raise decode_error(payload)
            elif ftype == FT_BYE:
                return
            else:
                raise ProtocolError(
                    f"unexpected frame type {ftype} on the replication stream"
                )

    def _handle_snapshot(self, fs: FrameSocket, payload: dict[str, Any]) -> None:
        if payload.get("resume"):
            store = self.database.store
            store.adopt_replication_epoch(
                int(payload.get("repl_epoch", 0)),
                history=payload.get("repl_history"),
            )
            return
        self._install_snapshot(payload["snapshot"])
        fs.send_frame(
            FT_REPL_ACK, {"seq": int(payload["snapshot"]["seq"])}
        )

    # ------------------------------------------------------------------
    def _apply_record(self, record: dict[str, Any]) -> int:
        db = self.database
        serving = db.server.serving
        with serving.lock.write_locked():
            seq = db.store.apply_replicated(record)
            db.catalog.refresh(db.db)
            self._sync_users()
            db.store.maybe_checkpoint()
        serving.cache.invalidate()
        self.metrics.applied(1, len(str(record)))
        return seq

    def _install_snapshot(self, snapshot: dict[str, Any]) -> None:
        db = self.database
        serving = db.server.serving
        with serving.lock.write_locked():
            db.store.install_snapshot(snapshot)
            db.catalog.refresh(db.db)
            self._sync_users()
        serving.cache.invalidate()
        self.metrics.snapshot_installed()

    def _sync_users(self) -> None:
        """Mirror the store's replicated accounts into the engine server
        (the two are reconciled at open time; streamed CREATE/DROP USER
        records must keep them converged live)."""
        from repro.engine.server import ROLE_ADMIN, User

        server = self.database.server
        current = dict(self.database.store.users)
        for name, role in current.items():
            known = server.users.get(name)
            if known is None or known.role != role:
                server.users[name] = User(name, role)
        for name in list(server.users):
            if name not in current and name != "admin":
                del server.users[name]
        if "admin" not in current:
            # the bootstrap admin always exists locally
            server.users.setdefault("admin", User("admin", ROLE_ADMIN))

    # ------------------------------------------------------------------
    def _close_socket(self) -> None:
        with self._fs_lock:
            fs, self._fs = self._fs, None
        if fs is not None:
            try:
                fs.sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            fs.close()

    def __repr__(self) -> str:
        role = "primary" if self.promoted else "replica"
        return (
            f"Replica({role}, seq={self.database.store.seq}, "
            f"primary={self.primary_url!r})"
        )
