"""WAL-shipping replication (docs/REPLICATION.md).

The primary tails its own write-ahead log
(:class:`~repro.replication.stream.WalTailer`) and streams every
committed record to subscribed replicas over the ``GRQLNET1`` wire
protocol; each replica applies the stream through the recovery path
into its *own* durable WAL, serves read-only queries meanwhile, and can
be promoted to primary after a failover — with a persisted,
monotonically increasing replication epoch fencing off the deposed
primary's stale writes.
"""

from repro.replication.primary import PrimaryReplication, ReplicaPeer
from repro.replication.replica import Replica
from repro.replication.stream import TailPoll, WalTailer

__all__ = [
    "PrimaryReplication",
    "Replica",
    "ReplicaPeer",
    "TailPoll",
    "WalTailer",
]
