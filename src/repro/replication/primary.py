"""Primary-side replication: serve one WAL stream per subscribed replica.

A :class:`PrimaryReplication` manager lives on the serving node (one
per :class:`~repro.net.GraqlServer` with a durable store).  When a
replica sends ``REPL_SUBSCRIBE {from_seq, repl_epoch}``, the session
thread hands its socket over to :meth:`serve_subscription`, which owns
the conversation until the replica disconnects:

* decide **resume vs. snapshot** — if the subscriber's ``from_seq`` is
  still covered by the live WAL, answer ``REPL_SNAPSHOT {resume}`` and
  stream from there; if the WAL has rotated past it (or the subscriber
  is from a diverged timeline), take a consistent snapshot under the
  serving read lock and ship ``REPL_SNAPSHOT {snapshot}``;
* **stream** — tail the WAL with a
  :class:`~repro.replication.stream.WalTailer`, sending one
  ``REPL_RECORD`` per committed record, waking on the store's append
  feed rather than busy-polling;
* **account** — a small daemon reader thread consumes ``REPL_ACK``
  frames and the stream loop refreshes the per-peer lag gauges
  (records / bytes / seconds, docs/OBSERVABILITY.md) every iteration.

Epoch fencing at subscribe time: a subscriber whose replication epoch
is *ahead* of ours can only be (a replica of) a promoted node — we are
the deposed primary, and feeding it our stale history would fork the
dataset, so the subscription is refused with
:class:`~repro.errors.ReplicaStale`.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Any, Mapping, Optional

from repro.errors import ProtocolError, ReplicaStale
from repro.net.frame import (
    FT_BYE,
    FT_REPL_ACK,
    FT_REPL_RECORD,
    FT_REPL_SNAPSHOT,
    FrameSocket,
)
from repro.obs.replication import ReplicationMetrics
from repro.replication.stream import WalTailer

#: how long the stream loop parks on the append feed before re-checking
#: the stop flag (seconds)
FEED_WAIT = 0.25


class ReplicaPeer:
    """Book-keeping for one subscribed replica (shown by ``graql ping``)."""

    def __init__(self, peer_id: str, addr: str, from_seq: int) -> None:
        self.peer_id = peer_id
        self.addr = addr
        self.from_seq = from_seq
        self.streamed_seq = from_seq
        self.ack_seq = from_seq
        self.ack_at = time.monotonic()
        self.snapshots_sent = 0

    def to_dict(self, store_seq: int) -> dict[str, Any]:
        lag = max(0, store_seq - self.ack_seq)
        return {
            "peer": self.peer_id,
            "addr": self.addr,
            "streamed_seq": self.streamed_seq,
            "ack_seq": self.ack_seq,
            "lag_records": lag,
            "lag_seconds": (
                round(time.monotonic() - self.ack_at, 3) if lag else 0.0
            ),
            "snapshots_sent": self.snapshots_sent,
        }


class PrimaryReplication:
    """Stream this database's WAL to subscribed replicas."""

    def __init__(self, database) -> None:
        self.database = database
        self.store = database.store
        self.metrics = ReplicationMetrics(database.metrics)
        self._peers: dict[str, ReplicaPeer] = {}
        self._peers_lock = threading.Lock()

    # ------------------------------------------------------------------
    def peers(self) -> list[dict[str, Any]]:
        """Current subscribers with their lag, for PONG / ``graql ping``."""
        seq = self.store.seq
        with self._peers_lock:
            return [p.to_dict(seq) for p in self._peers.values()]

    # ------------------------------------------------------------------
    def serve_subscription(
        self, fs: FrameSocket, peer_id: str, addr: str, payload: Mapping[str, Any]
    ) -> None:
        """Own *fs* until the replica goes away (called on the session
        thread; any send/recv failure simply ends the subscription)."""
        store = self.store
        from_seq = int(payload.get("from_seq", 0))
        sub_epoch = int(payload.get("repl_epoch", 0))
        if sub_epoch > store.replication_epoch:
            raise ReplicaStale(
                f"subscriber's replication epoch {sub_epoch} is ahead of this "
                f"node's {store.replication_epoch}; a deposed primary must "
                f"not stream its stale history",
                repl_epoch=store.replication_epoch,
            )

        peer = ReplicaPeer(peer_id, addr, from_seq)
        with self._peers_lock:
            self._peers[peer_id] = peer
        stop = threading.Event()
        ack_thread: Optional[threading.Thread] = None
        try:
            tailer = self._open_stream(fs, peer, from_seq, sub_epoch)
            ack_thread = threading.Thread(
                target=self._ack_loop,
                args=(fs, peer, stop),
                name=f"graql-repl-ack-{peer_id}",
                daemon=True,
            )
            ack_thread.start()
            self._stream_loop(fs, peer, tailer, stop)
        finally:
            stop.set()
            with self._peers_lock:
                self._peers.pop(peer_id, None)
            self.metrics.clear_lag(peer_id)
            # the ack thread exits when the session closes the socket
            # (it is parked in recv); daemon + event keeps it harmless
            # in the window between our return and that close

    # ------------------------------------------------------------------
    def _open_stream(
        self, fs: FrameSocket, peer: ReplicaPeer, from_seq: int, sub_epoch: int
    ) -> WalTailer:
        """Answer the subscribe: resume from the live WAL when possible,
        otherwise ship a snapshot; returns the positioned tailer."""
        store = self.store
        resumable = from_seq <= store.seq
        if resumable and sub_epoch < store.replication_epoch:
            # the subscriber's history ends inside an older epoch; it is
            # shared history only up to that epoch's fork point.  A
            # position past the boundary means the subscriber holds a
            # deposed primary's divergent writes — resuming would
            # silently merge forked timelines, so re-seed instead (the
            # snapshot install discards the divergent tail)
            resumable = from_seq <= store.epoch_boundary(sub_epoch)
        tailer = WalTailer(store.wal_path, from_seq)
        pending = None
        if resumable:
            first = tailer.poll()
            if not first.gap:
                fs.send_frame(
                    FT_REPL_SNAPSHOT,
                    {"resume": True, "seq": from_seq,
                     "repl_epoch": store.replication_epoch,
                     "repl_history": [list(x) for x in store.repl_history]},
                )
                pending = first.records
        if pending is None:
            tailer = self._send_snapshot(fs, peer)
            pending = []
        for record in pending:
            self._send_record(fs, peer, record)
        return tailer

    def _send_snapshot(self, fs: FrameSocket, peer: ReplicaPeer) -> WalTailer:
        """Take a statement-boundary snapshot and ship it; returns a
        tailer positioned just past it."""
        serving = self.database.server.serving
        with serving.lock.read_locked():
            snapshot = self.store.replication_snapshot()
        fs.send_frame(FT_REPL_SNAPSHOT, {"snapshot": snapshot})
        peer.snapshots_sent += 1
        peer.streamed_seq = int(snapshot["seq"])
        self.metrics.snapshot_sent()
        return WalTailer(self.store.wal_path, int(snapshot["seq"]))

    def _send_record(
        self, fs: FrameSocket, peer: ReplicaPeer, record: dict[str, Any]
    ) -> None:
        fs.send_frame(FT_REPL_RECORD, {"record": record})
        peer.streamed_seq = int(record["seq"])
        self.metrics.streamed()

    # ------------------------------------------------------------------
    def _stream_loop(
        self,
        fs: FrameSocket,
        peer: ReplicaPeer,
        tailer: WalTailer,
        stop: threading.Event,
    ) -> None:
        store = self.store
        while not stop.is_set():
            poll = tailer.poll()
            if poll.gap:
                # the WAL rotated past this subscriber: re-seed it
                tailer = self._send_snapshot(fs, peer)
                continue
            for record in poll.records:
                self._send_record(fs, peer, record)
            self._refresh_lag(peer, tailer)
            if not poll.records:
                # a torn tail parks here too: the feed fires again once
                # the store appends (i.e. after recovery repaired it)
                store.wait_for_seq(tailer.last_seq, timeout=FEED_WAIT)

    def _refresh_lag(self, peer: ReplicaPeer, tailer: WalTailer) -> None:
        store = self.store
        ack_seq = peer.ack_seq
        lag_records = max(0, store.seq - ack_seq)
        writer = store._writer
        lag_bytes = max(0, writer.size - tailer.offset) if writer is not None else 0
        lag_seconds = (time.monotonic() - peer.ack_at) if lag_records else 0.0
        self.metrics.set_lag(
            peer.peer_id,
            records=lag_records,
            bytes_=lag_bytes,
            seconds=lag_seconds,
        )

    # ------------------------------------------------------------------
    def _ack_loop(
        self, fs: FrameSocket, peer: ReplicaPeer, stop: threading.Event
    ) -> None:
        """Consume REPL_ACK frames until the replica hangs up."""
        while not stop.is_set():
            try:
                ftype, payload = fs.recv_frame()
            except (ProtocolError, OSError, socket.timeout):
                break
            if ftype == FT_BYE:
                break
            if ftype != FT_REPL_ACK:
                break  # a replica speaking anything else is broken
            peer.ack_seq = max(peer.ack_seq, int(payload.get("seq", 0)))
            peer.ack_at = time.monotonic()
            self.metrics.acked(peer.peer_id)
        stop.set()
