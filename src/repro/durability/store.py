"""The durable store: WAL + checkpoints + crash recovery, as one object.

A durable database is a directory::

    <path>/
        wal.log                     append-only write-ahead log
        checkpoint-000000000042.snap  snapshot through WAL seq 42
        checkpoint-000000000017.snap  previous snapshot (fallback)

:meth:`DurableStore.open` performs recovery — load the newest valid
snapshot, replay the WAL tail after its seq, stop cleanly at the first
torn or checksum-failing record, truncate the torn tail, re-arm the
writer — and returns a store whose ``db``/``users`` are exactly the
state produced by a prefix of the committed statements.

Once open, the store is the *journal* the engine writes through: the
``log_*`` methods are called by :class:`~repro.graph.graphdb.GraphDB`'s
mutation hooks (under the serving layer's write lock) and by the
server's user management.  Commit semantics are log-after-apply: the
in-memory mutation happens first, the record is appended (and fsynced
per policy) before the statement is acknowledged; a crash between the
two loses only the unacknowledged statement, which is precisely the
committed-prefix contract.

If an append or fsync raises, the store **poisons** itself: the failed
record may be half on disk, so acknowledging anything later would break
the prefix guarantee.  Every subsequent mutation raises
:class:`~repro.errors.WalError` until the path is re-opened (re-opening
truncates the torn tail).
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Callable, Optional

from repro.durability import state as st
from repro.durability.checkpoint import (
    load_latest_checkpoint,
    prune_checkpoints,
    write_checkpoint,
)
from repro.durability.faults import StorageFaultInjector
from repro.durability.wal import (
    FSYNC_ALWAYS,
    MAGIC,
    WalWriter,
    read_wal,
)
from repro.errors import ReplicaStale, WalError
from repro.graph.graphdb import GraphDB
from repro.storage.atomic import fsync_dir, fsync_file, temp_path_for

WAL_NAME = "wal.log"
#: sidecar persisting the replication epoch fence (docs/REPLICATION.md)
REPLICATION_META_NAME = "replication.json"

#: default: checkpoint every this many WAL records
DEFAULT_CHECKPOINT_EVERY = 256


class RecoveryReport:
    """What :meth:`DurableStore.open` found and did."""

    def __init__(self) -> None:
        #: path of the snapshot restored, or None (started empty)
        self.snapshot_path: Optional[str] = None
        #: WAL seq the snapshot covered (0 when none)
        self.snapshot_seq = 0
        #: corrupt snapshots skipped while falling back
        self.snapshots_skipped: list[str] = []
        #: WAL records replayed after the snapshot
        self.records_replayed = 0
        #: why the WAL scan ended (END_* constant from repro.durability.wal)
        self.wal_end_reason = "clean-end"
        #: torn/corrupt bytes truncated from the WAL tail
        self.bytes_truncated = 0
        #: last applied WAL seq after recovery
        self.last_seq = 0
        #: wall-clock recovery time
        self.duration_ms = 0.0

    @property
    def clean(self) -> bool:
        return self.wal_end_reason == "clean-end" and not self.snapshots_skipped

    def to_dict(self) -> dict[str, Any]:
        return {
            "snapshot_path": self.snapshot_path,
            "snapshot_seq": self.snapshot_seq,
            "snapshots_skipped": list(self.snapshots_skipped),
            "records_replayed": self.records_replayed,
            "wal_end_reason": self.wal_end_reason,
            "bytes_truncated": self.bytes_truncated,
            "last_seq": self.last_seq,
            "duration_ms": round(self.duration_ms, 3),
            "clean": self.clean,
        }

    def __repr__(self) -> str:
        return (
            f"RecoveryReport(seq={self.last_seq}, "
            f"replayed={self.records_replayed}, {self.wal_end_reason})"
        )


class DurableStore:
    """One durable database directory: recovery, journal, checkpoints."""

    def __init__(
        self,
        path: str,
        *,
        fsync: str = FSYNC_ALWAYS,
        batch_records: int = 64,
        checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
        faults: Optional[StorageFaultInjector] = None,
        metrics=None,
        tracer=None,
    ) -> None:
        self.path = path
        self.wal_path = os.path.join(path, WAL_NAME)
        self.fsync_policy = fsync
        self.batch_records = batch_records
        self.checkpoint_every = checkpoint_every
        self.faults = faults
        self.metrics = metrics
        self.tracer = tracer
        #: callable giving the catalog epoch stamped into each record;
        #: wired by the Database layer after construction
        self.epoch_provider: Optional[Callable[[], int]] = None
        self._lock = threading.Lock()
        #: append feed: notified after every committed record so WAL
        #: tailers (replication streams) wake promptly instead of polling
        self._feed = threading.Condition()
        self._poisoned: Optional[str] = None
        self._seq = 0
        #: highest catalog epoch seen in recovered records; the engine
        #: layer restarts its catalog epoch above this so plan-cache
        #: keys stay monotonic across restarts
        self.last_epoch = 0
        #: the replication epoch fence (docs/REPLICATION.md): stamped
        #: into every record; bumped (and persisted) at promotion so a
        #: deposed primary's records are rejected by ``apply_replicated``
        self.replication_epoch = 0
        #: timeline history: ``[epoch, boundary_seq]`` pairs meaning
        #: *epoch* began after *boundary_seq* — a record carrying an
        #: older epoch is legitimate pre-fork history iff its seq is at
        #: or below the boundary of the first newer epoch, and a
        #: deposed primary's post-fork write otherwise
        self.repl_history: list[list[int]] = []
        self._records_since_checkpoint = 0
        self.report = RecoveryReport()
        self.db: GraphDB = GraphDB()
        self.users: list[tuple[str, str]] = []
        self._writer: Optional[WalWriter] = None
        self._recover()

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    @classmethod
    def open(cls, path: str, **kwargs: Any) -> "DurableStore":
        """Open (creating if needed) the durable database at *path*."""
        return cls(path, **kwargs)

    def _recover(self) -> None:
        t0 = time.perf_counter()
        try:
            os.makedirs(self.path, exist_ok=True)
        except OSError as e:
            raise WalError(f"cannot create database directory {self.path!r}: {e}") from e
        if not os.path.isdir(self.path):
            raise WalError(f"database path is not a directory: {self.path!r}")

        span_cm = (
            self.tracer.span("recovery", path=self.path)
            if self.tracer is not None
            else None
        )
        span = span_cm.__enter__() if span_cm is not None else None
        try:
            payload, snap_path, skipped = load_latest_checkpoint(self.path)
            self.report.snapshots_skipped = skipped
            self.replication_epoch, self.repl_history = (
                self._load_replication_meta()
            )
            if payload is not None:
                self.db, self.users = st.restore_snapshot(payload)
                self.report.snapshot_path = snap_path
                self.report.snapshot_seq = int(payload["seq"])
                self.last_epoch = int(payload.get("epoch", 0))
                self._observe_epoch(
                    int(payload.get("repl", 0)), int(payload["seq"])
                )
            else:
                self.db, self.users = GraphDB(), []

            scan = read_wal(self.wal_path, start_seq=self.report.snapshot_seq)
            dirty: set[str] = set()
            for record in scan.records:
                st.apply_record(self.db, self.users, record, dirty)
                self.last_epoch = max(self.last_epoch, int(record.get("epoch", 0)))
                self._observe_epoch(
                    int(record.get("repl", 0)), int(record.get("seq", 0))
                )
            st.flush_rebuilds(self.db, dirty)
            self.report.records_replayed = len(scan.records)
            self.report.wal_end_reason = scan.reason
            self._seq = self.report.snapshot_seq + len(scan.records)
            self.report.last_seq = self._seq

            # drop the torn/corrupt tail before re-arming the writer: a
            # corrupt record is never replayed *and* never left where a
            # later append could bury it
            if os.path.exists(self.wal_path):
                size = os.path.getsize(self.wal_path)
                if not scan.clean and scan.valid_bytes < size:
                    self.report.bytes_truncated = size - scan.valid_bytes
                    self._truncate_wal(scan.valid_bytes)
            self._writer = WalWriter(
                self.wal_path,
                fsync=self.fsync_policy,
                batch_records=self.batch_records,
                faults=self.faults,
                metrics=self.metrics,
            )
        finally:
            self.report.duration_ms = (time.perf_counter() - t0) * 1000.0
            if span_cm is not None:
                if span is not None:
                    span.set(
                        snapshot_seq=self.report.snapshot_seq,
                        records_replayed=self.report.records_replayed,
                        wal_end_reason=self.report.wal_end_reason,
                        bytes_truncated=self.report.bytes_truncated,
                    )
                span_cm.__exit__(None, None, None)
        if self.metrics is not None:
            self.metrics.counter(
                "graql_recoveries_total", "database recoveries performed"
            ).inc()
            self.metrics.gauge(
                "graql_recovery_ms", "duration of the last recovery"
            ).set(self.report.duration_ms)
            self.metrics.gauge(
                "graql_recovery_replayed_records",
                "WAL records replayed by the last recovery",
            ).set(self.report.records_replayed)
            if self.report.bytes_truncated:
                self.metrics.counter(
                    "graql_wal_truncated_bytes_total",
                    "torn/corrupt WAL tail bytes dropped at recovery",
                ).inc(self.report.bytes_truncated)

    def _truncate_wal(self, valid_bytes: int) -> None:
        if valid_bytes == 0:
            # unreadable magic: the file is not ours / is garbage —
            # rebuild an empty log (recovered state stays whatever the
            # snapshot gave us; nothing in this file was replayable)
            with open(self.wal_path, "wb") as fh:
                fh.write(MAGIC)
                fsync_file(fh)
        else:
            with open(self.wal_path, "r+b") as fh:
                fh.truncate(valid_bytes)
                fsync_file(fh)
        fsync_dir(self.path)

    # ------------------------------------------------------------------
    # journal API (GraphDB hooks + server user management)
    # ------------------------------------------------------------------
    @property
    def seq(self) -> int:
        """Last committed WAL sequence number."""
        return self._seq

    @property
    def poisoned(self) -> Optional[str]:
        return self._poisoned

    @property
    def closed(self) -> bool:
        return self._writer is None or self._writer.closed

    def _epoch(self) -> int:
        return int(self.epoch_provider()) if self.epoch_provider is not None else 0

    def _append(self, kind: str, data: dict[str, Any]) -> int:
        with self._lock:
            if self._poisoned is not None:
                raise WalError(
                    f"store is poisoned after an earlier failure "
                    f"({self._poisoned}); re-open the database to resume"
                )
            if self._writer is None or self._writer.closed:
                raise WalError("WAL is closed")
            payload = {
                "seq": self._seq + 1,
                "epoch": self._epoch(),
                "repl": self.replication_epoch,
                "kind": kind,
                "data": data,
            }
            try:
                self._writer.append(payload)
            except WalError as e:
                self._poisoned = str(e)
                raise
            self._seq += 1
            self._records_since_checkpoint += 1
            seq = self._seq
        self._notify_feed()
        return seq

    # The four statement-path log methods run under the serving layer's
    # write lock, so it is safe for them to auto-checkpoint (the
    # snapshot sees no concurrent mutation).  User management runs
    # outside that lock and therefore never triggers one.

    def log_ddl(self, source: str) -> None:
        self._append(st.KIND_DDL, {"source": source})
        self.maybe_checkpoint()

    def log_ingest(self, table_name: str, csv_text: str) -> None:
        self._append(st.KIND_INGEST, {"table": table_name, "csv": csv_text})
        self.maybe_checkpoint()

    def log_result_table(self, name: str, schema_pairs: list, csv_text: str) -> None:
        self._append(
            st.KIND_RESULT_TABLE,
            {"name": name, "schema": schema_pairs, "csv": csv_text},
        )
        self.maybe_checkpoint()

    def log_subgraph(self, data: dict[str, Any]) -> None:
        self._append(st.KIND_SUBGRAPH, data)
        self.maybe_checkpoint()

    # GraphDB journal hooks (duck-typed; see GraphDB.journal).  Each
    # serializes the *effect* from the live object the mutation just
    # produced, so replay re-executes exactly what happened.

    def on_create_table(self, table) -> None:
        self.log_ddl(st.table_ddl(table))

    def on_create_vertex(self, vt) -> None:
        self.log_ddl(st.vertex_ddl(vt))

    def on_create_edge(self, et) -> None:
        self.log_ddl(st.edge_ddl(et))

    def on_create_index(self, gi) -> None:
        self.log_ddl(st.index_ddl(gi))

    def on_drop_index(self, name: str) -> None:
        self.log_ddl(f"drop index {name}")

    def on_ingest(self, table, start_row: int) -> None:
        self.log_ingest(table.name, st.table_csv(table, start=start_row))

    def on_result_table(self, table) -> None:
        self.log_result_table(
            table.name, st.schema_pairs(table.schema), st.table_csv(table)
        )

    def on_subgraph(self, sg) -> None:
        self.log_subgraph(st.subgraph_payload(sg))

    def log_create_user(self, name: str, role: str) -> None:
        self._append(st.KIND_CREATE_USER, {"name": name, "role": role})
        self.users.append((name, role))

    def log_drop_user(self, name: str) -> None:
        self._append(st.KIND_DROP_USER, {"name": name})
        self.users = [(n, r) for n, r in self.users if n != name]

    # ------------------------------------------------------------------
    # replication (docs/REPLICATION.md)
    # ------------------------------------------------------------------
    def _meta_path(self) -> str:
        return os.path.join(self.path, REPLICATION_META_NAME)

    def _load_replication_meta(self) -> "tuple[int, list[list[int]]]":
        try:
            with open(self._meta_path(), encoding="utf-8") as fh:
                meta = json.load(fh)
        except FileNotFoundError:
            return 0, []
        except (OSError, ValueError) as e:
            raise WalError(f"corrupt replication meta: {e}") from e
        epoch = int(meta.get("epoch", 0))
        history = [
            [int(e), int(b)] for e, b in meta.get("history", [])
        ]
        if epoch > 0 and not history:
            # a pre-history meta file: fence strictly (boundary 0 means
            # no older-epoch record is ever accepted)
            history = [[epoch, 0]]
        return epoch, history

    def _persist_replication_meta(self) -> None:
        """Durably record the epoch fence (caller holds ``self._lock``)."""
        tmp = temp_path_for(self._meta_path())
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(
                json.dumps(
                    {
                        "epoch": self.replication_epoch,
                        "history": self.repl_history,
                    }
                )
            )
            fh.flush()
            fsync_file(fh)
        os.replace(tmp, self._meta_path())
        fsync_dir(self.path)

    def _observe_epoch(self, repl: int, seq: int) -> None:
        """Raise the in-memory fence to an epoch seen in recovered
        state: the epoch began at or before *seq*, so everything below
        stays readable as pre-fork history."""
        if repl > self.replication_epoch:
            self.repl_history.append([repl, max(0, seq - 1)])
            self.replication_epoch = repl

    def epoch_boundary(self, repl: int) -> int:
        """The last seq that may legitimately carry an epoch <= *repl*
        (the fork point of the first newer epoch; -1 when the timeline
        is unknown, rejecting everything)."""
        for epoch, boundary in self.repl_history:
            if epoch > repl:
                return boundary
        return -1

    def bump_replication_epoch(self) -> int:
        """Promotion: advance the fence past every epoch ever observed
        and persist it before any new write is stamped.  The current seq
        becomes the fork boundary — history up to here stays valid, a
        deposed primary's writes past it are fenced.  Returns the new
        epoch."""
        with self._lock:
            self.replication_epoch += 1
            self.repl_history.append([self.replication_epoch, self._seq])
            self._persist_replication_meta()
            return self.replication_epoch

    def adopt_replication_epoch(
        self, epoch: int, history: "Optional[list[list[int]]]" = None
    ) -> None:
        """Adopt the fence (and its timeline history) learned from the
        primary at stream open.  No-op when nothing is newer — epochs
        only move forward."""
        with self._lock:
            changed = False
            if history is not None and len(history) > len(self.repl_history):
                self.repl_history = [[int(e), int(b)] for e, b in history]
                changed = True
            if epoch > self.replication_epoch:
                self.replication_epoch = epoch
                if self.epoch_boundary(epoch - 1) < 0:
                    # no fork point on record for this epoch: fence
                    # strictly rather than admit an unknown timeline
                    self.repl_history.append([epoch, self._seq])
                changed = True
            if changed:
                self._persist_replication_meta()

    def _notify_feed(self) -> None:
        with self._feed:
            self._feed.notify_all()

    def wait_for_seq(self, seq: int, timeout: float) -> bool:
        """Block until a record past *seq* commits (or *timeout* elapses).

        The replication stream's wakeup: tailers wait here instead of
        polling the WAL file.  Reads ``self._seq`` without the append
        mutex — a stale read only means one extra wait round.
        """
        with self._feed:
            if self._seq > seq:
                return True
            self._feed.wait(timeout)
            return self._seq > seq

    def replication_snapshot(self) -> dict[str, Any]:
        """The complete logical state for replica catch-up (REPL_SNAPSHOT).

        Call under the serving layer's read (or write) lock so the
        snapshot lands on a statement boundary.
        """
        with self._lock:
            payload = st.snapshot_payload(
                self.db, self.users, self._seq, self._epoch()
            )
            payload["repl"] = self.replication_epoch
            payload["repl_history"] = [list(x) for x in self.repl_history]
            return payload

    def apply_replicated(self, record: dict[str, Any]) -> int:
        """Replica-side apply of one streamed WAL record.

        The record is fenced (a replication epoch below the local fence
        is a deposed primary's write: :class:`~repro.errors.ReplicaStale`),
        appended verbatim to the replica's own WAL (durable per the
        fsync policy — the REPL_ACK the caller sends afterwards is the
        durability acknowledgment), then applied through the recovery
        path with the journal unhooked so the apply is not re-logged.
        Caller must hold the serving layer's write lock.
        """
        with self._lock:
            if self._poisoned is not None:
                raise WalError(
                    f"store is poisoned after an earlier failure "
                    f"({self._poisoned}); re-open the database to resume"
                )
            if self._writer is None or self._writer.closed:
                raise WalError("WAL is closed")
            seq = int(record.get("seq", -1))
            repl = int(record.get("repl", 0))
            if (
                repl < self.replication_epoch
                and seq > self.epoch_boundary(repl)
            ):
                # an older epoch is fine *before* the fork point (that
                # is shared history); past it, this is a deposed
                # primary's write and must never land
                raise ReplicaStale(
                    f"record seq {seq} carries replication epoch {repl} but "
                    f"the local fence is {self.replication_epoch}; rejecting "
                    f"a deposed primary's write",
                    seq=seq,
                    repl_epoch=repl,
                )
            if seq != self._seq + 1:
                raise WalError(
                    f"replication stream out of order: got seq {seq}, "
                    f"expected {self._seq + 1}"
                )
            try:
                self._writer.append(record)
            except WalError as e:
                self._poisoned = str(e)
                raise
            journal = getattr(self.db, "journal", None)
            self.db.journal = None
            dirty: set[str] = set()
            try:
                st.apply_record(self.db, self.users, record, dirty)
                st.flush_rebuilds(self.db, dirty)
            except Exception as e:
                # the record is on disk but not in memory: recovery will
                # converge them, this process must stop acknowledging
                self._poisoned = f"replicated record {seq} failed to apply: {e}"
                raise
            finally:
                self.db.journal = journal
            if repl > self.replication_epoch:
                self.repl_history.append([repl, seq - 1])
                self.replication_epoch = repl
                self._persist_replication_meta()
            self._seq = seq
            self.last_epoch = max(self.last_epoch, int(record.get("epoch", 0)))
            self._records_since_checkpoint += 1
        self._notify_feed()
        return seq

    def install_snapshot(self, payload: dict[str, Any]) -> None:
        """Replace the entire state from a streamed snapshot (catch-up).

        The resident :class:`GraphDB` object is rebuilt *in place* (its
        ``__dict__`` swapped) so every holder of the backend reference —
        serving engine, catalog, server — observes the new state without
        rewiring.  The snapshot is persisted as a checkpoint and the WAL
        restarts empty, exactly like :meth:`checkpoint`.  Caller must
        hold the serving layer's write lock.
        """
        with self._lock:
            if self._poisoned is not None:
                raise WalError(
                    f"store is poisoned ({self._poisoned}); cannot install snapshot"
                )
            if self._writer is None or self._writer.closed:
                raise WalError("WAL is closed")
            repl = int(payload.get("repl", 0))
            if repl < self.replication_epoch:
                raise ReplicaStale(
                    f"snapshot carries replication epoch {repl} but the local "
                    f"fence is {self.replication_epoch}",
                    seq=int(payload.get("seq", 0)),
                    repl_epoch=repl,
                )
            new_db, users = st.restore_snapshot(payload)
            journal = getattr(self.db, "journal", None)
            self.db.__dict__.clear()
            self.db.__dict__.update(new_db.__dict__)
            self.db.journal = journal
            self.users = users
            self._seq = int(payload["seq"])
            self.last_epoch = max(self.last_epoch, int(payload.get("epoch", 0)))
            history = payload.get("repl_history")
            if history is not None and len(history) > len(self.repl_history):
                self.repl_history = [[int(e), int(b)] for e, b in history]
                self._persist_replication_meta()
            if repl > self.replication_epoch:
                self.replication_epoch = repl
                self._persist_replication_meta()
            write_checkpoint(self.path, payload, faults=self.faults)
            prune_checkpoints(self.path, keep=2)
            self._swap_fresh_wal()
        self._notify_feed()

    def _swap_fresh_wal(self) -> None:
        """Close the writer and restart the WAL empty (caller holds
        ``self._lock``; every covered record is already snapshotted)."""
        assert self._writer is not None
        self._writer.close()
        tmp = temp_path_for(self.wal_path)
        with open(tmp, "wb") as fh:
            fh.write(MAGIC)
            fsync_file(fh)
        os.replace(tmp, self.wal_path)
        fsync_dir(self.path)
        self._writer = WalWriter(
            self.wal_path,
            fsync=self.fsync_policy,
            batch_records=self.batch_records,
            faults=self.faults,
            metrics=self.metrics,
        )
        self._records_since_checkpoint = 0

    # ------------------------------------------------------------------
    # checkpoints
    # ------------------------------------------------------------------
    def maybe_checkpoint(self) -> Optional[str]:
        """Checkpoint when ``checkpoint_every`` records have accumulated."""
        if (
            self.checkpoint_every > 0
            and self._records_since_checkpoint >= self.checkpoint_every
        ):
            return self.checkpoint()
        return None

    def checkpoint(self) -> str:
        """Snapshot the current state and truncate the WAL.

        Order matters: flush the WAL (every record the snapshot covers
        must be durable first), install the snapshot atomically, *then*
        truncate the log.  A crash after install but before truncation
        is benign — recovery skips WAL records at or below the
        snapshot's seq.  Returns the snapshot path.
        """
        with self._lock:
            if self._poisoned is not None:
                raise WalError(
                    f"store is poisoned ({self._poisoned}); cannot checkpoint"
                )
            if self._writer is None or self._writer.closed:
                raise WalError("WAL is closed")
            t0 = time.perf_counter()
            try:
                self._writer.sync()
            except WalError as e:
                self._poisoned = str(e)
                raise
            payload = st.snapshot_payload(self.db, self.users, self._seq, self._epoch())
            payload["repl"] = self.replication_epoch
            path = write_checkpoint(self.path, payload, faults=self.faults)
            prune_checkpoints(self.path, keep=2)
            # truncate: swap in a fresh, magic-only log
            self._swap_fresh_wal()
            duration_ms = (time.perf_counter() - t0) * 1000.0
        # rotation is a tailer-visible event: wake streams so they
        # notice the swapped file promptly
        self._notify_feed()
        if self.metrics is not None:
            self.metrics.counter(
                "graql_checkpoints_total", "snapshot checkpoints written"
            ).inc()
            self.metrics.gauge(
                "graql_checkpoint_ms", "duration of the last checkpoint"
            ).set(duration_ms)
        if self.tracer is not None:
            with self.tracer.span("checkpoint", path=path) as span:
                span.set(seq=self._seq, duration_ms=round(duration_ms, 3))
        return path

    # ------------------------------------------------------------------
    def sync(self) -> None:
        """Force-flush the WAL regardless of policy."""
        with self._lock:
            if self._writer is not None and not self._writer.closed:
                try:
                    self._writer.sync()
                except WalError as e:
                    self._poisoned = str(e)
                    raise

    def close(self) -> None:
        """Flush and close the WAL; further mutations raise."""
        with self._lock:
            if self._writer is not None and not self._writer.closed:
                self._writer.close()

    def __repr__(self) -> str:
        return (
            f"DurableStore({self.path!r}, seq={self._seq}, "
            f"fsync={self.fsync_policy}, poisoned={self._poisoned is not None})"
        )
