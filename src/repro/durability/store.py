"""The durable store: WAL + checkpoints + crash recovery, as one object.

A durable database is a directory::

    <path>/
        wal.log                     append-only write-ahead log
        checkpoint-000000000042.snap  snapshot through WAL seq 42
        checkpoint-000000000017.snap  previous snapshot (fallback)

:meth:`DurableStore.open` performs recovery — load the newest valid
snapshot, replay the WAL tail after its seq, stop cleanly at the first
torn or checksum-failing record, truncate the torn tail, re-arm the
writer — and returns a store whose ``db``/``users`` are exactly the
state produced by a prefix of the committed statements.

Once open, the store is the *journal* the engine writes through: the
``log_*`` methods are called by :class:`~repro.graph.graphdb.GraphDB`'s
mutation hooks (under the serving layer's write lock) and by the
server's user management.  Commit semantics are log-after-apply: the
in-memory mutation happens first, the record is appended (and fsynced
per policy) before the statement is acknowledged; a crash between the
two loses only the unacknowledged statement, which is precisely the
committed-prefix contract.

If an append or fsync raises, the store **poisons** itself: the failed
record may be half on disk, so acknowledging anything later would break
the prefix guarantee.  Every subsequent mutation raises
:class:`~repro.errors.WalError` until the path is re-opened (re-opening
truncates the torn tail).
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Callable, Optional

from repro.durability import state as st
from repro.durability.checkpoint import (
    load_latest_checkpoint,
    prune_checkpoints,
    write_checkpoint,
)
from repro.durability.faults import StorageFaultInjector
from repro.durability.wal import (
    FSYNC_ALWAYS,
    MAGIC,
    WalWriter,
    read_wal,
)
from repro.errors import WalError
from repro.graph.graphdb import GraphDB
from repro.storage.atomic import fsync_dir, fsync_file, temp_path_for

WAL_NAME = "wal.log"

#: default: checkpoint every this many WAL records
DEFAULT_CHECKPOINT_EVERY = 256


class RecoveryReport:
    """What :meth:`DurableStore.open` found and did."""

    def __init__(self) -> None:
        #: path of the snapshot restored, or None (started empty)
        self.snapshot_path: Optional[str] = None
        #: WAL seq the snapshot covered (0 when none)
        self.snapshot_seq = 0
        #: corrupt snapshots skipped while falling back
        self.snapshots_skipped: list[str] = []
        #: WAL records replayed after the snapshot
        self.records_replayed = 0
        #: why the WAL scan ended (END_* constant from repro.durability.wal)
        self.wal_end_reason = "clean-end"
        #: torn/corrupt bytes truncated from the WAL tail
        self.bytes_truncated = 0
        #: last applied WAL seq after recovery
        self.last_seq = 0
        #: wall-clock recovery time
        self.duration_ms = 0.0

    @property
    def clean(self) -> bool:
        return self.wal_end_reason == "clean-end" and not self.snapshots_skipped

    def to_dict(self) -> dict[str, Any]:
        return {
            "snapshot_path": self.snapshot_path,
            "snapshot_seq": self.snapshot_seq,
            "snapshots_skipped": list(self.snapshots_skipped),
            "records_replayed": self.records_replayed,
            "wal_end_reason": self.wal_end_reason,
            "bytes_truncated": self.bytes_truncated,
            "last_seq": self.last_seq,
            "duration_ms": round(self.duration_ms, 3),
            "clean": self.clean,
        }

    def __repr__(self) -> str:
        return (
            f"RecoveryReport(seq={self.last_seq}, "
            f"replayed={self.records_replayed}, {self.wal_end_reason})"
        )


class DurableStore:
    """One durable database directory: recovery, journal, checkpoints."""

    def __init__(
        self,
        path: str,
        *,
        fsync: str = FSYNC_ALWAYS,
        batch_records: int = 64,
        checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
        faults: Optional[StorageFaultInjector] = None,
        metrics=None,
        tracer=None,
    ) -> None:
        self.path = path
        self.wal_path = os.path.join(path, WAL_NAME)
        self.fsync_policy = fsync
        self.batch_records = batch_records
        self.checkpoint_every = checkpoint_every
        self.faults = faults
        self.metrics = metrics
        self.tracer = tracer
        #: callable giving the catalog epoch stamped into each record;
        #: wired by the Database layer after construction
        self.epoch_provider: Optional[Callable[[], int]] = None
        self._lock = threading.Lock()
        self._poisoned: Optional[str] = None
        self._seq = 0
        #: highest catalog epoch seen in recovered records; the engine
        #: layer restarts its catalog epoch above this so plan-cache
        #: keys stay monotonic across restarts
        self.last_epoch = 0
        self._records_since_checkpoint = 0
        self.report = RecoveryReport()
        self.db: GraphDB = GraphDB()
        self.users: list[tuple[str, str]] = []
        self._writer: Optional[WalWriter] = None
        self._recover()

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    @classmethod
    def open(cls, path: str, **kwargs: Any) -> "DurableStore":
        """Open (creating if needed) the durable database at *path*."""
        return cls(path, **kwargs)

    def _recover(self) -> None:
        t0 = time.perf_counter()
        try:
            os.makedirs(self.path, exist_ok=True)
        except OSError as e:
            raise WalError(f"cannot create database directory {self.path!r}: {e}") from e
        if not os.path.isdir(self.path):
            raise WalError(f"database path is not a directory: {self.path!r}")

        span_cm = (
            self.tracer.span("recovery", path=self.path)
            if self.tracer is not None
            else None
        )
        span = span_cm.__enter__() if span_cm is not None else None
        try:
            payload, snap_path, skipped = load_latest_checkpoint(self.path)
            self.report.snapshots_skipped = skipped
            if payload is not None:
                self.db, self.users = st.restore_snapshot(payload)
                self.report.snapshot_path = snap_path
                self.report.snapshot_seq = int(payload["seq"])
                self.last_epoch = int(payload.get("epoch", 0))
            else:
                self.db, self.users = GraphDB(), []

            scan = read_wal(self.wal_path, start_seq=self.report.snapshot_seq)
            dirty: set[str] = set()
            for record in scan.records:
                st.apply_record(self.db, self.users, record, dirty)
                self.last_epoch = max(self.last_epoch, int(record.get("epoch", 0)))
            st.flush_rebuilds(self.db, dirty)
            self.report.records_replayed = len(scan.records)
            self.report.wal_end_reason = scan.reason
            self._seq = self.report.snapshot_seq + len(scan.records)
            self.report.last_seq = self._seq

            # drop the torn/corrupt tail before re-arming the writer: a
            # corrupt record is never replayed *and* never left where a
            # later append could bury it
            if os.path.exists(self.wal_path):
                size = os.path.getsize(self.wal_path)
                if not scan.clean and scan.valid_bytes < size:
                    self.report.bytes_truncated = size - scan.valid_bytes
                    self._truncate_wal(scan.valid_bytes)
            self._writer = WalWriter(
                self.wal_path,
                fsync=self.fsync_policy,
                batch_records=self.batch_records,
                faults=self.faults,
                metrics=self.metrics,
            )
        finally:
            self.report.duration_ms = (time.perf_counter() - t0) * 1000.0
            if span_cm is not None:
                if span is not None:
                    span.set(
                        snapshot_seq=self.report.snapshot_seq,
                        records_replayed=self.report.records_replayed,
                        wal_end_reason=self.report.wal_end_reason,
                        bytes_truncated=self.report.bytes_truncated,
                    )
                span_cm.__exit__(None, None, None)
        if self.metrics is not None:
            self.metrics.counter(
                "graql_recoveries_total", "database recoveries performed"
            ).inc()
            self.metrics.gauge(
                "graql_recovery_ms", "duration of the last recovery"
            ).set(self.report.duration_ms)
            self.metrics.gauge(
                "graql_recovery_replayed_records",
                "WAL records replayed by the last recovery",
            ).set(self.report.records_replayed)
            if self.report.bytes_truncated:
                self.metrics.counter(
                    "graql_wal_truncated_bytes_total",
                    "torn/corrupt WAL tail bytes dropped at recovery",
                ).inc(self.report.bytes_truncated)

    def _truncate_wal(self, valid_bytes: int) -> None:
        if valid_bytes == 0:
            # unreadable magic: the file is not ours / is garbage —
            # rebuild an empty log (recovered state stays whatever the
            # snapshot gave us; nothing in this file was replayable)
            with open(self.wal_path, "wb") as fh:
                fh.write(MAGIC)
                fsync_file(fh)
        else:
            with open(self.wal_path, "r+b") as fh:
                fh.truncate(valid_bytes)
                fsync_file(fh)
        fsync_dir(self.path)

    # ------------------------------------------------------------------
    # journal API (GraphDB hooks + server user management)
    # ------------------------------------------------------------------
    @property
    def seq(self) -> int:
        """Last committed WAL sequence number."""
        return self._seq

    @property
    def poisoned(self) -> Optional[str]:
        return self._poisoned

    @property
    def closed(self) -> bool:
        return self._writer is None or self._writer.closed

    def _epoch(self) -> int:
        return int(self.epoch_provider()) if self.epoch_provider is not None else 0

    def _append(self, kind: str, data: dict[str, Any]) -> int:
        with self._lock:
            if self._poisoned is not None:
                raise WalError(
                    f"store is poisoned after an earlier failure "
                    f"({self._poisoned}); re-open the database to resume"
                )
            if self._writer is None or self._writer.closed:
                raise WalError("WAL is closed")
            payload = {
                "seq": self._seq + 1,
                "epoch": self._epoch(),
                "kind": kind,
                "data": data,
            }
            try:
                self._writer.append(payload)
            except WalError as e:
                self._poisoned = str(e)
                raise
            self._seq += 1
            self._records_since_checkpoint += 1
            return self._seq

    # The four statement-path log methods run under the serving layer's
    # write lock, so it is safe for them to auto-checkpoint (the
    # snapshot sees no concurrent mutation).  User management runs
    # outside that lock and therefore never triggers one.

    def log_ddl(self, source: str) -> None:
        self._append(st.KIND_DDL, {"source": source})
        self.maybe_checkpoint()

    def log_ingest(self, table_name: str, csv_text: str) -> None:
        self._append(st.KIND_INGEST, {"table": table_name, "csv": csv_text})
        self.maybe_checkpoint()

    def log_result_table(self, name: str, schema_pairs: list, csv_text: str) -> None:
        self._append(
            st.KIND_RESULT_TABLE,
            {"name": name, "schema": schema_pairs, "csv": csv_text},
        )
        self.maybe_checkpoint()

    def log_subgraph(self, data: dict[str, Any]) -> None:
        self._append(st.KIND_SUBGRAPH, data)
        self.maybe_checkpoint()

    # GraphDB journal hooks (duck-typed; see GraphDB.journal).  Each
    # serializes the *effect* from the live object the mutation just
    # produced, so replay re-executes exactly what happened.

    def on_create_table(self, table) -> None:
        self.log_ddl(st.table_ddl(table))

    def on_create_vertex(self, vt) -> None:
        self.log_ddl(st.vertex_ddl(vt))

    def on_create_edge(self, et) -> None:
        self.log_ddl(st.edge_ddl(et))

    def on_create_index(self, gi) -> None:
        self.log_ddl(st.index_ddl(gi))

    def on_drop_index(self, name: str) -> None:
        self.log_ddl(f"drop index {name}")

    def on_ingest(self, table, start_row: int) -> None:
        self.log_ingest(table.name, st.table_csv(table, start=start_row))

    def on_result_table(self, table) -> None:
        self.log_result_table(
            table.name, st.schema_pairs(table.schema), st.table_csv(table)
        )

    def on_subgraph(self, sg) -> None:
        self.log_subgraph(st.subgraph_payload(sg))

    def log_create_user(self, name: str, role: str) -> None:
        self._append(st.KIND_CREATE_USER, {"name": name, "role": role})
        self.users.append((name, role))

    def log_drop_user(self, name: str) -> None:
        self._append(st.KIND_DROP_USER, {"name": name})
        self.users = [(n, r) for n, r in self.users if n != name]

    # ------------------------------------------------------------------
    # checkpoints
    # ------------------------------------------------------------------
    def maybe_checkpoint(self) -> Optional[str]:
        """Checkpoint when ``checkpoint_every`` records have accumulated."""
        if (
            self.checkpoint_every > 0
            and self._records_since_checkpoint >= self.checkpoint_every
        ):
            return self.checkpoint()
        return None

    def checkpoint(self) -> str:
        """Snapshot the current state and truncate the WAL.

        Order matters: flush the WAL (every record the snapshot covers
        must be durable first), install the snapshot atomically, *then*
        truncate the log.  A crash after install but before truncation
        is benign — recovery skips WAL records at or below the
        snapshot's seq.  Returns the snapshot path.
        """
        with self._lock:
            if self._poisoned is not None:
                raise WalError(
                    f"store is poisoned ({self._poisoned}); cannot checkpoint"
                )
            if self._writer is None or self._writer.closed:
                raise WalError("WAL is closed")
            t0 = time.perf_counter()
            try:
                self._writer.sync()
            except WalError as e:
                self._poisoned = str(e)
                raise
            payload = st.snapshot_payload(self.db, self.users, self._seq, self._epoch())
            path = write_checkpoint(self.path, payload, faults=self.faults)
            prune_checkpoints(self.path, keep=2)
            # truncate: swap in a fresh, magic-only log
            self._writer.close()
            tmp = temp_path_for(self.wal_path)
            with open(tmp, "wb") as fh:
                fh.write(MAGIC)
                fsync_file(fh)
            os.replace(tmp, self.wal_path)
            fsync_dir(self.path)
            self._writer = WalWriter(
                self.wal_path,
                fsync=self.fsync_policy,
                batch_records=self.batch_records,
                faults=self.faults,
                metrics=self.metrics,
            )
            self._records_since_checkpoint = 0
            duration_ms = (time.perf_counter() - t0) * 1000.0
        if self.metrics is not None:
            self.metrics.counter(
                "graql_checkpoints_total", "snapshot checkpoints written"
            ).inc()
            self.metrics.gauge(
                "graql_checkpoint_ms", "duration of the last checkpoint"
            ).set(duration_ms)
        if self.tracer is not None:
            with self.tracer.span("checkpoint", path=path) as span:
                span.set(seq=self._seq, duration_ms=round(duration_ms, 3))
        return path

    # ------------------------------------------------------------------
    def sync(self) -> None:
        """Force-flush the WAL regardless of policy."""
        with self._lock:
            if self._writer is not None and not self._writer.closed:
                try:
                    self._writer.sync()
                except WalError as e:
                    self._poisoned = str(e)
                    raise

    def close(self) -> None:
        """Flush and close the WAL; further mutations raise."""
        with self._lock:
            if self._writer is not None and not self._writer.closed:
                self._writer.close()

    def __repr__(self) -> str:
        return (
            f"DurableStore({self.path!r}, seq={self._seq}, "
            f"fsync={self.fsync_policy}, poisoned={self._poisoned is not None})"
        )
