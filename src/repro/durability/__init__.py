"""Durable storage engine: WAL, checkpoints, crash recovery.

The in-memory engine (everything under :mod:`repro.graph` /
:mod:`repro.storage`) stays exactly as fast as before; durability is a
journal bolted on at the mutation choke points.  See docs/DURABILITY.md
for the record format, fsync policies, checkpoint/recovery lifecycle
and the injected-fault matrix.

Entry points:

* :class:`DurableStore` — one database directory (``wal.log`` +
  ``checkpoint-*.snap``); opening it *is* recovery.
* :func:`verify_store` — recover and prove every recovery invariant
  (``graql recover PATH --verify``).
* :class:`StorageFaultInjector` — deterministic torn-write / bit-flip /
  fsync-failure / checkpoint-crash injection for tests.
* ``Database.open(path)`` in :mod:`repro.engine.session` — the
  user-facing way to run a durable database.
"""

from repro.durability.checkpoint import (
    list_checkpoints,
    load_latest_checkpoint,
    read_checkpoint,
    write_checkpoint,
)
from repro.durability.faults import (
    CKPT_AFTER_RENAME,
    CKPT_BEFORE_RENAME,
    CKPT_DURING_WRITE,
    SimulatedCrash,
    StorageFaultInjector,
    StorageFaultStats,
)
from repro.durability.state import (
    apply_record,
    restore_snapshot,
    snapshot_payload,
    state_fingerprint,
)
from repro.durability.store import DurableStore, RecoveryReport
from repro.durability.verify import VerifyReport, fingerprint_digest, verify_store
from repro.durability.wal import (
    FSYNC_ALWAYS,
    FSYNC_BATCH,
    FSYNC_OFF,
    WalScan,
    WalWriter,
    encode_record,
    read_wal,
)

__all__ = [
    "CKPT_AFTER_RENAME",
    "CKPT_BEFORE_RENAME",
    "CKPT_DURING_WRITE",
    "DurableStore",
    "FSYNC_ALWAYS",
    "FSYNC_BATCH",
    "FSYNC_OFF",
    "RecoveryReport",
    "SimulatedCrash",
    "StorageFaultInjector",
    "StorageFaultStats",
    "VerifyReport",
    "WalScan",
    "WalWriter",
    "apply_record",
    "encode_record",
    "fingerprint_digest",
    "list_checkpoints",
    "load_latest_checkpoint",
    "read_checkpoint",
    "read_wal",
    "restore_snapshot",
    "snapshot_payload",
    "state_fingerprint",
    "verify_store",
    "write_checkpoint",
]
