"""Deterministic fault injection for the durable storage engine.

PR 1 made the simulated *cluster* survive injected faults
(:mod:`repro.dist.faults`); this module extends the same philosophy to
the storage layer.  Real disks and real kernels fail in characteristic
ways, and each one has a named injection point here:

* **torn writes** — the process dies mid-``write``; an arbitrary prefix
  of the record (possibly cutting the length/checksum header itself)
  reaches the file;
* **partial trailing records** — the header lands but only part of the
  payload does: the length field promises more bytes than exist;
* **bit-flip corruption** — the record is written completely but a bit
  rots afterwards (silent media corruption the CRC must catch);
* **fsync failures** — ``fsync`` raises (full disk, dying device); the
  store must surface the error and stop accepting writes rather than
  silently acknowledging non-durable commits;
* **checkpoint crashes** — the process dies while the snapshot temp
  file is being written, after it is durable but *before* the atomic
  rename, or after the rename but before the WAL is truncated.

Faults are driven by explicit schedules (sequence numbers / call
counts) plus one seeded ``random.Random`` stream for the cut/flip
positions, so a given configuration reproduces the exact same broken
bytes — the property tests rely on that determinism.

A fault that models process death raises :class:`SimulatedCrash`.  It
deliberately derives from ``BaseException``: no ``except Exception``
handler on the commit path may swallow a "the process is gone" signal
and acknowledge the write anyway.
"""

from __future__ import annotations

import random
from typing import Iterable, Optional

#: checkpoint crash points, in lifecycle order
CKPT_DURING_WRITE = "during_write"
CKPT_BEFORE_RENAME = "before_rename"
CKPT_AFTER_RENAME = "after_rename"

_CKPT_POINTS = (CKPT_DURING_WRITE, CKPT_BEFORE_RENAME, CKPT_AFTER_RENAME)


class SimulatedCrash(BaseException):
    """The injected process death.

    Tests catch it, abandon the in-memory database (its state is
    "lost"), and re-open the on-disk path — exactly what a supervisor
    restarting a crashed server does.
    """

    def __init__(self, point: str) -> None:
        super().__init__(f"simulated crash at {point}")
        self.point = point


class StorageFaultStats:
    """Running counters of injected storage faults."""

    def __init__(self) -> None:
        self.torn_writes = 0
        self.partial_records = 0
        self.bitflips = 0
        self.fsync_failures = 0
        self.checkpoint_crashes = 0
        self.post_commit_crashes = 0

    def snapshot(self) -> dict:
        return {
            "torn_writes": self.torn_writes,
            "partial_records": self.partial_records,
            "bitflips": self.bitflips,
            "fsync_failures": self.fsync_failures,
            "checkpoint_crashes": self.checkpoint_crashes,
            "post_commit_crashes": self.post_commit_crashes,
        }

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self.snapshot().items())
        return f"StorageFaultStats({inner})"


class AppendPlan:
    """What the WAL writer should actually do for one append."""

    __slots__ = ("data", "crash", "flip_offset", "crash_after")

    def __init__(
        self,
        data: bytes,
        crash: bool = False,
        flip_offset: Optional[int] = None,
        crash_after: bool = False,
    ) -> None:
        #: the (possibly truncated) bytes to write
        self.data = data
        #: die immediately after writing ``data`` (torn/partial record)
        self.crash = crash
        #: flip this bit offset (within the record's on-disk bytes)
        #: after a complete write — silent corruption
        self.flip_offset = flip_offset
        #: record fully written and synced, then die (commit survives)
        self.crash_after = crash_after


class StorageFaultInjector:
    """Seeded source of storage faults at controlled points.

    Parameters
    ----------
    seed:
        Seeds the RNG that picks cut points and bit offsets.
    torn_write_at:
        Record sequence numbers whose append is cut at a random point
        *anywhere* in the record (header included), then crashes.
    partial_record_at:
        Sequence numbers whose append writes the full header but only a
        strict prefix of the payload, then crashes — the classic
        "length promises more than exists" trailing record.
    bitflip_at:
        Sequence numbers whose record is fully written, then has one
        random bit flipped on disk.  No crash: the corruption is
        silent until recovery's CRC check.
    crash_after_append_at:
        Sequence numbers after whose append+fsync the process dies.
        The record is committed; recovery must replay it.
    fail_fsync_at:
        1-based fsync call numbers that raise ``OSError``.
    checkpoint_crash:
        One of ``"during_write"`` / ``"before_rename"`` /
        ``"after_rename"``; the next checkpoint dies at that point
        (fires once).
    """

    def __init__(
        self,
        seed: int = 0,
        torn_write_at: Iterable[int] = (),
        partial_record_at: Iterable[int] = (),
        bitflip_at: Iterable[int] = (),
        crash_after_append_at: Iterable[int] = (),
        fail_fsync_at: Iterable[int] = (),
        checkpoint_crash: Optional[str] = None,
    ) -> None:
        if checkpoint_crash is not None and checkpoint_crash not in _CKPT_POINTS:
            raise ValueError(
                f"unknown checkpoint crash point {checkpoint_crash!r} "
                f"(expected one of {', '.join(_CKPT_POINTS)})"
            )
        self.seed = seed
        self.rng = random.Random(seed)
        self.torn_write_at = set(torn_write_at)
        self.partial_record_at = set(partial_record_at)
        self.bitflip_at = set(bitflip_at)
        self.crash_after_append_at = set(crash_after_append_at)
        self.fail_fsync_at = set(fail_fsync_at)
        self.checkpoint_crash = checkpoint_crash
        self.stats = StorageFaultStats()
        self._fsync_calls = 0

    # ------------------------------------------------------------------
    def plan_append(self, seq: int, data: bytes, header_len: int) -> AppendPlan:
        """Decide the fate of appending record *seq* (*data* = header+payload)."""
        if seq in self.torn_write_at:
            self.torn_write_at.discard(seq)
            cut = self.rng.randrange(0, len(data))
            self.stats.torn_writes += 1
            return AppendPlan(data[:cut], crash=True)
        if seq in self.partial_record_at:
            self.partial_record_at.discard(seq)
            # full header, strict prefix of the payload
            cut = header_len + self.rng.randrange(0, max(len(data) - header_len, 1))
            self.stats.partial_records += 1
            return AppendPlan(data[:cut], crash=True)
        if seq in self.bitflip_at:
            self.bitflip_at.discard(seq)
            # corrupt the payload region so the CRC (not the length
            # sanity check) is what detects it
            offset = self.rng.randrange(header_len * 8, len(data) * 8)
            self.stats.bitflips += 1
            return AppendPlan(data, flip_offset=offset)
        if seq in self.crash_after_append_at:
            self.crash_after_append_at.discard(seq)
            self.stats.post_commit_crashes += 1
            return AppendPlan(data, crash_after=True)
        return AppendPlan(data)

    def on_fsync(self) -> None:
        """Raise ``OSError`` when this fsync call is scheduled to fail."""
        self._fsync_calls += 1
        if self._fsync_calls in self.fail_fsync_at:
            self.fail_fsync_at.discard(self._fsync_calls)
            self.stats.fsync_failures += 1
            raise OSError(f"injected fsync failure (call #{self._fsync_calls})")

    def checkpoint_point(self, point: str) -> None:
        """Die when the next checkpoint reaches the scheduled *point*."""
        if self.checkpoint_crash == point:
            self.checkpoint_crash = None
            self.stats.checkpoint_crashes += 1
            raise SimulatedCrash(f"checkpoint:{point}")

    @property
    def active(self) -> bool:
        """Whether any fault can still fire."""
        return bool(
            self.torn_write_at
            or self.partial_record_at
            or self.bitflip_at
            or self.crash_after_append_at
            or self.fail_fsync_at
            or self.checkpoint_crash
        )

    def __repr__(self) -> str:
        return f"StorageFaultInjector(seed={self.seed}, {self.stats!r})"
