"""Recovery-invariant verification: the ``fsck`` of a database directory.

:func:`verify_store` recovers the database at a path and then proves —
not assumes — that what came back is a well-formed committed prefix:

1. **Recovery succeeds** and never applies a corrupt record (the WAL
   scanner's contract; a torn tail is reported, then truncated).
2. **Graph invariants hold**: every edge endpoint of every rebuilt view
   is a valid vid of its declared endpoint type (paper Section II-A1).
3. **Snapshot round-trip is lossless**: re-snapshotting the recovered
   state and restoring that snapshot reproduces the exact same
   :func:`~repro.durability.state.state_fingerprint` — the recovered
   state is itself checkpointable without drift.
4. **Recovery is deterministic**: opening the directory a second time
   yields the identical fingerprint (the first open already truncated
   any torn tail, so the second must also scan clean).

``graql recover PATH --verify`` exits 0 iff all of this holds.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Optional

from repro.durability import state as st
from repro.durability.store import DurableStore, RecoveryReport
from repro.errors import GraQLError


def fingerprint_digest(fp: dict[str, Any]) -> str:
    """Stable hex digest of a state fingerprint (for logs and reports)."""
    blob = json.dumps(fp, separators=(",", ":"), sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


class VerifyReport:
    """Outcome of :func:`verify_store`."""

    def __init__(self, path: str) -> None:
        self.path = path
        #: hard failures; empty iff the store verified
        self.problems: list[str] = []
        #: non-fatal observations (torn tail truncated, snapshot skipped)
        self.notes: list[str] = []
        self.recovery: Optional[RecoveryReport] = None
        self.fingerprint: Optional[str] = None

    @property
    def ok(self) -> bool:
        return not self.problems

    def to_dict(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "ok": self.ok,
            "problems": list(self.problems),
            "notes": list(self.notes),
            "recovery": self.recovery.to_dict() if self.recovery else None,
            "fingerprint": self.fingerprint,
        }

    def __repr__(self) -> str:
        status = "ok" if self.ok else f"{len(self.problems)} problem(s)"
        return f"VerifyReport({self.path!r}, {status})"


def verify_store(path: str, **open_kwargs: Any) -> VerifyReport:
    """Recover the database at *path* and check every recovery invariant."""
    report = VerifyReport(path)

    try:
        store = DurableStore.open(path, **open_kwargs)
    except GraQLError as e:
        report.problems.append(f"recovery failed: {e}")
        return report
    try:
        report.recovery = store.report
        if not store.report.clean:
            if store.report.snapshots_skipped:
                report.notes.append(
                    "skipped corrupt checkpoint(s): "
                    + ", ".join(store.report.snapshots_skipped)
                )
            if store.report.wal_end_reason != "clean-end":
                report.notes.append(
                    f"WAL tail ended with {store.report.wal_end_reason}; "
                    f"{store.report.bytes_truncated} byte(s) truncated"
                )

        if not store.db.check_partition_invariants():
            report.problems.append(
                "partition invariant violated: an edge endpoint is not a "
                "valid vid of its declared vertex type"
            )

        fp = st.state_fingerprint(store.db, store.users)
        report.fingerprint = fingerprint_digest(fp)

        # snapshot round-trip: recovered state must re-persist losslessly
        try:
            payload = st.snapshot_payload(
                store.db, store.users, store.seq, store._epoch()
            )
            db2, users2 = st.restore_snapshot(payload)
            if st.state_fingerprint(db2, users2) != fp:
                report.problems.append(
                    "snapshot round-trip drifted: restoring a snapshot of "
                    "the recovered state does not reproduce it"
                )
        except GraQLError as e:
            report.problems.append(f"snapshot round-trip failed: {e}")
    finally:
        store.close()

    # determinism: a second recovery of the (now tail-truncated)
    # directory must scan clean and land on the same fingerprint
    try:
        store2 = DurableStore.open(path, **open_kwargs)
    except GraQLError as e:
        report.problems.append(f"re-recovery failed: {e}")
        return report
    try:
        if store2.report.wal_end_reason != "clean-end":
            report.problems.append(
                "re-recovery still found a corrupt WAL tail "
                f"({store2.report.wal_end_reason}) after truncation"
            )
        fp2 = st.state_fingerprint(store2.db, store2.users)
        if fingerprint_digest(fp2) != report.fingerprint:
            report.problems.append(
                "recovery is non-deterministic: two recoveries of the same "
                "directory produced different states"
            )
    finally:
        store2.close()
    return report
