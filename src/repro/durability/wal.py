"""The write-ahead log: checksummed, length-prefixed, append-only.

File layout::

    GRQLWAL1                      8-byte magic
    [u32 length][u32 crc32][payload]      record 0
    [u32 length][u32 crc32][payload]      record 1
    ...

Each payload is one canonical-JSON *logical record*: a mutating
statement's effect (``{"seq": n, "epoch": e, "kind": ..., "data": ...}``),
keyed to the catalog epoch it was applied against.  ``length`` counts
payload bytes; ``crc32`` is over the payload.  Records are strictly
sequential (``seq`` increments by one), which is what makes "recovered
state = a prefix of committed statements" checkable: any torn tail,
checksum mismatch or sequence gap stops replay *cleanly at the previous
record* — a corrupt record is never applied, and nothing after it is
either.

Durability is tuned by the fsync policy:

* ``always`` — fsync after every append; a record is committed when the
  append returns.
* ``batch``  — fsync every ``batch_records`` appends (and on flush /
  checkpoint / close); bounded tail loss on power failure, much higher
  ingest throughput.
* ``off``    — never fsync; the OS page cache decides.  Survives
  process crashes (the data reached the kernel) but not power loss.

The writer is unbuffered (``buffering=0``): every append is a single
``os.write`` of header+payload, which is the unit the
:class:`~repro.durability.faults.StorageFaultInjector` cuts, flips and
fails to produce torn writes, partial trailing records, bit rot and
fsync errors at exact, reproducible points.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from typing import Any, Optional

from repro.durability.faults import SimulatedCrash, StorageFaultInjector
from repro.errors import WalError

MAGIC = b"GRQLWAL1"
_HEADER = struct.Struct("<II")
HEADER_LEN = _HEADER.size
#: sanity cap on a single record; a "length" beyond this is corruption,
#: not a record we should try to allocate
MAX_RECORD_BYTES = 1 << 30

FSYNC_ALWAYS = "always"
FSYNC_BATCH = "batch"
FSYNC_OFF = "off"
FSYNC_POLICIES = (FSYNC_ALWAYS, FSYNC_BATCH, FSYNC_OFF)

#: why a WAL scan stopped (WalScan.reason)
END_CLEAN = "clean-end"
END_TORN_HEADER = "torn-header"
END_TORN_PAYLOAD = "torn-payload"
END_CRC_MISMATCH = "crc-mismatch"
END_BAD_LENGTH = "bad-length"
END_BAD_PAYLOAD = "bad-payload"
END_SEQ_GAP = "sequence-gap"
END_BAD_MAGIC = "bad-magic"


def encode_record(payload: dict[str, Any]) -> bytes:
    """Render one logical record as header+payload bytes."""
    body = json.dumps(payload, separators=(",", ":"), sort_keys=True).encode("utf-8")
    return _HEADER.pack(len(body), zlib.crc32(body)) + body


class WalScan:
    """Outcome of reading a WAL file: the valid record prefix + why it ended."""

    def __init__(self, path: str) -> None:
        self.path = path
        #: decoded payload dicts, in file order
        self.records: list[dict[str, Any]] = []
        #: byte length of the valid prefix (magic + intact records);
        #: re-arming the writer truncates the file here
        self.valid_bytes = len(MAGIC)
        #: one of the END_* constants
        self.reason = END_CLEAN
        #: file offset where the scan stopped (== valid_bytes unless clean)
        self.stopped_at: Optional[int] = None

    @property
    def clean(self) -> bool:
        return self.reason == END_CLEAN

    def __repr__(self) -> str:
        return (
            f"WalScan({len(self.records)} records, {self.reason}, "
            f"valid_bytes={self.valid_bytes})"
        )


def read_wal(path: str, start_seq: int = 0) -> WalScan:
    """Read the valid record prefix of the WAL at *path*.

    ``start_seq`` is the sequence number the log should continue from
    (the snapshot's last applied seq): records with ``seq <= start_seq``
    are part of the valid prefix but skipped (they are superseded by the
    snapshot — present only when a crash landed between checkpoint and
    WAL truncation); the first record *after* that must carry exactly
    ``start_seq + 1`` and each subsequent record must increment by one.
    Any violation — torn header, short payload, CRC mismatch,
    undecodable JSON, sequence gap — ends the scan at the previous
    record.  Nothing past the first bad byte is ever returned.
    """
    scan = WalScan(path)
    try:
        fh = open(path, "rb")
    except FileNotFoundError:
        return scan
    with fh:
        blob = fh.read()
    if len(blob) < len(MAGIC) or blob[: len(MAGIC)] != MAGIC:
        scan.reason = END_BAD_MAGIC
        scan.valid_bytes = 0
        scan.stopped_at = 0
        return scan
    pos = len(MAGIC)
    next_seq = start_seq + 1
    while pos < len(blob):
        if pos + HEADER_LEN > len(blob):
            scan.reason = END_TORN_HEADER
            scan.stopped_at = pos
            return scan
        length, crc = _HEADER.unpack_from(blob, pos)
        if length > MAX_RECORD_BYTES:
            scan.reason = END_BAD_LENGTH
            scan.stopped_at = pos
            return scan
        body_start = pos + HEADER_LEN
        if body_start + length > len(blob):
            scan.reason = END_TORN_PAYLOAD
            scan.stopped_at = pos
            return scan
        body = blob[body_start : body_start + length]
        if zlib.crc32(body) != crc:
            scan.reason = END_CRC_MISMATCH
            scan.stopped_at = pos
            return scan
        try:
            payload = json.loads(body.decode("utf-8"))
            seq = int(payload["seq"])
        except (ValueError, KeyError, TypeError, UnicodeDecodeError):
            scan.reason = END_BAD_PAYLOAD
            scan.stopped_at = pos
            return scan
        if seq > start_seq:
            if seq != next_seq:
                scan.reason = END_SEQ_GAP
                scan.stopped_at = pos
                return scan
            next_seq += 1
            scan.records.append(payload)
        # else: pre-checkpoint record awaiting truncation — skip
        pos = body_start + length
        scan.valid_bytes = pos
    return scan


class WalWriter:
    """Appends logical records under a configurable fsync policy.

    Not thread-safe on its own — the store serializes appends (they
    happen under the serving layer's write lock, plus the store's own
    append mutex for the rare unlocked paths like user management).
    """

    def __init__(
        self,
        path: str,
        fsync: str = FSYNC_ALWAYS,
        batch_records: int = 64,
        faults: Optional[StorageFaultInjector] = None,
        metrics=None,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise WalError(
                f"unknown fsync policy {fsync!r} "
                f"(expected one of {', '.join(FSYNC_POLICIES)})"
            )
        if batch_records <= 0:
            raise WalError(f"batch_records must be positive, got {batch_records}")
        self.path = path
        self.fsync_policy = fsync
        self.batch_records = batch_records
        self.faults = faults
        #: MetricsRegistry fed per append/fsync; attachable after the fact
        self.metrics = metrics
        self._unsynced = 0
        self.fsyncs = 0
        fresh = not os.path.exists(path) or os.path.getsize(path) == 0
        self._fh = open(path, "ab", buffering=0)
        if fresh:
            self._fh.write(MAGIC)
            self._sync(force=self.fsync_policy != FSYNC_OFF)
        self._size = self._fh.tell()

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Current file size in bytes (magic + appended records)."""
        return self._size

    @property
    def closed(self) -> bool:
        return self._fh.closed

    def append(self, payload: dict[str, Any]) -> int:
        """Write one logical record; returns its on-disk byte size.

        With policy ``always`` the record is durable when this returns.
        An ``OSError`` from write or fsync propagates as
        :class:`~repro.errors.WalError` — the caller poisons the store.
        A scheduled injector fault may instead raise
        :class:`~repro.durability.faults.SimulatedCrash` after leaving
        a torn/partial/flipped record behind, exactly as a real death
        mid-write would.
        """
        data = encode_record(payload)
        record_offset = self._size
        plan = None
        if self.faults is not None:
            plan = self.faults.plan_append(int(payload["seq"]), data, HEADER_LEN)
            data = plan.data
        try:
            self._fh.write(data)
        except OSError as e:
            raise WalError(f"WAL append failed: {e}") from e
        self._size += len(data)
        if plan is not None and plan.crash:
            # process death mid-write: nothing below (fsync accounting,
            # metrics) happens, just like the real thing
            self._fh.close()
            raise SimulatedCrash("wal-append")
        if plan is not None and plan.flip_offset is not None:
            self._flip_bit(record_offset, plan.flip_offset)
        self._unsynced += 1
        if self.fsync_policy == FSYNC_ALWAYS:
            self.sync()
        elif self.fsync_policy == FSYNC_BATCH and self._unsynced >= self.batch_records:
            self.sync()
        if self.metrics is not None:
            self.metrics.counter(
                "graql_wal_records_total", "logical records appended to the WAL"
            ).inc()
            self.metrics.counter(
                "graql_wal_bytes_total", "bytes appended to the WAL"
            ).inc(len(data))
        if plan is not None and plan.crash_after:
            # the record is committed (written + synced above when the
            # policy says so); the process dies anyway
            self._fh.close()
            raise SimulatedCrash("post-commit")
        return len(data)

    def sync(self) -> None:
        """Flush appended records to stable storage (policy-independent)."""
        self._sync(force=True)

    def _sync(self, force: bool) -> None:
        if not force or self._fh.closed:
            return
        if self.faults is not None:
            try:
                self.faults.on_fsync()
            except OSError as e:
                raise WalError(f"WAL fsync failed: {e}") from e
        try:
            os.fsync(self._fh.fileno())
        except OSError as e:
            raise WalError(f"WAL fsync failed: {e}") from e
        self.fsyncs += 1
        self._unsynced = 0
        if self.metrics is not None:
            self.metrics.counter(
                "graql_wal_fsyncs_total", "fsync calls issued by the WAL"
            ).inc()

    def _flip_bit(self, record_offset: int, bit: int) -> None:
        """Silent post-write corruption: flip one bit of the last record."""
        byte_at = record_offset + bit // 8
        with open(self.path, "r+b") as fh:
            fh.seek(byte_at)
            b = fh.read(1)
            fh.seek(byte_at)
            fh.write(bytes([b[0] ^ (1 << (bit % 8))]))

    def close(self) -> None:
        """Flush (per policy ``off``: OS-flush only) and close the file."""
        if self._fh.closed:
            return
        if self.fsync_policy != FSYNC_OFF and self._unsynced:
            self.sync()
        self._fh.close()

    def __repr__(self) -> str:
        return (
            f"WalWriter({self.path!r}, fsync={self.fsync_policy}, "
            f"size={self._size}, fsyncs={self.fsyncs})"
        )
