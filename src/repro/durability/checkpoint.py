"""Snapshot checkpoints: bounded-replay points for the WAL.

A checkpoint file (``checkpoint-{seq:012d}.snap``) is one checksummed
record — the ``GRQLSNP1`` magic, a ``[u32 length][u32 crc32]`` header
and the canonical-JSON snapshot payload built by
:func:`repro.durability.state.snapshot_payload`.  The name carries the
last WAL sequence number the snapshot includes; recovery loads the
newest *valid* snapshot and replays only WAL records after its seq.

Writing is crash-safe by construction: the payload is staged in a temp
file in the same directory, fsynced, then installed with ``os.replace``
(the commit point) followed by a directory fsync.  A crash at any point
leaves either the previous checkpoint set or the previous set plus one
complete new file — never a half-written ``.snap``.  The
:class:`~repro.durability.faults.StorageFaultInjector` exercises the
three interesting windows (mid-write, staged-but-not-renamed,
renamed-but-WAL-not-truncated) via :func:`write_checkpoint`'s
interleaved fault points.

The last two checkpoints are kept (:func:`prune_checkpoints`): if the
newest one is later found bit-rotted, recovery falls back to the older
snapshot plus a longer WAL replay, still yielding a committed prefix.
"""

from __future__ import annotations

import json
import os
import re
import struct
import zlib
from typing import Any, Optional

from repro.durability.faults import (
    CKPT_AFTER_RENAME,
    CKPT_BEFORE_RENAME,
    CKPT_DURING_WRITE,
    StorageFaultInjector,
)
from repro.storage.atomic import fsync_file, install_file, temp_path_for

SNAP_MAGIC = b"GRQLSNP1"
_HEADER = struct.Struct("<II")

_NAME_RE = re.compile(r"^checkpoint-(\d{12})\.snap$")


def checkpoint_name(seq: int) -> str:
    return f"checkpoint-{seq:012d}.snap"


def encode_snapshot(payload: dict[str, Any]) -> bytes:
    body = json.dumps(payload, separators=(",", ":"), sort_keys=True).encode("utf-8")
    return SNAP_MAGIC + _HEADER.pack(len(body), zlib.crc32(body)) + body


def read_checkpoint(path: str) -> Optional[dict[str, Any]]:
    """Decode the snapshot at *path*; ``None`` if missing or corrupt.

    Corruption here is a *normal recovery outcome* (that's why we keep
    two checkpoints), so it reports as ``None`` rather than raising —
    the caller falls back to the next-older snapshot.
    """
    try:
        with open(path, "rb") as fh:
            blob = fh.read()
    except OSError:
        return None
    prefix = len(SNAP_MAGIC) + _HEADER.size
    if len(blob) < prefix or blob[: len(SNAP_MAGIC)] != SNAP_MAGIC:
        return None
    length, crc = _HEADER.unpack_from(blob, len(SNAP_MAGIC))
    body = blob[prefix:]
    if len(body) != length or zlib.crc32(body) != crc:
        return None
    try:
        payload = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None
    return payload if isinstance(payload, dict) else None


def list_checkpoints(dirpath: str) -> list[tuple[int, str]]:
    """``(seq, path)`` for every checkpoint file, newest first."""
    found = []
    try:
        names = os.listdir(dirpath)
    except OSError:
        return []
    for name in names:
        m = _NAME_RE.match(name)
        if m:
            found.append((int(m.group(1)), os.path.join(dirpath, name)))
    found.sort(reverse=True)
    return found


def load_latest_checkpoint(
    dirpath: str,
) -> tuple[Optional[dict[str, Any]], Optional[str], list[str]]:
    """The newest *valid* snapshot: ``(payload, path, skipped_paths)``.

    Corrupt snapshots are skipped (recorded in ``skipped_paths``) and the
    scan falls back to the next older one; ``(None, None, skipped)``
    when no valid checkpoint exists (recovery then replays the whole
    WAL from an empty database).
    """
    skipped: list[str] = []
    for seq, path in list_checkpoints(dirpath):
        payload = read_checkpoint(path)
        if payload is not None and payload.get("seq") == seq:
            return payload, path, skipped
        skipped.append(path)
    return None, None, skipped


def write_checkpoint(
    dirpath: str,
    payload: dict[str, Any],
    faults: Optional[StorageFaultInjector] = None,
    durable: bool = True,
) -> str:
    """Atomically install ``checkpoint-{seq}.snap`` from *payload*.

    Fault points fire in lifecycle order — mid-write (temp file torn),
    before rename (temp file complete and durable but not visible),
    after rename (checkpoint live, WAL not yet truncated) — each leaving
    exactly the debris a real crash would, so tests can assert recovery
    from every window.  Returns the installed path.
    """
    final = os.path.join(dirpath, checkpoint_name(int(payload["seq"])))
    tmp = temp_path_for(final)
    data = encode_snapshot(payload)
    fh = open(tmp, "wb")
    try:
        if faults is not None and faults.checkpoint_crash == CKPT_DURING_WRITE:
            fh.write(data[: max(len(data) // 2, len(SNAP_MAGIC))])
            fh.close()
            faults.checkpoint_point(CKPT_DURING_WRITE)  # raises SimulatedCrash
        fh.write(data)
        if durable:
            fsync_file(fh)
    finally:
        if not fh.closed:
            fh.close()
    if faults is not None:
        faults.checkpoint_point(CKPT_BEFORE_RENAME)
    install_file(final, tmp, durable=durable)
    if faults is not None:
        faults.checkpoint_point(CKPT_AFTER_RENAME)
    return final


def prune_checkpoints(dirpath: str, keep: int = 2) -> list[str]:
    """Drop all but the newest *keep* checkpoints (and stale temp files).

    Returns the removed paths.  Never removes the snapshot a concurrent
    recovery could need: the newest ``keep`` survive, so a bit-rotted
    newest still has a valid predecessor.
    """
    removed = []
    for _seq, path in list_checkpoints(dirpath)[keep:]:
        try:
            os.unlink(path)
            removed.append(path)
        except OSError:
            pass
    try:
        for name in os.listdir(dirpath):
            if name.startswith("checkpoint-") and name.endswith(".tmp"):
                stale = os.path.join(dirpath, name)
                try:
                    os.unlink(stale)
                    removed.append(stale)
                except OSError:
                    pass
    except OSError:
        pass
    return removed
