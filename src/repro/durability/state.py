"""Logical state ↔ payload codecs for the durable storage engine.

Everything the WAL and checkpoints persist is *logical*, not a memory
dump: DDL is stored as GraQL source (rendered by
:func:`repro.graql.pretty.pretty_statement`, whose parse→print→parse
round-trip is property-tested), table rows as typed CSV text (the same
``DataType.format``/``parse`` pair CSV ingest/export uses), subgraphs as
per-type id lists.  Replaying a record therefore goes through the same
code paths as the original statement — recovery is re-execution of
effects, so a restored database is bit-for-bit the state the committed
statements produced.

Record kinds (the ``kind`` field of a WAL payload):

========================  ====================================================
``ddl``                   a ``create table|vertex|edge`` statement's source
``ingest``                rows appended to a base table (typed CSV text)
``result_table``          an ``into table`` result: schema + rows
``subgraph``              an ``into subgraph`` result: per-type id lists
``create_user``           a server account created
``drop_user``             a server account dropped
========================  ====================================================
"""

from __future__ import annotations

import csv
import io
from typing import Any, Optional

import numpy as np

from repro.dtypes.datatypes import parse_type_name
from repro.errors import WalError
from repro.graph.edge_index import BidirectionalIndex
from repro.graph.graphdb import GraphDB
from repro.graph.subgraph import Subgraph
from repro.graql.ast import (
    CreateEdge,
    CreateIndex,
    CreateTable,
    CreateVertex,
    DropIndex,
    VertexEndpoint,
)
from repro.graql.parser import parse_script
from repro.graql.pretty import pretty_statement
from repro.storage.schema import ColumnDef, Schema
from repro.storage.table import Table

SNAPSHOT_VERSION = 1

KIND_DDL = "ddl"
KIND_INGEST = "ingest"
KIND_RESULT_TABLE = "result_table"
KIND_SUBGRAPH = "subgraph"
KIND_CREATE_USER = "create_user"
KIND_DROP_USER = "drop_user"


# ----------------------------------------------------------------------
# Tables ↔ typed CSV text
# ----------------------------------------------------------------------

def table_csv(table: Table, start: int = 0) -> str:
    """Rows ``[start:]`` of *table* as CSV text with a header row.

    The header makes the payload self-describing and — because the
    ingest-side parser skips a first row equal to the column names —
    guards against a first *data* row that happens to spell them.
    """
    buf = io.StringIO(newline="")
    w = csv.writer(buf)
    w.writerow(table.schema.names())
    types = table.schema.types()
    for i in range(start, table.num_rows):
        w.writerow(
            dtype.format(col.value(i)) for dtype, col in zip(types, table.columns)
        )
    return buf.getvalue()


def parse_table_rows(schema: Schema, text: str) -> list[tuple[Any, ...]]:
    """Parse :func:`table_csv` output back into stored-form row tuples."""
    types = schema.types()
    width = len(schema)
    rows: list[tuple[Any, ...]] = []
    reader = csv.reader(io.StringIO(text, newline=""))
    for lineno, fields in enumerate(reader):
        if lineno == 0:
            continue  # header
        if len(fields) != width:
            raise WalError(
                f"corrupt table payload: row {lineno} has {len(fields)} "
                f"fields, schema has {width}"
            )
        try:
            rows.append(tuple(t.parse(f) for t, f in zip(types, fields)))
        except ValueError as e:
            raise WalError(f"corrupt table payload: row {lineno}: {e}") from e
    return rows


def schema_pairs(schema: Schema) -> list[list[str]]:
    return [[c.name, c.dtype.ddl()] for c in schema]


def schema_from_pairs(pairs: list) -> Schema:
    try:
        return Schema(ColumnDef(name, parse_type_name(ddl)) for name, ddl in pairs)
    except ValueError as e:
        raise WalError(f"corrupt schema payload: {e}") from e


# ----------------------------------------------------------------------
# DDL ↔ GraQL source
# ----------------------------------------------------------------------

def table_ddl(table: Table) -> str:
    return pretty_statement(CreateTable(table.name, table.schema))


def vertex_ddl(vt) -> str:
    return pretty_statement(
        CreateVertex(vt.name, list(vt.key_cols), vt.table.name, vt.where)
    )


def edge_ddl(et) -> str:
    def endpoint(vt, ref: str) -> VertexEndpoint:
        return VertexEndpoint(vt.name, None if ref == vt.name else ref)

    return pretty_statement(
        CreateEdge(
            et.name,
            endpoint(et.source, et.source_ref),
            endpoint(et.target, et.target_ref),
            [t.name for t in et.from_tables],
            et.where,
        )
    )


def index_ddl(gi) -> str:
    return pretty_statement(CreateIndex(gi.name, gi.target_name, list(gi.attrs)))


def _parse_one(source: str):
    try:
        script = parse_script(source)
    except Exception as e:  # a checksummed record should never mis-parse
        raise WalError(f"corrupt DDL payload: {e}") from e
    if len(script.statements) != 1:
        raise WalError(
            f"corrupt DDL payload: expected 1 statement, got {len(script.statements)}"
        )
    return script.statements[0]


def apply_ddl(db: GraphDB, source: str) -> None:
    """Replay one logged DDL statement against *db* (no catalog work)."""
    stmt = _parse_one(source)
    if isinstance(stmt, CreateTable):
        db.create_table(stmt.name, stmt.schema)
    elif isinstance(stmt, CreateVertex):
        db.create_vertex(stmt.name, stmt.key_cols, stmt.table, stmt.where)
    elif isinstance(stmt, CreateEdge):
        db.create_edge(
            stmt.name,
            stmt.source.type_name,
            stmt.target.type_name,
            stmt.source.ref_name,
            stmt.target.ref_name,
            stmt.from_tables,
            stmt.where,
        )
    elif isinstance(stmt, CreateIndex):
        db.create_attr_index(stmt.name, stmt.target, stmt.attrs)
    elif isinstance(stmt, DropIndex):
        db.drop_attr_index(stmt.name)
    else:
        raise WalError(f"corrupt DDL payload: not a DDL statement: {source!r}")


# ----------------------------------------------------------------------
# Subgraphs ↔ id lists
# ----------------------------------------------------------------------

def subgraph_payload(sg: Subgraph) -> dict[str, Any]:
    return {
        "name": sg.name,
        "vertices": {t: [int(v) for v in ids] for t, ids in sg.vertices.items()},
        "edges": {t: [int(e) for e in ids] for t, ids in sg.edges.items()},
    }


def subgraph_from_payload(data: dict[str, Any]) -> Subgraph:
    return Subgraph(
        data["name"],
        {t: np.asarray(ids, dtype=np.int64) for t, ids in data["vertices"].items()},
        {t: np.asarray(ids, dtype=np.int64) for t, ids in data["edges"].items()},
    )


# ----------------------------------------------------------------------
# Snapshots (checkpoint payloads)
# ----------------------------------------------------------------------

def snapshot_payload(
    db: GraphDB, users: list[tuple[str, str]], seq: int, epoch: int
) -> dict[str, Any]:
    """The complete logical state as one JSON-able dict.

    DDL regenerates from the live objects in (tables, vertices, edges)
    order, which is always replayable: a vertex view only references a
    table, an edge view only vertex views and tables, and nothing
    references an edge view.
    """
    return {
        "version": SNAPSHOT_VERSION,
        "seq": seq,
        "epoch": epoch,
        "users": [[n, r] for n, r in users],
        "tables": [
            {
                "name": t.name,
                "schema": schema_pairs(t.schema),
                "csv": table_csv(t),
                "derived": name in db.derived_tables,
            }
            for name, t in db.tables.items()
        ],
        "vertices": [vertex_ddl(vt) for vt in db.vertex_types.values()],
        "edges": [edge_ddl(et) for et in db.edge_types.values()],
        "indexes": [index_ddl(gi) for gi in db.attr_indexes.values()],
        "subgraphs": [subgraph_payload(sg) for sg in db.subgraphs.values()],
    }


def restore_snapshot(payload: dict[str, Any]) -> tuple[GraphDB, list[tuple[str, str]]]:
    """Rebuild a :class:`GraphDB` (plus the user list) from a snapshot."""
    if payload.get("version") != SNAPSHOT_VERSION:
        raise WalError(
            f"unsupported snapshot version {payload.get('version')!r} "
            f"(this build reads version {SNAPSHOT_VERSION})"
        )
    db = GraphDB()
    users = [(n, r) for n, r in payload.get("users", [])]
    derived = []
    for spec in payload["tables"]:
        schema = schema_from_pairs(spec["schema"])
        rows = parse_table_rows(schema, spec["csv"])
        if spec["derived"]:
            derived.append((spec["name"], schema, rows))
        else:
            table = db.create_table(spec["name"], schema)
            if rows:
                table.append_rows(rows)
    for name, schema, rows in derived:
        db.register_result_table(name, Table.from_rows(name, schema, rows))
    for source in payload["vertices"]:
        apply_ddl(db, source)
    for source in payload["edges"]:
        apply_ddl(db, source)
    for source in payload.get("indexes", []):
        apply_ddl(db, source)
    for data in payload.get("subgraphs", []):
        db.register_subgraph(subgraph_from_payload(data))
    return db, users


# ----------------------------------------------------------------------
# WAL record replay
# ----------------------------------------------------------------------

def apply_record(
    db: GraphDB,
    users: list[tuple[str, str]],
    record: dict[str, Any],
    dirty: set[str],
) -> None:
    """Apply one WAL record to the recovering state.

    Ingest records only append rows and mark the table dirty; dependent
    vertex/edge views rebuild lazily (:func:`flush_rebuilds`) — once
    before the next DDL record and once at the end of replay — instead
    of after every batch, which is what keeps replaying an ingest-heavy
    tail linear instead of quadratic.
    """
    kind = record.get("kind")
    data = record.get("data", {})
    if kind == KIND_DDL:
        flush_rebuilds(db, dirty)  # view-building DDL must see fresh views
        apply_ddl(db, data["source"])
    elif kind == KIND_INGEST:
        table = db.table(data["table"])
        rows = parse_table_rows(table.schema, data["csv"])
        if rows:
            table.append_rows(rows)
        dirty.add(table.name)
    elif kind == KIND_RESULT_TABLE:
        schema = schema_from_pairs(data["schema"])
        rows = parse_table_rows(schema, data["csv"])
        db.register_result_table(
            data["name"], Table.from_rows(data["name"], schema, rows)
        )
    elif kind == KIND_SUBGRAPH:
        db.register_subgraph(subgraph_from_payload(data))
    elif kind == KIND_CREATE_USER:
        users.append((data["name"], data["role"]))
    elif kind == KIND_DROP_USER:
        users[:] = [(n, r) for n, r in users if n != data["name"]]
    else:
        raise WalError(f"unknown WAL record kind {kind!r}")


def flush_rebuilds(db: GraphDB, dirty: set[str]) -> None:
    """Rebuild every vertex/edge view depending on a dirty table, once."""
    if not dirty:
        return
    stale_vertices = set()
    stale_edges = set()
    for vt in db.vertex_types.values():
        if vt.table.name in dirty:
            vt.refresh()
            stale_vertices.add(vt.name)
    for et in db.edge_types.values():
        deps = db._edge_dependencies(et)
        if (
            deps & dirty
            or et.source.name in stale_vertices
            or et.target.name in stale_vertices
        ):
            et.refresh()
            db.indexes[et.name] = BidirectionalIndex(et)
            stale_edges.add(et.name)
    for gi in db.attr_indexes.values():
        if gi.target_name in stale_vertices or gi.target_name in stale_edges:
            gi.rebuild()
    dirty.clear()


# ----------------------------------------------------------------------
# State fingerprints (verification + property tests)
# ----------------------------------------------------------------------

def state_fingerprint(
    db: GraphDB, users: Optional[list[tuple[str, str]]] = None
) -> dict[str, Any]:
    """A canonical, comparable rendering of the *complete* logical state.

    Covers raw table rows *and* the derived vertex/edge views (row
    selections, endpoint vid arrays), so two fingerprints only compare
    equal when both storage and every rebuilt view agree — the
    "recovered database equals a prefix of committed statements"
    invariant is asserted on this.
    """
    return {
        "users": sorted(users or []),
        "tables": {
            name: {
                "schema": schema_pairs(t.schema),
                "csv": table_csv(t),
                "derived": name in db.derived_tables,
            }
            for name, t in db.tables.items()
        },
        "vertices": {
            vt.name: {
                "ddl": vertex_ddl(vt),
                "rows": [int(r) for r in vt.rows],
            }
            for vt in db.vertex_types.values()
        },
        "edges": {
            et.name: {
                "ddl": edge_ddl(et),
                "src": [int(v) for v in et.src_vids],
                "tgt": [int(v) for v in et.tgt_vids],
            }
            for et in db.edge_types.values()
        },
        "indexes": {
            gi.name: {"ddl": index_ddl(gi), "entries": int(gi.num_entries)}
            for gi in db.attr_indexes.values()
        },
        "subgraphs": {
            name: subgraph_payload(sg) for name, sg in db.subgraphs.items()
        },
    }
