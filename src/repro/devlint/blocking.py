"""Classification of potentially-blocking and durability operations.

A call is *blocking* when it can stall the calling thread on I/O,
another thread, or the clock — exactly the operations that must never
happen while an exclusive lock serializes the whole engine.  The rules
are receiver-sensitive where names alone are too common (``send``,
``recv``, ``join``, ``shutdown``): they fire only when the model types
the receiver as a socket/thread/executor or its name says so.

Condition-variable waits (``wait``/``wait_for``) are deliberately *not*
blocking here: a Condition releases its mutex while waiting, and lock
acquisition ordering is the lock-order pass's domain, not this one's.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Optional

from repro.devlint.model import EXECUTOR, SOCKET, THREAD, dotted_name

if TYPE_CHECKING:
    from repro.devlint.model import CodeModel, FunctionInfo

#: resolved dotted callee -> description; always blocking
_ALWAYS_BLOCKING = {
    "time.sleep": "time.sleep",
    "os.fsync": "os.fsync",
    "os.fdatasync": "os.fdatasync",
    "select.select": "select.select",
}

#: method names that block regardless of receiver (no benign homonyms
#: exist in this tree)
_METHODS_ALWAYS = {
    "sendall": "socket sendall",
    "recv_into": "socket recv_into",
    "accept": "socket accept",
    "result": "Future.result",
}

#: method name -> (description, receiver kinds, receiver-name hints)
_METHODS_RECEIVER = {
    "send": ("socket send", (SOCKET,), ("sock", "listener")),
    "recv": ("socket recv", (SOCKET,), ("sock", "listener")),
    "connect": ("socket connect", (SOCKET,), ("sock", "listener")),
    "makefile": ("socket makefile", (SOCKET,), ("sock", "listener")),
    "join": ("thread join", (THREAD,), ("thread",)),
    "shutdown": ("executor shutdown", (EXECUTOR,), ("pool", "executor")),
}

#: attribute-method names that touch the durability layer when the
#: receiver looks like the WAL/journal/store
_DURABILITY_METHODS = ("append", "sync", "checkpoint")
_DURABILITY_RECEIVER_HINTS = ("wal", "writer", "journal", "durab")


def _resolved_callee_name(fn: "FunctionInfo", func: ast.expr) -> Optional[str]:
    name = dotted_name(func)
    if name is None:
        return None
    head = name.split(".")[0]
    imported = fn.module.imports.get(head)
    if imported is not None:
        return imported + name[len(head):]
    return name


def _receiver_matches(
    model: "CodeModel",
    fn: "FunctionInfo",
    recv: ast.expr,
    kinds: tuple[str, ...],
    hints: tuple[str, ...],
) -> bool:
    t = model.type_of(fn, recv)
    if t in kinds:
        return True
    # fall back to the receiver's own (attribute or variable) name
    leaf = None
    if isinstance(recv, ast.Attribute):
        leaf = recv.attr
    elif isinstance(recv, ast.Name):
        leaf = recv.id
    if leaf is not None:
        leaf = leaf.lower()
        return any(h in leaf for h in hints)
    return False


def classify_blocking(
    model: "CodeModel", fn: "FunctionInfo", call: ast.Call
) -> Optional[str]:
    """Description of why *call* blocks, or None."""
    func = call.func
    resolved = _resolved_callee_name(fn, func)
    if resolved is not None:
        if resolved in _ALWAYS_BLOCKING:
            return _ALWAYS_BLOCKING[resolved]
        if resolved.startswith("subprocess."):
            return f"subprocess ({resolved})"
    if isinstance(func, ast.Attribute):
        attr = func.attr
        if attr in _METHODS_ALWAYS:
            return _METHODS_ALWAYS[attr]
        rule = _METHODS_RECEIVER.get(attr)
        if rule is not None:
            desc, kinds, hints = rule
            if _receiver_matches(model, fn, func.value, kinds, hints):
                return desc
    return None


def direct_blocking_ops(
    model: "CodeModel", fn: "FunctionInfo"
) -> list[tuple[str, ast.AST]]:
    """Blocking calls appearing directly in *fn*'s body."""
    out: list[tuple[str, ast.AST]] = []
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Call):
            desc = classify_blocking(model, fn, node)
            if desc is not None:
                out.append((desc, node))
    return out


def is_durability_call(
    model: "CodeModel", fn: "FunctionInfo", call: ast.Call
) -> bool:
    """True if *call* appends/syncs the WAL or journal directly.

    Receiver-based: ``self._writer.append(...)``, ``wal.sync()``,
    ``journal.log_*(...)``.  Calls into functions that do this land in
    the transitive ``durable`` summary instead.
    """
    func = call.func
    if not isinstance(func, ast.Attribute):
        return False
    attr = func.attr
    if attr not in _DURABILITY_METHODS and not attr.startswith("log_"):
        return False
    recv = func.value
    t = model.type_of(fn, recv)
    if t is not None and (
        t.rsplit(".", 1)[-1] in ("WalWriter", "DurableStore")
    ):
        return True
    leaf = None
    if isinstance(recv, ast.Attribute):
        leaf = recv.attr
    elif isinstance(recv, ast.Name):
        leaf = recv.id
    if leaf is not None:
        leaf = leaf.lower().lstrip("_")
        return any(h in leaf for h in _DURABILITY_RECEIVER_HINTS)
    return False
