"""Lock identification and the engine's canonical acquisition order.

Every lock in the engine is identified by *(owner class, attribute)* —
``AdmissionController._lock``, ``RWLock._cond`` — plus one synthetic id
for the catalog :class:`~repro.serve.locks.RWLock` itself (its two
sides share one id; shared vs. exclusive is tracked per acquisition).

The canonical order (outermost first; docs/DEVLINT.md,
docs/RELIABILITY.md) is::

    1. catalog RWLock          (serve.locks.RWLock, read or write side)
    2. AdmissionController._lock
    3. PlanCache._lock
    4. DurableStore._lock
    5. metrics locks           (every class in repro.obs.metrics)

Ranks match on the owner's *class name* (and, for metrics, the module
suffix), not the full qualname, so the seeded corpus can exercise the
rule with self-contained snippets.  Locks outside the table are
*leaves*: they carry no rank (GDL001 never fires for them) but still
participate in the acquisition graph, where opposite-order pairs are
reported as cycles (GDL002).
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Optional

from repro.devlint.model import CONDITION, LOCK, dotted_name

if TYPE_CHECKING:
    from repro.devlint.model import CodeModel, FunctionInfo

#: synthetic id for the catalog RWLock (both sides)
RWLOCK_ID = "RWLock"

#: lock id -> rank (lower = outermost); see module docstring
_RANKS: dict[str, int] = {
    RWLOCK_ID: 1,
    "AdmissionController._lock": 2,
    "PlanCache._lock": 3,
    "DurableStore._lock": 4,
}
_METRICS_MODULE_SUFFIX = "obs.metrics"
_METRICS_RANK = 5

#: RWLock API: method -> exclusive?
_RWLOCK_METHODS = {
    "read_locked": False,
    "acquire_read": False,
    "write_locked": True,
    "acquire_write": True,
}


class LockAcquisition:
    """One acquisition event: which lock, exclusive or shared, where."""

    __slots__ = ("lock_id", "exclusive", "node", "rank")

    def __init__(self, lock_id: str, exclusive: bool, node: ast.AST) -> None:
        self.lock_id = lock_id
        self.exclusive = exclusive
        self.node = node
        self.rank = rank_of(lock_id)

    def __repr__(self) -> str:
        mode = "excl" if self.exclusive else "shared"
        return f"LockAcquisition({self.lock_id}, {mode})"


def rank_of(lock_id: str) -> Optional[int]:
    if lock_id in _RANKS:
        return _RANKS[lock_id]
    # metrics locks are identified by their owning module
    owner, _, _attr = lock_id.rpartition(".")
    if owner.endswith(_METRICS_MODULE_SUFFIX) or lock_id.startswith(
        _METRICS_MODULE_SUFFIX + "."
    ):
        return _METRICS_RANK
    return None


def _lock_id_for_attr(
    model: "CodeModel", fn: "FunctionInfo", expr: ast.Attribute
) -> Optional[str]:
    """Lock id of a plain-mutex attribute expression, or None."""
    t = model.type_of(fn, expr)
    if t not in (LOCK, CONDITION):
        return None
    owner_t = model.type_of(fn, expr.value)
    if owner_t is not None:
        ci = model.classes.get(owner_t)
        if ci is not None:
            # metrics classes share one rank; keep the module visible
            if ci.module.name.endswith(_METRICS_MODULE_SUFFIX):
                return f"{ci.module.name}.{ci.name}.{expr.attr}"
            return f"{ci.name}.{expr.attr}"
        return f"{owner_t}.{expr.attr}"
    base = dotted_name(expr.value)
    return f"{base}.{expr.attr}" if base else expr.attr


def _is_rwlock_receiver(
    model: "CodeModel", fn: "FunctionInfo", recv: ast.expr
) -> bool:
    t = model.type_of(fn, recv)
    if t is not None and t.rsplit(".", 1)[-1] == "RWLock":
        return True
    leaf = recv.attr if isinstance(recv, ast.Attribute) else (
        recv.id if isinstance(recv, ast.Name) else None
    )
    return leaf is not None and "rwlock" in leaf.lower()


def acquisition_of(
    model: "CodeModel", fn: "FunctionInfo", node: ast.AST
) -> Optional[LockAcquisition]:
    """Classify a ``with``-item expression or a call as an acquisition.

    Recognized forms::

        with self._lock:                    # mutex/condition, exclusive
        with engine.lock.read_locked():     # RWLock shared
        with engine.lock.write_locked():    # RWLock exclusive
        self._lock.acquire()                # mutex, exclusive
        lock.acquire_read() / acquire_write()
    """
    if isinstance(node, ast.Attribute):
        lock_id = _lock_id_for_attr(model, fn, node)
        if lock_id is not None:
            return LockAcquisition(lock_id, True, node)
        return None
    if isinstance(node, ast.Name):
        t = model.type_of(fn, node)
        if t in (LOCK, CONDITION):
            return LockAcquisition(node.id, True, node)
        return None
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        attr = node.func.attr
        if attr in _RWLOCK_METHODS and _is_rwlock_receiver(
            model, fn, node.func.value
        ):
            return LockAcquisition(RWLOCK_ID, _RWLOCK_METHODS[attr], node)
        if attr == "acquire":
            if isinstance(node.func.value, ast.Attribute):
                lock_id = _lock_id_for_attr(model, fn, node.func.value)
                if lock_id is not None:
                    return LockAcquisition(lock_id, True, node)
            elif isinstance(node.func.value, ast.Name):
                t = model.type_of(fn, node.func.value)
                if t in (LOCK, CONDITION):
                    return LockAcquisition(node.func.value.id, True, node)
    return None
