"""The devcheck passes: each walks the :class:`CodeModel` and yields
:class:`DevDiagnostic` findings.

* :func:`lock_passes` — GDL001 (rank violations against the canonical
  order), GDL002 (opposite-order acquisition cycles), GDL010 (blocking
  operations reachable while an exclusive lock is held).  One traversal
  maintains the held-lock stack; call edges use the transitive
  summaries so facts propagate through helpers.
* :func:`ack_durability_pass` — GDL020: an acknowledgement (result/done
  frame send) lexically preceding a durability call in the same
  function.
* :func:`repl_ack_pass` — GDL021: a ``REPL_ACK`` send lexically
  preceding the ``apply_replicated``/snapshot-install (or a direct WAL
  append) that makes the streamed record durable locally.
* :func:`except_hygiene_pass` — GDL030 (handlers that can swallow
  ``SimulatedCrash``/``KeyboardInterrupt``), GDL031 (broad silent
  ``except Exception``).
* :func:`thread_hygiene_pass` — GDL032 (non-daemon unjoined threads),
  GDL033 (fire-and-forget futures).
* :func:`guard_pass` — GDL034: public methods of ``_check_open``-bearing
  classes that are reachable without the closed-engine guard.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.devlint.blocking import classify_blocking, is_durability_call
from repro.devlint.diagnostics import DevDiagnostic, FileSpan
from repro.devlint.locks import LockAcquisition, acquisition_of
from repro.devlint.model import THREAD, CodeModel, FunctionInfo, dotted_name

#: frame-type constants whose send acknowledges a statement
_ACK_FRAME_NAMES = ("FT_RESULT", "FT_DONE", "FT_PREPARED")

#: method names that acknowledge by themselves
_ACK_METHODS = ("ack", "acknowledge")

#: frame-type constants whose send acknowledges *replicated* durability
#: (GDL021 — deliberately disjoint from the GDL020 names above so one
#: defective send fires exactly one code)
_REPL_ACK_FRAME_NAMES = ("FT_REPL_ACK",)

#: store methods that make a streamed record durable on the replica
_REPL_APPLY_METHODS = ("apply_replicated", "install_snapshot")

#: public method names exempt from the GDL034 guard requirement —
#: they must work on a closed object by contract
_GUARD_EXEMPT = ("close", "closed", "stop", "shutdown", "join")


def _span(fn: FunctionInfo, node: ast.AST) -> FileSpan:
    return FileSpan(
        fn.module.path,
        getattr(node, "lineno", fn.node.lineno),
        getattr(node, "col_offset", 0) + 1,
    )


def _diag(
    code: str, message: str, fn: FunctionInfo, node: ast.AST
) -> DevDiagnostic:
    return DevDiagnostic(
        code, message, span=_span(fn, node), symbol=fn.qualname
    )


# ======================================================================
# Lock passes: GDL001 / GDL002 / GDL010
# ======================================================================

class _LockWalker:
    """Walks one function with a held-lock stack, collecting findings
    and acquisition-order edges (for the cross-function cycle check)."""

    def __init__(self, model: CodeModel, fn: FunctionInfo,
                 acquires_all: dict[int, set[tuple[str, bool]]],
                 edges: dict[tuple[str, str], tuple[FunctionInfo, ast.AST]]):
        self.model = model
        self.fn = fn
        self.acquires_all = acquires_all
        self.edges = edges
        self.diags: list[DevDiagnostic] = []
        #: locks acquired without a scoping ``with`` (acquire()-style);
        #: held until released or function end
        self.sticky: list[LockAcquisition] = []

    # -- helpers -------------------------------------------------------
    def _record_acquire(
        self, acq: LockAcquisition, held: list[LockAcquisition]
    ) -> None:
        for h in held + self.sticky:
            if h.lock_id == acq.lock_id:
                continue
            self.edges.setdefault(
                (h.lock_id, acq.lock_id), (self.fn, acq.node)
            )
            if (
                h.rank is not None
                and acq.rank is not None
                and h.rank >= acq.rank
            ):
                self.diags.append(_diag(
                    "GDL001",
                    f"acquires {acq.lock_id} while holding {h.lock_id}; "
                    f"the canonical order puts {acq.lock_id} outside it",
                    self.fn, acq.node,
                ))

    def _record_call_acquires(
        self,
        callee: FunctionInfo,
        node: ast.AST,
        held: list[LockAcquisition],
    ) -> None:
        for lock_id, exclusive in self.acquires_all.get(id(callee), ()):
            fake = LockAcquisition(lock_id, exclusive, node)
            for h in held + self.sticky:
                if h.lock_id == lock_id:
                    continue
                self.edges.setdefault((h.lock_id, lock_id), (self.fn, node))
                if (
                    h.rank is not None
                    and fake.rank is not None
                    and h.rank >= fake.rank
                ):
                    self.diags.append(_diag(
                        "GDL001",
                        f"call to {callee.qualname}() acquires {lock_id} "
                        f"while holding {h.lock_id}; the canonical order "
                        f"puts {lock_id} outside it",
                        self.fn, node,
                    ))

    def _released_lock_id(self, func: ast.Attribute) -> Optional[str]:
        """Lock id a ``release*()`` call lets go of, or None if unclear."""
        from repro.devlint.locks import (
            RWLOCK_ID,
            _is_rwlock_receiver,
            _lock_id_for_attr,
        )
        if func.attr in ("release_read", "release_write"):
            if _is_rwlock_receiver(self.model, self.fn, func.value):
                return RWLOCK_ID
            return None
        if isinstance(func.value, ast.Attribute):
            return _lock_id_for_attr(self.model, self.fn, func.value)
        if isinstance(func.value, ast.Name):
            return func.value.id
        return None

    def _exclusive_held(
        self, held: list[LockAcquisition]
    ) -> Optional[LockAcquisition]:
        for h in held + self.sticky:
            if h.exclusive:
                return h
        return None

    def _check_call(
        self, call: ast.Call, held: list[LockAcquisition]
    ) -> None:
        acq = acquisition_of(self.model, self.fn, call)
        if acq is not None:
            self._record_acquire(acq, held)
            self.sticky.append(acq)
            return
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr in (
            "release", "release_read", "release_write"
        ):
            released = self._released_lock_id(func)
            for i in range(len(self.sticky) - 1, -1, -1):
                if released is None or self.sticky[i].lock_id == released:
                    self.sticky.pop(i)
                    break
            return
        excl = self._exclusive_held(held)
        if excl is not None:
            desc = classify_blocking(self.model, self.fn, call)
            if desc is not None:
                self.diags.append(_diag(
                    "GDL010",
                    f"{desc} while holding {excl.lock_id} exclusively",
                    self.fn, call,
                ))
        callee = self.model.resolve_call(self.fn, call)
        if callee is not None:
            self._record_call_acquires(callee, call, held)
            if excl is not None and callee.blocks_via is not None:
                self.diags.append(_diag(
                    "GDL010",
                    f"call to {callee.qualname}() can block "
                    f"({callee.blocks_via}) while holding {excl.lock_id} "
                    f"exclusively",
                    self.fn, call,
                ))

    def _visit_calls(
        self, node: ast.AST, held: list[LockAcquisition]
    ) -> None:
        """Examine every call in an expression/simple statement."""
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                self._check_call(sub, held)

    # -- statement traversal -------------------------------------------
    def visit_block(
        self, stmts: list[ast.stmt], held: list[LockAcquisition]
    ) -> None:
        for s in stmts:
            if isinstance(s, ast.With):
                acquired: list[LockAcquisition] = []
                for item in s.items:
                    acq = acquisition_of(self.model, self.fn, item.context_expr)
                    if acq is not None:
                        self._record_acquire(acq, held + acquired)
                        acquired.append(acq)
                    else:
                        self._visit_calls(item.context_expr, held)
                self.visit_block(s.body, held + acquired)
            elif isinstance(s, (ast.If, ast.While)):
                self._visit_calls(s.test, held)
                self.visit_block(s.body, held)
                self.visit_block(s.orelse, held)
            elif isinstance(s, (ast.For, ast.AsyncFor)):
                self._visit_calls(s.iter, held)
                self.visit_block(s.body, held)
                self.visit_block(s.orelse, held)
            elif isinstance(s, ast.Try):
                self.visit_block(s.body, held)
                for h in s.handlers:
                    self.visit_block(h.body, held)
                self.visit_block(s.orelse, held)
                self.visit_block(s.finalbody, held)
            elif isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef,
                                ast.ClassDef)):
                continue  # nested scopes: not modeled
            else:
                self._visit_calls(s, held)


def _compute_acquires_all(
    model: CodeModel,
) -> dict[int, set[tuple[str, bool]]]:
    """Transitive (lock_id, exclusive) acquisition sets per function."""
    direct: dict[int, set[tuple[str, bool]]] = {}
    for fn in model.functions:
        acc: set[tuple[str, bool]] = set()
        for node in ast.walk(fn.node):
            expr: Optional[ast.AST] = None
            if isinstance(node, ast.withitem):
                expr = node.context_expr
            elif isinstance(node, ast.Call):
                expr = node
            if expr is None:
                continue
            acq = acquisition_of(model, fn, expr)
            if acq is not None:
                acc.add((acq.lock_id, acq.exclusive))
        direct[id(fn)] = acc
    changed = True
    while changed:
        changed = False
        for fn in model.functions:
            mine = direct[id(fn)]
            before = len(mine)
            for callee in fn.callees:
                mine |= direct.get(id(callee), set())
            if len(mine) != before:
                changed = True
    return direct


def lock_passes(model: CodeModel) -> Iterator[DevDiagnostic]:
    acquires_all = _compute_acquires_all(model)
    edges: dict[tuple[str, str], tuple[FunctionInfo, ast.AST]] = {}
    for fn in model.functions:
        walker = _LockWalker(model, fn, acquires_all, edges)
        walker.visit_block(fn.node.body, [])
        yield from walker.diags
    # cycle check over the global acquisition graph: A->B and B->A with
    # neither direction already condemned by the rank table
    reported: set[frozenset[str]] = set()
    for (a, b), (fn, node) in sorted(
        edges.items(), key=lambda kv: (kv[0][0], kv[0][1])
    ):
        if a == b or (b, a) not in edges:
            continue
        pair = frozenset((a, b))
        if pair in reported:
            continue
        reported.add(pair)
        from repro.devlint.locks import rank_of
        if rank_of(a) is not None and rank_of(b) is not None:
            continue  # the wrong direction already got GDL001
        yield _diag(
            "GDL002",
            f"{a} and {b} are acquired in both orders; "
            f"concurrent callers can deadlock",
            fn, node,
        )


# ======================================================================
# GDL020: acknowledgement before durability
# ======================================================================

def _is_ack_call(call: ast.Call) -> bool:
    func = call.func
    if not isinstance(func, ast.Attribute):
        return False
    if func.attr in _ACK_METHODS:
        return True
    if func.attr == "send_frame":
        for arg in call.args:
            name = dotted_name(arg)
            if name is not None and name.split(".")[-1] in _ACK_FRAME_NAMES:
                return True
    return False


def ack_durability_pass(model: CodeModel) -> Iterator[DevDiagnostic]:
    for fn in model.functions:
        acks: list[ast.Call] = []
        durability_lines: list[int] = []
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            if _is_ack_call(node):
                acks.append(node)
                continue
            if is_durability_call(model, fn, node):
                durability_lines.append(node.lineno)
            else:
                callee = model.resolve_call(fn, node)
                if callee is not None and callee.durable:
                    durability_lines.append(node.lineno)
        if not acks or not durability_lines:
            continue
        last_durable = max(durability_lines)
        for ack in acks:
            if ack.lineno < last_durable:
                yield _diag(
                    "GDL020",
                    "acknowledgement is sent before the WAL append/fsync "
                    "on the same path; a crash in between acknowledges "
                    "a lost statement",
                    fn, ack,
                )


# ======================================================================
# GDL021: replication ack before WAL durability
# ======================================================================

def _is_repl_ack_call(call: ast.Call) -> bool:
    func = call.func
    if not isinstance(func, ast.Attribute) or func.attr != "send_frame":
        return False
    for arg in call.args:
        name = dotted_name(arg)
        if name is not None and name.split(".")[-1] in _REPL_ACK_FRAME_NAMES:
            return True
    return False


def repl_ack_pass(model: CodeModel) -> Iterator[DevDiagnostic]:
    """GDL021: the replica's ``REPL_ACK`` must follow the local apply.

    Only *direct* durability calls count here (``apply_replicated``,
    ``install_snapshot``, WAL append/sync on the same path) — the
    transitive ``durable`` summary would indict an ack that merely
    precedes an unrelated helper on another branch of the same
    dispatch loop.
    """
    for fn in model.functions:
        acks: list[ast.Call] = []
        durability_lines: list[int] = []
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            if _is_repl_ack_call(node):
                acks.append(node)
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _REPL_APPLY_METHODS
            ):
                durability_lines.append(node.lineno)
            elif is_durability_call(model, fn, node):
                durability_lines.append(node.lineno)
        if not acks or not durability_lines:
            continue
        last_durable = max(durability_lines)
        for ack in acks:
            if ack.lineno < last_durable:
                yield _diag(
                    "GDL021",
                    "REPL_ACK is sent before apply_replicated/WAL append "
                    "on the same path; the primary would count a write "
                    "replicated that a replica crash can still lose",
                    fn, ack,
                )


# ======================================================================
# GDL030 / GDL031: exception-handler hygiene
# ======================================================================

def _handler_type_names(handler: ast.ExceptHandler) -> list[str]:
    if handler.type is None:
        return ["<bare>"]
    types = (
        handler.type.elts
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    out = []
    for t in types:
        name = dotted_name(t)
        if name is not None:
            out.append(name.split(".")[-1])
    return out


def _body_reraises(handler: ast.ExceptHandler) -> bool:
    return any(
        isinstance(n, ast.Raise)
        for stmt in handler.body
        for n in ast.walk(stmt)
    )


def _binding_used(handler: ast.ExceptHandler) -> bool:
    if handler.name is None:
        return False
    return any(
        isinstance(n, ast.Name) and n.id == handler.name
        for stmt in handler.body
        for n in ast.walk(stmt)
    )


def except_hygiene_pass(model: CodeModel) -> Iterator[DevDiagnostic]:
    for fn in model.functions:
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.ExceptHandler):
                continue
            names = _handler_type_names(node)
            reraises = _body_reraises(node)
            if ("<bare>" in names or "BaseException" in names) and not reraises:
                yield _diag(
                    "GDL030",
                    "handler catches BaseException (so SimulatedCrash and "
                    "KeyboardInterrupt too) and never re-raises",
                    fn, node,
                )
            elif "Exception" in names and not reraises and not _binding_used(
                node
            ):
                yield _diag(
                    "GDL031",
                    "broad 'except Exception' neither re-raises nor uses "
                    "the exception; failures here disappear silently",
                    fn, node,
                )


# ======================================================================
# GDL032 / GDL033: thread and future hygiene
# ======================================================================

def _daemon_kwarg(call: ast.Call) -> bool:
    return any(kw.arg == "daemon" for kw in call.keywords)


def _module_joins_or_daemonizes(mod_tree: ast.Module, leaf: str) -> bool:
    """Anywhere in the module: ``<...>.<leaf>.join(...)`` or
    ``<...>.<leaf>.daemon = True`` / local ``leaf.join(...)``."""
    for node in ast.walk(mod_tree):
        if isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ) and node.func.attr == "join":
            recv = node.func.value
            recv_leaf = (
                recv.attr if isinstance(recv, ast.Attribute)
                else recv.id if isinstance(recv, ast.Name) else None
            )
            if recv_leaf == leaf:
                return True
        if isinstance(node, ast.Assign):
            for t in node.targets:
                if (
                    isinstance(t, ast.Attribute)
                    and t.attr == "daemon"
                    and isinstance(t.value, (ast.Attribute, ast.Name))
                ):
                    base = t.value
                    base_leaf = (
                        base.attr if isinstance(base, ast.Attribute)
                        else base.id
                    )
                    if base_leaf == leaf:
                        return True
    return False


def thread_hygiene_pass(model: CodeModel) -> Iterator[DevDiagnostic]:
    for fn in model.functions:
        for node in ast.walk(fn.node):
            # GDL033: a discarded future
            if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
                call = node.value
                if isinstance(call.func, ast.Attribute) and call.func.attr in (
                    "submit", "submit_work"
                ):
                    yield _diag(
                        "GDL033",
                        "the returned future is discarded; a worker "
                        "exception would vanish with it",
                        fn, call,
                    )
            # GDL032: thread creation
            if isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Call
            ):
                call = node.value
                if model._kind_of_callee(fn.module, call.func) != THREAD:
                    continue
                if _daemon_kwarg(call):
                    continue
                target = node.targets[0] if len(node.targets) == 1 else None
                leaf = (
                    target.attr if isinstance(target, ast.Attribute)
                    else target.id if isinstance(target, ast.Name) else None
                )
                if leaf is not None and _module_joins_or_daemonizes(
                    fn.module.tree, leaf
                ):
                    continue
                yield _diag(
                    "GDL032",
                    "thread is neither daemon=True nor joined anywhere in "
                    "this module; it can outlive shutdown",
                    fn, call,
                )
            elif isinstance(node, ast.Expr) and isinstance(
                node.value, ast.Call
            ):
                call = node.value
                if (
                    model._kind_of_callee(fn.module, call.func) == THREAD
                    and not _daemon_kwarg(call)
                ):
                    yield _diag(
                        "GDL032",
                        "thread object is discarded at creation; it can "
                        "never be joined",
                        fn, call,
                    )


# ======================================================================
# GDL034: missing closed-engine guard
# ======================================================================

def _body_is_trivial(fn: FunctionInfo) -> bool:
    """Docstring/pass/ellipsis/raise only — an abstract or stub body."""
    for stmt in fn.node.body:
        if isinstance(stmt, (ast.Pass, ast.Raise)):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue
        return False
    return True


def _property_is_simple(fn: FunctionInfo) -> bool:
    """A property that only reads state needs no guard."""
    return fn.is_property and not any(
        isinstance(n, ast.Call) for n in ast.walk(fn.node)
    )


def _class_defines_check_open(model: CodeModel, ci) -> bool:
    if "_check_open" in ci.methods:
        return True
    for base in ci.bases:
        if base is None:
            continue
        bi = model.classes.get(base) or model.classes.get(
            base.rsplit(".", 1)[-1]
        )
        if bi is not None and "_check_open" in bi.methods:
            return True
    return False


def guard_pass(model: CodeModel) -> Iterator[DevDiagnostic]:
    for mod in model.modules.values():
        for ci in mod.classes.values():
            if not _class_defines_check_open(model, ci):
                continue
            for name, m in ci.methods.items():
                if name.startswith("_") or name in _GUARD_EXEMPT:
                    continue
                if m.is_abstract or _body_is_trivial(m):
                    continue
                if _property_is_simple(m):
                    continue
                if m.guards:
                    continue
                yield _diag(
                    "GDL034",
                    f"{ci.name}.{name} is public on a class with a "
                    f"_check_open guard but never reaches it; it would "
                    f"run against a closed engine",
                    m, m.node,
                )


ALL_PASSES = (
    lock_passes,
    ack_durability_pass,
    repl_ack_pass,
    except_hygiene_pass,
    thread_hygiene_pass,
    guard_pass,
)
