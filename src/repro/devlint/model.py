"""Semantic model of the ``src/repro`` tree for the devcheck passes.

The passes need more than raw syntax: *what object is this attribute*
(is ``self._pool`` an executor? is ``self.sock`` a socket?), *which
function does this call resolve to* (so lock/blocking facts propagate
through helpers), and *what does each function do transitively*.  This
module builds that model from plain :mod:`ast`:

* every ``.py`` file is parsed into a :class:`ModuleInfo` with its
  imports, functions and classes;
* attribute and local types are inferred from constructor calls
  (``self._lock = threading.Lock()``), annotations (including
  ``Optional[T]``) and parameter-annotation propagation
  (``self.sock = sock`` where ``sock: socket.socket``);
* call sites are resolved through ``self``, module globals and imports;
* per-function summaries (blocking operations performed, durability
  calls made, ``_check_open`` guards hit) are closed transitively with
  a fixpoint over the call graph.

The inference is deliberately conservative: an unresolvable call or
untyped receiver contributes nothing, so passes err toward silence and
the seeded-violation corpus (tests/devlint/corpus) proves each rule
still fires where it must.
"""

from __future__ import annotations

import ast
import os
from typing import Iterator, Optional

# builtin "kinds" — coarse types the passes care about, distinct from
# user-class qualnames (which are dotted and start with "repro.")
LOCK = "<lock>"
CONDITION = "<condition>"
EXECUTOR = "<executor>"
SOCKET = "<socket>"
THREAD = "<thread>"

#: constructor call -> builtin kind, keyed by the dotted callee name
#: as written (resolved through imports before lookup)
_CONSTRUCTOR_KINDS = {
    "threading.Lock": LOCK,
    "threading.RLock": LOCK,
    "threading.Condition": CONDITION,
    "threading.Thread": THREAD,
    "threading.Semaphore": LOCK,
    "threading.BoundedSemaphore": LOCK,
    "concurrent.futures.ThreadPoolExecutor": EXECUTOR,
    "ThreadPoolExecutor": EXECUTOR,
    "socket.socket": SOCKET,
    "socket.create_connection": SOCKET,
}

#: annotation name (last dotted segment chain) -> builtin kind
_ANNOTATION_KINDS = {
    "threading.Lock": LOCK,
    "threading.RLock": LOCK,
    "threading.Condition": CONDITION,
    "threading.Thread": THREAD,
    "Thread": THREAD,
    "ThreadPoolExecutor": EXECUTOR,
    "concurrent.futures.ThreadPoolExecutor": EXECUTOR,
    "socket.socket": SOCKET,
    "Lock": LOCK,
    "Condition": CONDITION,
}


def dotted_name(node: ast.expr) -> Optional[str]:
    """``a.b.c`` as a string, or None for anything fancier."""
    parts: list[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
        return ".".join(reversed(parts))
    return None


def _unwrap_annotation(node: ast.expr) -> Optional[str]:
    """Dotted name of an annotation, looking through Optional[...]/str."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.Subscript):
        base = dotted_name(node.value)
        if base in ("Optional", "typing.Optional"):
            return _unwrap_annotation(node.slice)
    return dotted_name(node)


class FunctionInfo:
    """One function or method, with its inferred facts."""

    def __init__(
        self,
        module: "ModuleInfo",
        node: ast.FunctionDef,
        cls: Optional["ClassInfo"],
    ) -> None:
        self.module = module
        self.node = node
        self.cls = cls
        self.name = node.name
        self.qualname = f"{cls.name}.{node.name}" if cls else node.name
        #: parameter name -> inferred type (kind or class qualname)
        self.param_types: dict[str, str] = {}
        #: local variable -> inferred type
        self.local_types: dict[str, str] = {}
        #: resolved callees (FunctionInfo), filled by CodeModel
        self.callees: list["FunctionInfo"] = []
        # --- transitive summaries (fixpoint in CodeModel) ---
        #: (description, node) blocking operations performed directly
        self.blocking: list[tuple[str, ast.AST]] = []
        #: why this function can block, directly or via callees (None
        #: when it cannot) — e.g. "os.fsync (via WalWriter.append)"
        self.blocks_via: Optional[str] = None
        #: performs a WAL append / fsync-policy durability call
        self.durable = False
        #: calls *._check_open() directly
        self.guards = False
        self.is_property = any(
            dotted_name(d) in ("property", "cached_property", "functools.cached_property")
            for d in node.decorator_list
        )
        self.is_contextmanager = any(
            dotted_name(d) in ("contextmanager", "contextlib.contextmanager")
            for d in node.decorator_list
        )
        self.is_abstract = any(
            dotted_name(d) in ("abstractmethod", "abc.abstractmethod")
            for d in node.decorator_list
        )

    @property
    def path(self) -> str:
        return self.module.path

    def __repr__(self) -> str:
        return f"FunctionInfo({self.module.name}:{self.qualname})"


class ClassInfo:
    """One class: its methods and the inferred types of its attributes."""

    def __init__(self, module: "ModuleInfo", node: ast.ClassDef) -> None:
        self.module = module
        self.node = node
        self.name = node.name
        self.qualname = f"{module.name}.{node.name}"
        self.bases = [dotted_name(b) for b in node.bases]
        self.methods: dict[str, FunctionInfo] = {}
        #: attribute name -> inferred type (kind or class qualname)
        self.attr_types: dict[str, str] = {}

    def __repr__(self) -> str:
        return f"ClassInfo({self.qualname})"


class ModuleInfo:
    """One parsed source file."""

    def __init__(self, path: str, name: str, tree: ast.Module) -> None:
        self.path = path
        self.name = name
        self.tree = tree
        #: local name -> imported dotted target ("Lock" -> "threading.Lock")
        self.imports: dict[str, str] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}

    def __repr__(self) -> str:
        return f"ModuleInfo({self.name})"


def module_name_for(path: str) -> str:
    """Dotted module name of *path*.

    Everything up to and including the last ``src/`` segment is
    stripped, so both ``src/repro/serve/locks.py`` and
    ``/abs/checkout/src/repro/serve/locks.py`` name ``repro.serve.locks``
    and cross-file imports resolve identically however the tool was
    invoked.
    """
    norm = path.replace(os.sep, "/")
    idx = norm.rfind("/src/")
    if idx >= 0:
        norm = norm[idx + len("/src/"):]
    elif norm.startswith("src/"):
        norm = norm[len("src/"):]
    norm = norm.strip("/")
    if norm.endswith(".py"):
        norm = norm[:-3]
    parts = [p for p in norm.split("/") if p]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


class CodeModel:
    """The whole scanned tree: modules, classes, resolved call graph."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        #: class qualname -> ClassInfo (also keyed by bare class name when
        #: unambiguous, for resolving un-imported annotations)
        self.classes: dict[str, ClassInfo] = {}
        self._ambiguous_names: set[str] = set()
        self.functions: list[FunctionInfo] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, files: list[tuple[str, str]]) -> "CodeModel":
        """Build from ``(display_path, source_text)`` pairs.

        ``display_path`` is what diagnostics render; the dotted module
        name is derived from it (``src/`` prefixes are stripped).
        """
        model = cls()
        for path, text in files:
            name = module_name_for(path)
            try:
                tree = ast.parse(text, filename=path)
            except SyntaxError:
                continue  # not our job; ruff/py compile own syntax
            mod = ModuleInfo(path, name, tree)
            model.modules[name] = mod
            model._collect(mod)
        model._infer_types()
        model._resolve_calls()
        model._summarize()
        return model

    @classmethod
    def build_from_paths(cls, paths: list[str]) -> "CodeModel":
        files: list[tuple[str, str]] = []
        for p in paths:
            if os.path.isfile(p):
                files.append((p, open(p, encoding="utf-8").read()))
                continue
            for dirpath, dirnames, filenames in os.walk(p):
                dirnames[:] = [d for d in dirnames if d != "__pycache__"]
                for fn in sorted(filenames):
                    if fn.endswith(".py"):
                        full = os.path.join(dirpath, fn)
                        files.append((full, open(full, encoding="utf-8").read()))
        return cls.build(files)

    def _collect(self, mod: ModuleInfo) -> None:
        for node in mod.tree.body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    mod.imports[alias.asname or alias.name.split(".")[0]] = (
                        alias.name
                    )
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    mod.imports[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if isinstance(node, ast.FunctionDef):
                    fn = FunctionInfo(mod, node, None)
                    mod.functions[node.name] = fn
                    self.functions.append(fn)
            elif isinstance(node, ast.ClassDef):
                ci = ClassInfo(mod, node)
                mod.classes[node.name] = ci
                self.classes[ci.qualname] = ci
                if ci.name in self.classes and self.classes[ci.name] is not ci:
                    self._ambiguous_names.add(ci.name)
                    del self.classes[ci.name]
                elif ci.name not in self._ambiguous_names:
                    self.classes[ci.name] = ci
                for item in node.body:
                    if isinstance(item, ast.FunctionDef):
                        m = FunctionInfo(mod, item, ci)
                        ci.methods[item.name] = m
                        self.functions.append(m)

    # ------------------------------------------------------------------
    # Type inference
    # ------------------------------------------------------------------
    def _kind_of_callee(self, mod: ModuleInfo, callee: ast.expr) -> Optional[str]:
        """Type produced by calling *callee*: builtin kind or class qualname."""
        name = dotted_name(callee)
        if name is None:
            return None
        head = name.split(".")[0]
        resolved = name
        if head in mod.imports:
            resolved = mod.imports[head] + name[len(head):]
        if resolved in _CONSTRUCTOR_KINDS:
            return _CONSTRUCTOR_KINDS[resolved]
        if name in _CONSTRUCTOR_KINDS:
            return _CONSTRUCTOR_KINDS[name]
        # a known class constructor? the defining module's own classes
        # win over the global bare-name table (which drops ambiguous
        # names when two modules define the same class)
        local = mod.classes.get(name)
        if local is not None:
            return local.qualname
        for candidate in (resolved, name, name.split(".")[-1]):
            ci = self.classes.get(candidate)
            if ci is not None:
                return ci.qualname
        return None

    def _kind_of_annotation(
        self, mod: ModuleInfo, ann: Optional[ast.expr]
    ) -> Optional[str]:
        if ann is None:
            return None
        name = _unwrap_annotation(ann)
        if name is None:
            return None
        head = name.split(".")[0]
        resolved = name
        if head in mod.imports:
            resolved = mod.imports[head] + name[len(head):]
        for candidate in (resolved, name):
            if candidate in _ANNOTATION_KINDS:
                return _ANNOTATION_KINDS[candidate]
        local = mod.classes.get(name)
        if local is not None:
            return local.qualname
        for candidate in (resolved, name, name.split(".")[-1]):
            ci = self.classes.get(candidate)
            if ci is not None:
                return ci.qualname
        return None

    def _infer_types(self) -> None:
        for fn in self.functions:
            mod = fn.module
            args = fn.node.args
            for a in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
                t = self._kind_of_annotation(mod, a.annotation)
                if t:
                    fn.param_types[a.arg] = t
            for node in ast.walk(fn.node):
                target: Optional[ast.expr] = None
                value: Optional[ast.expr] = None
                ann: Optional[ast.expr] = None
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target, value = node.targets[0], node.value
                elif isinstance(node, ast.AnnAssign):
                    target, value, ann = node.target, node.value, node.annotation
                if target is None:
                    continue
                t = self._kind_of_annotation(mod, ann) if ann is not None else None
                if t is None and isinstance(value, ast.Call):
                    t = self._kind_of_callee(mod, value.func)
                if t is None and isinstance(value, ast.Name):
                    # self.sock = sock  (propagate the param annotation)
                    t = fn.param_types.get(value.id) or fn.local_types.get(
                        value.id
                    )
                if t is None and isinstance(value, ast.Attribute):
                    # x = self.attr  (copy the attribute's type)
                    if (
                        isinstance(value.value, ast.Name)
                        and value.value.id == "self"
                        and fn.cls is not None
                    ):
                        t = fn.cls.attr_types.get(value.attr)
                if t is None:
                    continue
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and fn.cls is not None
                ):
                    fn.cls.attr_types.setdefault(target.attr, t)
                elif isinstance(target, ast.Name):
                    fn.local_types.setdefault(target.id, t)

    # ------------------------------------------------------------------
    # Receiver / call resolution
    # ------------------------------------------------------------------
    def type_of(self, fn: FunctionInfo, expr: ast.expr) -> Optional[str]:
        """Inferred type of *expr* inside *fn* (kind or class qualname)."""
        if isinstance(expr, ast.Name):
            if expr.id == "self" and fn.cls is not None:
                return fn.cls.qualname
            return fn.local_types.get(expr.id) or fn.param_types.get(expr.id)
        if isinstance(expr, ast.Attribute):
            base_t = self.type_of(fn, expr.value)
            if base_t is not None:
                ci = self.classes.get(base_t)
                if ci is not None:
                    return ci.attr_types.get(expr.attr)
        if isinstance(expr, ast.Call):
            return self._kind_of_callee(fn.module, expr.func)
        return None

    def resolve_call(
        self, fn: FunctionInfo, call: ast.Call
    ) -> Optional[FunctionInfo]:
        """The FunctionInfo a call lands in, or None when unresolvable."""
        func = call.func
        if isinstance(func, ast.Name):
            name = func.id
            target = fn.module.functions.get(name)
            if target is not None:
                return target
            imported = fn.module.imports.get(name)
            if imported is not None:
                mod_name, _, leaf = imported.rpartition(".")
                mod = self.modules.get(mod_name)
                if mod is not None:
                    return mod.functions.get(leaf)
            return None
        if isinstance(func, ast.Attribute):
            recv_t = self.type_of(fn, func.value)
            if recv_t is not None:
                ci = self.classes.get(recv_t)
                if ci is not None:
                    return ci.methods.get(func.attr)
            # module.function() through an import
            base = dotted_name(func.value)
            if base is not None:
                resolved = fn.module.imports.get(base, base)
                mod = self.modules.get(resolved)
                if mod is not None:
                    return mod.functions.get(func.attr)
        return None

    # ------------------------------------------------------------------
    # Summaries (fixpoint over the call graph)
    # ------------------------------------------------------------------
    def _summarize(self) -> None:
        from repro.devlint.blocking import direct_blocking_ops, is_durability_call

        for fn in self.functions:
            fn.blocking = direct_blocking_ops(self, fn)
            if fn.blocking:
                fn.blocks_via = fn.blocking[0][0]
            for node in ast.walk(fn.node):
                if isinstance(node, ast.Call):
                    if is_durability_call(self, fn, node):
                        fn.durable = True
                    f = node.func
                    if isinstance(f, ast.Attribute) and f.attr == "_check_open":
                        fn.guards = True
        # transitive closure: blocking/durable/guards flow up call edges
        changed = True
        while changed:
            changed = False
            for fn in self.functions:
                for callee in fn.callees:
                    if callee.durable and not fn.durable:
                        fn.durable = True
                        changed = True
                    if callee.guards and not fn.guards:
                        fn.guards = True
                        changed = True
                    if callee.blocks_via is not None and fn.blocks_via is None:
                        root = callee.blocks_via.split(" (via ")[0]
                        fn.blocks_via = f"{root} (via {callee.qualname})"
                        changed = True

    def _resolve_calls(self) -> None:
        for fn in self.functions:
            seen: set[int] = set()
            for node in ast.walk(fn.node):
                if isinstance(node, ast.Call):
                    target = self.resolve_call(fn, node)
                    if target is not None and id(target) not in seen:
                        seen.add(id(target))
                        fn.callees.append(target)

    # ------------------------------------------------------------------
    def iter_functions(self) -> Iterator[FunctionInfo]:
        return iter(self.functions)
