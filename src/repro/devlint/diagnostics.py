"""Diagnostic model for the engine self-analyzer (``graql devcheck``).

PR 3 gave *scripts* stable ``GQL0xx`` codes; this registry does the same
for the *engine's own source*: every invariant the concurrent serving,
durability, network and dist layers rely on gets a stable ``GDL0xx``
code, a ``file:line:col`` span, and a fix-it hint.  Codes are part of
the tool contract (CI and the suppression baseline match on them) and
are never renumbered, only retired (docs/DEVLINT.md).

The class machinery is reused from :mod:`repro.analysis.diagnostics`:
:class:`DevDiagnostic` subclasses :class:`~repro.analysis.diagnostics.Diagnostic`
with this registry and a file-carrying span, keeping render and JSON
shapes identical between ``graql check`` and ``graql devcheck``.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.analysis.diagnostics import ERROR, WARNING, Diagnostic
from repro.graql.tokens import SourceSpan

# ----------------------------------------------------------------------
# Code registry: code -> (severity, title, default fix-it hint or None)
# ----------------------------------------------------------------------

GDL_CODES: dict[str, tuple[str, str, Optional[str]]] = {
    # lock discipline (GDL00x)
    "GDL001": (ERROR, "lock acquired out of canonical order",
               "acquire locks in the documented hierarchy: catalog RWLock "
               "-> admission -> plan cache -> durable store -> metrics "
               "(docs/DEVLINT.md)"),
    "GDL002": (ERROR, "cyclic lock acquisition order",
               "two code paths acquire these locks in opposite orders; "
               "pick one order and restructure the other path"),
    # blocking under an exclusive lock (GDL01x)
    "GDL010": (ERROR, "blocking call while holding an exclusive lock",
               "move the blocking operation outside the guarded region, "
               "or suppress with a reviewed baseline entry if the block "
               "is the serialization point by design"),
    # durability ordering (GDL02x)
    "GDL020": (ERROR, "acknowledgement precedes durability",
               "append to the WAL (and fsync per policy) before sending "
               "or returning the acknowledgement"),
    "GDL021": (ERROR, "replication ack precedes WAL durability",
               "send REPL_ACK only after apply_replicated / the snapshot "
               "install has returned, i.e. the record is durable in the "
               "replica's own WAL; an early ack lets the primary count a "
               "write replicated that a crash can still lose"),
    # crash-safety hygiene (GDL03x)
    "GDL030": (ERROR, "handler can swallow process-crash exceptions",
               "SimulatedCrash and KeyboardInterrupt derive from "
               "BaseException; re-raise after cleanup or narrow the "
               "except clause"),
    "GDL031": (WARNING, "broad handler silently swallows failures",
               "narrow 'except Exception' to the types the guarded code "
               "raises, or use the bound exception so the failure is "
               "observable"),
    "GDL032": (WARNING, "thread is neither daemon nor joined",
               "pass daemon=True or join the thread on shutdown so the "
               "process cannot hang on exit"),
    "GDL033": (WARNING, "fire-and-forget future discards failures",
               "keep the future and consume its result (or exception); "
               "a dropped future swallows worker tracebacks"),
    "GDL034": (ERROR, "public entry point missing the closed-engine guard",
               "call self._check_open() first so a closed engine raises "
               "ClosedError instead of corrupting shut-down state"),
    # baseline hygiene (GDL09x)
    "GDL090": (WARNING, "unused baseline suppression",
               "the suppressed finding no longer occurs; delete the "
               "baseline entry to keep the suppression list reviewed"),
}


class FileSpan(SourceSpan):
    """A :class:`SourceSpan` that also carries the source file path."""

    __slots__ = ("path",)

    def __init__(self, path: str, line: int, column: int) -> None:
        super().__init__(line, column)
        self.path = path

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.column}"


class DevDiagnostic(Diagnostic):
    """One devcheck finding: code, ``file:line:col`` span, symbol, hint.

    ``symbol`` is the qualified name of the enclosing function
    (``Class.method`` or a module-level function name) — the unit the
    suppression baseline matches on.
    """

    __slots__ = ("symbol",)

    REGISTRY = GDL_CODES

    def __init__(
        self,
        code: str,
        message: str,
        span: Optional[FileSpan] = None,
        hint: Optional[str] = None,
        symbol: Optional[str] = None,
    ) -> None:
        super().__init__(code, message, span, hint)
        self.symbol = symbol

    @property
    def file(self) -> Optional[str]:
        return self.span.path if isinstance(self.span, FileSpan) else None

    def to_dict(self) -> dict[str, Any]:
        d = super().to_dict()
        d["file"] = self.file
        d["symbol"] = self.symbol
        return d

    def __repr__(self) -> str:
        return f"DevDiagnostic({self.code}, {self.location}, {self.message!r})"
