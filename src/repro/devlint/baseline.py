"""The reviewed suppression baseline for ``graql devcheck``.

Some findings are *intentional*: ``DurableStore`` fsyncs under its own
mutex because that mutex IS the WAL serialization point.  Rather than
weaken the pass (and miss the same pattern where it is a bug), such
findings are suppressed by an explicit, commented baseline file that is
reviewed like code::

    {
      "version": 1,
      "suppressions": [
        {"code": "GDL010",
         "file": "durability/store.py",
         "symbol": "DurableStore._append",
         "reason": "fsync-before-ack is the durability contract; ..."}
      ]
    }

A suppression matches a finding when the code is equal, the finding's
path *ends with* ``file`` (so baselines survive checkout-relative vs.
absolute invocation), and the symbol is equal.  Entries that match
nothing are themselves reported (GDL090) so the list can only shrink
with the findings it hides.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.devlint.diagnostics import DevDiagnostic

BASELINE_VERSION = 1


class Suppression:
    __slots__ = ("code", "file", "symbol", "reason", "used")

    def __init__(self, code: str, file: str, symbol: str, reason: str) -> None:
        self.code = code
        self.file = file
        self.symbol = symbol
        self.reason = reason
        self.used = False

    def matches(self, diag: DevDiagnostic) -> bool:
        if diag.code != self.code or diag.symbol != self.symbol:
            return False
        path = diag.file or ""
        norm = path.replace("\\", "/")
        return norm == self.file or norm.endswith("/" + self.file)

    def __repr__(self) -> str:
        return f"Suppression({self.code}, {self.file}, {self.symbol})"


class Baseline:
    def __init__(self, suppressions: list[Suppression]) -> None:
        self.suppressions = suppressions

    @classmethod
    def load(cls, path: str) -> "Baseline":
        with open(path, encoding="utf-8") as f:
            data = json.load(f)
        if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"unsupported baseline format in {path}; expected "
                f'{{"version": {BASELINE_VERSION}, "suppressions": [...]}}'
            )
        sups = []
        for i, entry in enumerate(data.get("suppressions", [])):
            missing = [
                k for k in ("code", "file", "symbol", "reason")
                if not entry.get(k)
            ]
            if missing:
                raise ValueError(
                    f"baseline entry {i} in {path} is missing {missing}; "
                    f"every suppression must name its code, location and "
                    f"a review reason"
                )
            sups.append(Suppression(
                entry["code"], entry["file"], entry["symbol"], entry["reason"]
            ))
        return cls(sups)

    def filter(
        self, diagnostics: list[DevDiagnostic]
    ) -> tuple[list[DevDiagnostic], int]:
        """(kept findings + GDL090s for stale entries, suppressed count)."""
        kept: list[DevDiagnostic] = []
        suppressed = 0
        for d in diagnostics:
            match: Optional[Suppression] = None
            for s in self.suppressions:
                if s.matches(d):
                    match = s
                    break
            if match is not None:
                match.used = True
                suppressed += 1
            else:
                kept.append(d)
        for s in self.suppressions:
            if not s.used:
                kept.append(DevDiagnostic(
                    "GDL090",
                    f"baseline entry {s.code} at {s.file}:{s.symbol} "
                    f"suppresses nothing",
                    symbol=s.symbol,
                ))
        return kept, suppressed
