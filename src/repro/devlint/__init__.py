"""Engine self-analysis (``graql devcheck``).

PR 3's analyzer checks *scripts*; this package checks the *engine*.
It parses ``src/repro`` with :mod:`ast` and verifies the invariants the
concurrent serving, durability and network layers rely on — canonical
lock order, no blocking calls under exclusive locks, WAL-before-ack,
crash-exception hygiene, closed-engine guards — reporting stable
``GDL0xx`` codes with ``file:line:col`` spans and fix-it hints.

See docs/DEVLINT.md for the code table, the canonical lock order and
the suppression-baseline workflow.
"""

from repro.devlint.baseline import Baseline, Suppression
from repro.devlint.diagnostics import GDL_CODES, DevDiagnostic, FileSpan
from repro.devlint.model import CodeModel
from repro.devlint.runner import DevlintResult, run_devcheck

__all__ = [
    "Baseline",
    "Suppression",
    "GDL_CODES",
    "DevDiagnostic",
    "FileSpan",
    "CodeModel",
    "DevlintResult",
    "run_devcheck",
]
