"""``run_devcheck``: scan a tree, run every pass, apply the baseline.

The result object mirrors :class:`repro.analysis.analyzer.AnalysisResult`
exactly — same ``render_text`` shape, same JSON envelope, same exit-code
contract (0 clean, 1 warnings under ``--strict``, 2 errors) — so CI
treats ``graql devcheck`` and ``graql check`` identically.
"""

from __future__ import annotations

import json
from typing import Any, Optional

from repro.devlint.baseline import Baseline
from repro.devlint.diagnostics import DevDiagnostic
from repro.devlint.model import CodeModel
from repro.devlint.passes import ALL_PASSES


class DevlintResult:
    """Everything one devcheck run found, plus rendering helpers."""

    __slots__ = ("diagnostics", "files_scanned", "suppressed")

    def __init__(
        self,
        diagnostics: list[DevDiagnostic],
        files_scanned: int,
        suppressed: int = 0,
    ) -> None:
        self.diagnostics = diagnostics
        self.files_scanned = files_scanned
        self.suppressed = suppressed

    @property
    def errors(self) -> list[DevDiagnostic]:
        return [d for d in self.diagnostics if d.is_error]

    @property
    def warnings(self) -> list[DevDiagnostic]:
        return [d for d in self.diagnostics if not d.is_error]

    @property
    def ok(self) -> bool:
        return not self.errors

    def exit_code(self, strict: bool = False) -> int:
        """Same contract as ``graql check``: 0 clean, 1 warnings under
        ``--strict``, 2 errors."""
        if self.errors:
            return 2
        if strict and self.warnings:
            return 1
        return 0

    def render_text(self) -> str:
        lines = [d.render() for d in self.diagnostics]
        ne, nw = len(self.errors), len(self.warnings)
        summary = (
            f"devcheck: {ne} error(s), {nw} warning(s)"
            if self.diagnostics
            else "devcheck: clean"
        )
        summary += (
            f" [{self.files_scanned} files, {self.suppressed} suppressed]"
        )
        lines.append(summary)
        return "\n".join(lines)

    def to_json(self) -> str:
        payload: dict[str, Any] = {
            "source": "devcheck",
            "files_scanned": self.files_scanned,
            "suppressed": self.suppressed,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }
        return json.dumps(payload, indent=2)

    def __repr__(self) -> str:
        return (
            f"DevlintResult(errors={len(self.errors)}, "
            f"warnings={len(self.warnings)}, files={self.files_scanned})"
        )


def _sort_key(d: DevDiagnostic):
    return (
        d.file or "",
        d.span.line if d.span is not None else 1 << 30,
        d.span.column if d.span is not None else 0,
        d.code,
    )


def run_devcheck(
    paths: list[str], baseline: Optional[Baseline] = None
) -> DevlintResult:
    """Run every devcheck pass over the ``.py`` files under *paths*."""
    model = CodeModel.build_from_paths(paths)
    diags: list[DevDiagnostic] = []
    for pass_fn in ALL_PASSES:
        diags.extend(pass_fn(model))
    suppressed = 0
    if baseline is not None:
        diags, suppressed = baseline.filter(diags)
    diags.sort(key=_sort_key)
    return DevlintResult(diags, len(model.modules), suppressed)
