"""Pipelined execution of dependent statements (paper Section III-B1).

    "Pipelined execution of dependent query statements can also be
    considered to reduce the amount of space needed to materialize
    intermediate results."

The dominant GraQL idiom (Figs. 6-7) is a *pair*: a graph select
materializing a path table, immediately consumed by one relational
aggregation.  :func:`fuse_script` detects such pairs (the intermediate
table has exactly one reader and is never referenced again) and
:class:`PipelinedPair` executes them fused: the path enumeration runs in
**chunks** of the first step's candidates, each chunk's rows stream into
a decomposable partial aggregation (the same sum/count/min/max
decomposition the distributed backend uses), and only the per-group
partials survive between chunks.  Peak intermediate materialization drops
from *all paths* to *paths of one chunk* — exactly the space saving the
paper describes — and the final result is bit-identical to sequential
execution (tested).

Pairs the fusion cannot handle (multi-atom patterns, non-decomposable
consumers) transparently fall back to sequential execution.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

import numpy as np

from repro.catalog import Catalog
from repro.errors import ExecutionError
from repro.graph.graphdb import GraphDB
from repro.graph.subgraph import Subgraph
from repro.graql.ast import (
    AggItem,
    AttrItem,
    GraphSelect,
    INTO_TABLE,
    Script,
    Statement,
    TableSelect,
)
from repro.graql.params import substitute_statement
from repro.graql.typecheck import (
    CheckedGraphSelect,
    RAtom,
    RVertexStep,
    check_statement,
)
from repro.obs.options import QueryOptions, resolve_options
from repro.obs.profile import QueryProfile
from repro.query.bindings import BindingExecutor
from repro.query.executor import StatementResult, execute_statement
from repro.query.planner import plan_graph_select
from repro.query.relational import execute_table_select
from repro.query.results import JoinedBindings, NameMap, table_from_bindings
from repro.storage import relops
from repro.storage.relops import AggSpec
from repro.storage.table import Table


class PipelineStats:
    """Space accounting for one fused pair."""

    def __init__(self) -> None:
        self.chunks = 0
        self.total_paths = 0
        self.peak_partial_rows = 0

    def record_chunk(self, rows: int) -> None:
        self.chunks += 1
        self.total_paths += rows
        self.peak_partial_rows = max(self.peak_partial_rows, rows)

    def __repr__(self) -> str:
        return (
            f"PipelineStats(chunks={self.chunks}, paths={self.total_paths}, "
            f"peak={self.peak_partial_rows})"
        )


def find_fusable_pairs(script: Script) -> dict[int, int]:
    """Map graph-select index -> consuming table-select index.

    A pair (i, j) fuses when statement *i* is a graph select
    ``into table T``, statement *j* is the next statement, reads ``T``,
    and no other statement references ``T``.
    """
    pairs: dict[int, int] = {}
    stmts = script.statements
    for i, stmt in enumerate(stmts):
        if not isinstance(stmt, GraphSelect) or stmt.into is None:
            continue
        if stmt.into.kind != INTO_TABLE:
            continue
        name = stmt.into.name
        if i + 1 >= len(stmts):
            continue
        nxt = stmts[i + 1]
        if not isinstance(nxt, TableSelect) or nxt.source != name:
            continue
        # no later statement may reference the intermediate
        used_later = any(
            isinstance(s, TableSelect) and s.source == name
            for s in stmts[i + 2 :]
        )
        if not used_later:
            pairs[i] = i + 1
    return pairs


def _decomposable(stmt: TableSelect) -> bool:
    """True if the consumer is where + group-by + decomposable aggregates
    (+ order/top/distinct on the aggregated output)."""
    has_agg = any(isinstance(i, AggItem) for i in stmt.items)
    if not has_agg and not stmt.group_by:
        return False
    for item in stmt.items:
        if isinstance(item, AggItem):
            if item.func not in ("count", "sum", "min", "max", "avg"):
                return False
        elif isinstance(item, AttrItem):
            if item.ref.name not in stmt.group_by:
                return False
        else:
            return False
    return True


class PipelinedPair:
    """Fused execution of (graph select into T, table select from T)."""

    def __init__(
        self,
        db: GraphDB,
        catalog: Catalog,
        graph_stmt: GraphSelect,
        table_stmt: TableSelect,
        num_chunks: int = 8,
    ) -> None:
        self.db = db
        self.catalog = catalog
        self.graph_stmt = graph_stmt
        self.table_stmt = table_stmt
        self.num_chunks = max(num_chunks, 1)
        self.stats = PipelineStats()

    # ------------------------------------------------------------------
    def supported(self, checked: CheckedGraphSelect) -> bool:
        if len(checked.pattern.atoms()) != 1:
            return False
        if checked.pattern.has_regex:
            return False
        return _decomposable(self.table_stmt)

    def run(self) -> tuple[StatementResult, StatementResult]:
        """Execute the fused pair; returns both statements' results.

        The intermediate table is still *registered* (script semantics:
        later sessions may inspect it) but is rebuilt from the streamed
        chunks only at the end — during execution, peak materialization
        is one chunk.
        """
        checked = check_statement(self.graph_stmt, self.catalog)
        assert isinstance(checked, CheckedGraphSelect)
        if not self.supported(checked):
            raise ExecutionError("pair is not fusable")
        plan = plan_graph_select(self.checked_for_plan(checked), self.catalog)
        atom = checked.pattern.atoms()[0]
        direction = plan.plan_for(atom).direction
        name_map = NameMap()
        name_map.add_atom(0, atom)
        chunks = self._chunk_steps(atom, direction)
        if not chunks:
            # entry step has no candidates: the pair is trivially empty;
            # sequential execution handles schema and registration exactly
            first = execute_statement(self.db, self.catalog, self.graph_stmt)
            second = execute_statement(self.db, self.catalog, self.table_stmt)
            return first, second
        partial_specs, merges = _decompose_consumer(self.table_stmt)
        partials: list[Table] = []
        chunk_tables: list[Table] = []
        bex = BindingExecutor(self.db, self.catalog)
        for chunk_atom in chunks:
            res = bex.run_atom(chunk_atom, direction)
            jb = JoinedBindings.from_result(0, res, chunk_atom)
            part = table_from_bindings(
                self.graph_stmt, jb, name_map, self.graph_stmt.into.name, self.db
            )
            self.stats.record_chunk(part.num_rows)
            chunk_tables.append(part)
            working = relops.filter_table(part, self.table_stmt.where)
            if working.num_rows:
                partials.append(
                    relops.group_by_aggregate(
                        working, self.table_stmt.group_by, partial_specs
                    )
                )
        final = _merge_partials(
            partials, self.table_stmt, merges, self.db, chunk_tables
        )
        # register the intermediate (script semantics) and the result
        intermediate = (
            relops.union_all(chunk_tables, self.graph_stmt.into.name)
            if chunk_tables
            else None
        )
        if intermediate is not None:
            self.db.register_result_table(self.graph_stmt.into.name, intermediate)
            self.catalog.register_result_table(
                self.graph_stmt.into.name, intermediate
            )
        if self.table_stmt.into is not None:
            self.db.register_result_table(self.table_stmt.into.name, final)
            self.catalog.register_result_table(self.table_stmt.into.name, final)
        first = StatementResult(
            "table",
            table=intermediate,
            count=intermediate.num_rows if intermediate is not None else 0,
        )
        second = StatementResult("table", table=final, count=final.num_rows)
        return first, second

    def checked_for_plan(self, checked: CheckedGraphSelect) -> CheckedGraphSelect:
        return checked

    # ------------------------------------------------------------------
    def _chunk_steps(self, atom: RAtom, direction: str) -> list[RAtom]:
        """Split the sweep-entry step's candidates into chunk subatoms.

        Chunking restricts the *first step in sweep order* via temporary
        seed subgraphs, so each chunk enumerates a disjoint slice of
        paths whose union is the full result.
        """
        entry_idx = 0 if direction == "forward" else len(atom.steps) - 1
        entry: RVertexStep = atom.steps[entry_idx]
        # candidate ids per type of the entry step
        per_type: dict[str, np.ndarray] = {}
        for t in entry.types:
            vt = self.db.vertex_type(t)
            cands = vt.select(entry.cond) if not entry.cross_refs else np.arange(vt.num_vertices)
            if entry.seed is not None:
                cands = np.intersect1d(
                    cands, self.db.subgraph(entry.seed).vertex_ids(t)
                )
            per_type[t] = cands
        total = sum(len(v) for v in per_type.values())
        n_chunks = min(self.num_chunks, max(total, 1))
        atoms = []
        for c in range(n_chunks):
            seed_name = f"__pipeline_chunk_{id(self)}_{c}"
            sg = Subgraph(
                seed_name,
                {t: v[c::n_chunks] for t, v in per_type.items() if len(v[c::n_chunks])},
                {},
            )
            if sg.num_vertices == 0:
                continue
            self.db.register_subgraph(sg)
            self.catalog.register_subgraph(
                seed_name, {k: len(v) for k, v in sg.vertices.items()}
            )
            new_entry = RVertexStep(
                list(entry.types),
                entry.cond,
                entry.label,
                entry.label_ref,
                seed_name,
                entry.is_variant,
                list(entry.cross_refs),
                entry.names,
            )
            steps = list(atom.steps)
            steps[entry_idx] = new_entry
            atoms.append(RAtom(steps))
        return atoms


def _decompose_consumer(stmt: TableSelect):
    aggs = []
    for item in stmt.items:
        if isinstance(item, AggItem):
            alias = item.alias or (
                f"{item.func}_{item.arg}" if item.arg else item.func
            )
            aggs.append(AggSpec(item.func, item.arg, alias))
    from repro.dist.dist_relops import _decompose

    return _decompose(aggs)


def _merge_partials(partials, stmt: TableSelect, merges, db, chunk_tables) -> Table:
    from repro.dtypes import FLOAT
    from repro.storage.column import Column
    from repro.storage.schema import ColumnDef

    if not partials:
        # empty input: run the consumer on an empty union for exact schema
        if chunk_tables:
            empty = chunk_tables[0].head(0)
            empty = Table(stmt.source, empty.schema, empty.columns)
            tmp_db_table = empty
            return _consumer_on(db, stmt, tmp_db_table)
        raise ExecutionError("pipeline produced no chunks")
    combined = relops.union_all(partials)
    merge_specs = []
    for palias, op, final in merges:
        if op == "avg":
            merge_specs.append(AggSpec("sum", palias, f"__ms_{final}"))
            merge_specs.append(
                AggSpec("sum", palias.replace("__ps_", "__pc_"), f"__mc_{final}")
            )
        else:
            merge_specs.append(AggSpec(op, palias, final))
    out = relops.group_by_aggregate(combined, stmt.group_by, merge_specs)
    for palias, op, final in merges:
        if op == "avg":
            sums = out.column(f"__ms_{final}").data.astype(np.float64)
            counts = out.column(f"__mc_{final}").data.astype(np.float64)
            with np.errstate(invalid="ignore", divide="ignore"):
                avg = np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)
            out = out.with_column(ColumnDef(final, FLOAT), Column(FLOAT, avg))
    # project in select-list order, then order/top/distinct
    names = []
    for item in stmt.items:
        if isinstance(item, AggItem):
            names.append(
                item.alias or (f"{item.func}_{item.arg}" if item.arg else item.func)
            )
        else:
            names.append(item.ref.name)
    out = out.project(names)
    renames = {
        i.ref.name: i.alias
        for i in stmt.items
        if isinstance(i, AttrItem) and i.alias
    }
    if renames:
        out = out.rename_columns(renames)
    if stmt.distinct:
        out = relops.distinct(out)
    if stmt.order_by:
        out = relops.order_by(out, [(k.column, k.ascending) for k in stmt.order_by])
    if stmt.top is not None:
        out = relops.top_n(out, stmt.top)
    name = stmt.into.name if stmt.into is not None else "result"
    return Table(name, out.schema, out.columns)


def _consumer_on(db, stmt: TableSelect, table: Table) -> Table:
    """Run the consumer statement against an in-memory table."""
    saved = db.tables.get(stmt.source)
    db.tables[stmt.source] = table
    try:
        return execute_table_select(db, stmt)
    finally:
        if saved is not None:
            db.tables[stmt.source] = saved
        else:
            db.tables.pop(stmt.source, None)


def run_pipelined(
    db: GraphDB,
    catalog: Catalog,
    script: Script,
    params: Optional[Mapping[str, Any]] = None,
    num_chunks: int = 8,
    options: Optional[QueryOptions] = None,
) -> tuple[list[StatementResult], list[PipelineStats]]:
    """Execute a script, fusing every eligible pair (III-B1 pipelining).

    Returns results in statement order plus the per-pair space stats.
    Ineligible statements (and pairs whose fusion preconditions fail at
    runtime) execute sequentially with identical semantics.  Fused
    statements carry a :class:`~repro.obs.QueryProfile` whose
    ``pipeline`` block holds the pair's chunk/space accounting.
    """
    opts = resolve_options(options)
    if params:
        script = Script(
            [substitute_statement(s, params) for s in script.statements]
        )
    pairs = find_fusable_pairs(script)
    results: list[Optional[StatementResult]] = [None] * len(script.statements)
    all_stats: list[PipelineStats] = []
    i = 0
    while i < len(script.statements):
        if i in pairs:
            graph_stmt = script.statements[i]
            table_stmt = script.statements[pairs[i]]
            pair = PipelinedPair(db, catalog, graph_stmt, table_stmt, num_chunks)
            checked = check_statement(graph_stmt, catalog)
            if isinstance(checked, CheckedGraphSelect) and pair.supported(checked):
                first, second = pair.run()
                if opts.profile:
                    for r in (first, second):
                        if r.profile is None:
                            r.profile = QueryProfile(kind=r.kind)
                            r.profile.rows_out = r.count
                        r.profile.pipeline = {
                            "chunks": pair.stats.chunks,
                            "total_paths": pair.stats.total_paths,
                            "peak_partial_rows": pair.stats.peak_partial_rows,
                        }
                results[i] = first
                results[pairs[i]] = second
                all_stats.append(pair.stats)
                i = pairs[i] + 1
                continue
        results[i] = execute_statement(
            db, catalog, script.statements[i], options=opts
        )
        i += 1
    return [r for r in results if r is not None], all_stats
