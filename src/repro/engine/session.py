"""The in-process client API.

:class:`Database` is the public entry point of this library::

    from repro import Database

    db = Database()
    db.execute(open("schema.graql").read())
    db.execute("ingest table Products products.csv")
    result = db.query(
        "select y.id from graph "
        "ProductVtx (id = %Product1%) --feature--> FeatureVtx "
        "<--feature-- def y: ProductVtx into table T1",
        params={"Product1": "p42"},
    )

It wires together the full GEMS pipeline: parse -> parameter substitution
-> static analysis against the catalog -> plan -> execute, and keeps the
catalog statistics fresh across DDL and ingest.

Since the serving-layer redesign (docs/API.md), a ``Database`` is a thin
wrapper over one in-process :class:`~repro.serve.Connection` onto its own
:class:`~repro.engine.server.Server`: every ``execute``/``query`` passes
through the shared serving engine (admission control, reader-writer
catalog lock, plan cache), so a ``Database`` is safe to share across
threads — concurrent selects run in parallel, DDL/ingest serialize.
``db.connect()`` hands out further connections (and cursors, and
prepared statements) onto the same engine.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional, Sequence

from repro.errors import ExecutionError
from repro.graql.parser import parse_script
from repro.obs.options import QueryOptions, reject_legacy_kwargs
from repro.obs.profile import record_profile_metrics
from repro.graph.subgraph import Subgraph
from repro.query.executor import StatementKind, StatementResult
from repro.storage.table import Table


class Database:
    """An in-memory attributed-graph database speaking GraQL.

    Return-shape contract (the two entry points differ on purpose):

    * :meth:`execute` returns ``list[StatementResult]`` — one result per
      statement in the script, in order, covering every statement kind
      (DDL, ingest, table and subgraph selects).  Each result carries a
      :class:`~repro.obs.QueryProfile` under ``.profile``.
    * :meth:`query` returns a bare :class:`~repro.storage.table.Table` —
      the *last* table result in the script — and raises
      :class:`~repro.errors.ExecutionError` when the script produced
      none.  :meth:`query_subgraph` is the subgraph analogue.

    Execution is tuned through :class:`~repro.obs.QueryOptions`::

        db.execute(q, options=QueryOptions(direction="backward", trace=True))

    and every statement folds its profile into ``db.metrics`` (a
    :class:`~repro.obs.MetricsRegistry`); ``db.render_metrics()`` emits
    the Prometheus text exposition.

    The removed ``force_direction``/``force_strategy`` kwargs raise
    ``TypeError`` with a pointer to ``QueryOptions`` (docs/API.md).
    """

    def __init__(
        self,
        *,
        serving_opts: Optional[Mapping[str, Any]] = None,
        path: Optional[str] = None,
        durability: Optional[Mapping[str, Any]] = None,
    ) -> None:
        from repro.engine.server import Server, User
        from repro.serve.connection import connect

        self._closed = False
        self._store = None
        backend = None
        if path is not None:
            from repro.durability import DurableStore

            dura = dict(durability or {})
            self._store = DurableStore.open(path, **dura)
            backend = self._store.db

        self._server = Server(backend=backend, serving_opts=serving_opts)
        self.db = self._server.backend
        self.catalog = self._server.catalog
        #: process-wide counters/gauges/histograms for this database
        self.metrics = self._server.metrics
        #: the one in-process connection execute/query run through
        self._conn = connect(self._server, "admin", transport="local")

        if self._store is not None:
            # arm the journal only now: recovery replays are not re-logged
            for name, role in self._store.users:
                if name not in self._server.users:
                    self._server.users[name] = User(name, role)
            # plan-cache keys embed the epoch; keep it monotonic across
            # restarts so a stale external cache could never alias
            self.catalog.epoch = max(self.catalog.epoch, self._store.last_epoch + 1)
            self._store.metrics = self.metrics
            if self._store._writer is not None:
                self._store._writer.metrics = self.metrics
            self._store.epoch_provider = lambda: self.catalog.epoch
            self._server.durability = self._store
            self.db.journal = self._store

    # ------------------------------------------------------------------
    # Durability (docs/DURABILITY.md)
    # ------------------------------------------------------------------
    @classmethod
    def open(cls, path: str, **kwargs: Any) -> "Database":
        """Open (creating if needed) a durable database at *path*.

        Opening *is* recovery: the newest valid checkpoint is restored,
        the WAL tail replayed (stopping cleanly before the first torn
        or checksum-failing record), and every subsequent mutation —
        DDL, ingest, ``into`` results, account changes — is appended to
        the WAL before the statement is acknowledged.  Keyword
        arguments besides ``serving_opts`` go to
        :class:`~repro.durability.DurableStore` (``fsync``,
        ``batch_records``, ``checkpoint_every``, ``faults``,
        ``tracer``).  What happened is in :attr:`recovery`.
        """
        serving_opts = kwargs.pop("serving_opts", None)
        return cls(serving_opts=serving_opts, path=path, durability=kwargs)

    @classmethod
    def recover(cls, path: str, **kwargs: Any) -> "Database":
        """Alias of :meth:`open` for supervisor restart flows — reads as
        intent ("recover whatever is at this path") at call sites."""
        return cls.open(path, **kwargs)

    @property
    def store(self):
        """The :class:`~repro.durability.DurableStore` backing this
        database, or None for a purely in-memory one."""
        return self._store

    @property
    def recovery(self):
        """The :class:`~repro.durability.RecoveryReport` from open time
        (None for in-memory databases)."""
        return self._store.report if self._store is not None else None

    def checkpoint(self) -> Optional[str]:
        """Snapshot the current state and truncate the WAL (under the
        write lock, so the snapshot is a statement boundary).  Returns
        the snapshot path, or None for an in-memory database."""
        if self._store is None:
            return None
        return self._server.serving.run_work("admin", True, self._store.checkpoint)

    def close(self) -> None:
        """Shut down: drain the serving worker pool, flush and close the
        WAL.  Idempotent.  Afterwards every submission raises
        :class:`~repro.errors.ClosedError`."""
        if self._closed:
            return
        self._closed = True
        self._server.serving.close()
        if self._store is not None:
            self._store.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Connections
    # ------------------------------------------------------------------
    @property
    def server(self):
        """The in-process :class:`~repro.engine.server.Server` backing
        this database (shared catalog, metrics and serving engine)."""
        return self._server

    def connect(self, user: str = "admin", *, transport: str = "local"):
        """A new :class:`~repro.serve.Connection` onto this database's
        server.  ``transport="ir"`` runs the full front-end IR pipeline
        per submission; the default ``"local"`` path skips the IR
        round-trip."""
        from repro.serve.connection import connect

        return connect(self._server, user, transport=transport)

    def prepare(self, graql: str):
        """Parse/typecheck/IR-encode once; bind parameters per execution
        (:class:`~repro.serve.PreparedStatement`)."""
        return self._conn.prepare(graql)

    def cursor(self, batch_size: Optional[int] = None):
        """A streaming :class:`~repro.serve.Cursor` on the in-process
        connection (default batch size:
        :data:`~repro.serve.DEFAULT_BATCH_ROWS`)."""
        from repro.serve.connection import DEFAULT_BATCH_ROWS

        return self._conn.cursor(batch_size=batch_size or DEFAULT_BATCH_ROWS)

    # ------------------------------------------------------------------
    # GraQL execution
    # ------------------------------------------------------------------
    def execute(
        self,
        graql: str,
        params: Optional[Mapping[str, Any]] = None,
        options: Optional[QueryOptions] = None,
        **legacy: Any,
    ) -> list[StatementResult]:
        """Execute a GraQL script (one or more statements), in order.

        ``options`` is the typed execution API (docs/OBSERVABILITY.md).
        """
        reject_legacy_kwargs(legacy, "Database.execute")
        return self._conn.execute(graql, params, options)

    def query(
        self,
        graql: str,
        params: Optional[Mapping[str, Any]] = None,
        options: Optional[QueryOptions] = None,
        **legacy: Any,
    ) -> Table:
        """Execute a script and return the last statement's table result.

        Unlike :meth:`execute` (which returns every statement's
        :class:`StatementResult`), this unwraps straight to a
        :class:`Table` and raises ``ExecutionError`` if the script
        produced no table.
        """
        reject_legacy_kwargs(legacy, "Database.query")
        results = self.execute(graql, params, options)
        for r in reversed(results):
            if r.kind == StatementKind.TABLE and r.table is not None:
                return r.table
        raise ExecutionError("script produced no table result")

    def query_subgraph(
        self,
        graql: str,
        params: Optional[Mapping[str, Any]] = None,
        options: Optional[QueryOptions] = None,
        **legacy: Any,
    ) -> Subgraph:
        """Execute a script and return the last subgraph result."""
        reject_legacy_kwargs(legacy, "Database.query_subgraph")
        results = self.execute(graql, params, options)
        for r in reversed(results):
            if r.kind == StatementKind.SUBGRAPH and r.subgraph is not None:
                return r.subgraph
        raise ExecutionError("script produced no subgraph result")

    def execute_file(
        self,
        path: str,
        params: Optional[Mapping[str, Any]] = None,
        options: Optional[QueryOptions] = None,
    ) -> list[StatementResult]:
        """Execute a GraQL script file."""
        with open(path, encoding="utf-8") as fh:
            return self.execute(fh.read(), params, options)

    # ------------------------------------------------------------------
    # Direct data access (bypassing CSV files)
    # ------------------------------------------------------------------
    def ingest_rows(self, table: str, rows: Sequence[Sequence[Any]]) -> int:
        """Append stored-form rows and rebuild dependent views (atomic;
        serializes with concurrent statements via the write lock)."""

        def work() -> int:
            n = self.db.ingest_rows(table, rows)
            self.catalog.refresh(self.db)
            return n

        return self._server.serving.run_work("admin", True, work)

    def ingest_text(self, table: str, csv_text: str) -> int:
        """Ingest CSV text (same semantics as ``ingest table``)."""

        def work() -> int:
            n = self.db.ingest_text(table, csv_text)
            self.catalog.refresh(self.db)
            return n

        return self._server.serving.run_work("admin", True, work)

    def table(self, name: str) -> Table:
        return self.db.table(name)

    def subgraph(self, name: str) -> Subgraph:
        return self.db.subgraph(name)

    def subgraph_tables(self, name: str, register: bool = False) -> dict[str, Table]:
        """Render a named subgraph back into per-type tables (the paper's
        table/graph duality).  With ``register=True`` the tables become
        queryable result tables named ``{subgraph}_{type}``."""
        from repro.query.duality import register_subgraph_tables, subgraph_tables

        sg = self.db.subgraph(name)
        if register:
            register_subgraph_tables(self.db, self.catalog, sg)
        return subgraph_tables(self.db, sg)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def analyze(
        self,
        graql: str,
        params: Optional[Mapping[str, Any]] = None,
        *,
        force_direction: Optional[str] = None,
        force_strategy: Optional[str] = None,
    ):
        """Statically analyze a script without executing anything.

        Runs the multi-pass analyzer (collect-all typechecking, lint
        passes, IR verification) against the current catalog and returns
        an :class:`~repro.analysis.AnalysisResult` — every defect in one
        run, each with a stable ``GQL``/``GQW`` code and ``line:col``.

        Unlike the execution entry points (where they were removed), the
        ``force_*`` kwargs are still *accepted* here and their use
        reported as ``GQW140`` — this is the lint surface for finding
        call sites that would now raise ``TypeError`` at runtime.
        """
        from repro.analysis import Analyzer

        return Analyzer(self.catalog).analyze(
            graql,
            params,
            deprecated_kwargs={
                "force_direction": force_direction,
                "force_strategy": force_strategy,
            },
        )

    def explain(
        self,
        graql: str,
        params: Optional[Mapping[str, Any]] = None,
        mode: str = "plan",
        options: Optional[QueryOptions] = None,
    ) -> "ExplainReport":
        """The plan the engine would execute, as a structured report.

        Returns an :class:`~repro.query.explain.ExplainReport` — a
        frozen tree of plan nodes.  ``str(report)`` /
        ``report.to_text()`` is the classic indented text;
        ``report.to_json()`` the machine-readable schema; ``in`` checks
        search the text.

        ``mode="plan"`` (default) is static: strategy choice, per-atom
        sweep directions with both directions' cost estimates, the
        anchor access path (``access: index-seek(I) est=...``), per-step
        cardinalities/selectivities, relational operator pipelines, and
        the script's dependence schedule.  ``mode="analyze"`` *executes*
        the script and attaches each statement's measured
        :class:`~repro.obs.QueryProfile` (stage timings, estimated vs.
        actual cardinalities, index hits, dist counters) to the report.
        ``options.explain`` set to ``"analyze"`` selects the same thing.
        A statement answered from the plan cache shows a ``cache: hit``
        line in its profile block.
        """
        from repro.query.explain import explain_analyze, explain_report

        if mode == "analyze" or (options is not None and options.wants_analyze):
            return explain_analyze(self, graql, params, options)
        hints = options.hints if options is not None else None
        return explain_report(graql, self.catalog, params, hints)

    def schema(self) -> "SchemaReport":
        """Typed snapshot of the catalog: tables, vertex/edge types,
        secondary indexes (with statistics freshness), subgraphs.

        Returns a frozen :class:`~repro.engine.introspect.SchemaReport`;
        ``str(report)`` renders the ``\\di``-style listing, and
        ``report.to_json()`` the machine form.
        """
        from repro.engine.introspect import schema_report

        return schema_report(self.catalog)

    def render_metrics(self) -> str:
        """Prometheus text exposition of everything this database counted."""
        return self.metrics.render_prometheus()

    def execute_pipelined(
        self,
        graql: str,
        params: Optional[Mapping[str, Any]] = None,
        num_chunks: int = 8,
        options: Optional[QueryOptions] = None,
    ):
        """Execute with Section III-B1 pipelining: dependent
        (graph-select -> aggregation) pairs run fused in chunks, bounding
        intermediate materialization.  Returns (results, pipeline stats).
        """
        from repro.engine.pipeline import run_pipelined

        def work():
            return run_pipelined(
                self.db, self.catalog, parse_script(graql), params, num_chunks, options
            )

        # pipelined scripts register result tables: treat as a writer
        results, stats = self._server.serving.run_work("admin", True, work)
        for r in results:
            if r.profile is not None:
                record_profile_metrics(self.metrics, r.profile)
        return results, stats

    def vertex_count(self, type_name: str) -> int:
        return self.db.vertex_type(type_name).num_vertices

    def edge_count(self, type_name: str) -> int:
        return self.db.edge_type(type_name).num_edges

    def __repr__(self) -> str:
        return f"Database({self.db!r})"
