"""The in-process client API.

:class:`Database` is the public entry point of this library::

    from repro import Database

    db = Database()
    db.execute(open("schema.graql").read())
    db.execute("ingest table Products products.csv")
    result = db.query(
        "select y.id from graph "
        "ProductVtx (id = %Product1%) --feature--> FeatureVtx "
        "<--feature-- def y: ProductVtx into table T1",
        params={"Product1": "p42"},
    )

It wires together the full GEMS pipeline: parse -> parameter substitution
-> static analysis against the catalog -> (binary IR) -> plan -> execute,
and keeps the catalog statistics fresh across DDL and ingest.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional, Sequence

from repro.catalog import Catalog
from repro.errors import ExecutionError
from repro.graph.graphdb import GraphDB
from repro.graph.subgraph import Subgraph
from repro.graql.parser import parse_script
from repro.query.executor import StatementResult, execute_statement
from repro.storage.table import Table


class Database:
    """An in-memory attributed-graph database speaking GraQL."""

    def __init__(self) -> None:
        self.db = GraphDB()
        self.catalog = Catalog()

    # ------------------------------------------------------------------
    # GraQL execution
    # ------------------------------------------------------------------
    def execute(
        self,
        graql: str,
        params: Optional[Mapping[str, Any]] = None,
        force_direction: Optional[str] = None,
        force_strategy: Optional[str] = None,
    ) -> list[StatementResult]:
        """Execute a GraQL script (one or more statements), in order."""
        script = parse_script(graql)
        return [
            execute_statement(
                self.db,
                self.catalog,
                stmt,
                params,
                force_direction=force_direction,
                force_strategy=force_strategy,
            )
            for stmt in script.statements
        ]

    def query(
        self, graql: str, params: Optional[Mapping[str, Any]] = None
    ) -> Table:
        """Execute a script and return the last statement's table result."""
        results = self.execute(graql, params)
        for r in reversed(results):
            if r.kind == "table" and r.table is not None:
                return r.table
        raise ExecutionError("script produced no table result")

    def query_subgraph(
        self, graql: str, params: Optional[Mapping[str, Any]] = None
    ) -> Subgraph:
        """Execute a script and return the last subgraph result."""
        results = self.execute(graql, params)
        for r in reversed(results):
            if r.kind == "subgraph" and r.subgraph is not None:
                return r.subgraph
        raise ExecutionError("script produced no subgraph result")

    def execute_file(
        self, path: str, params: Optional[Mapping[str, Any]] = None
    ) -> list[StatementResult]:
        """Execute a GraQL script file."""
        with open(path, encoding="utf-8") as fh:
            return self.execute(fh.read(), params)

    # ------------------------------------------------------------------
    # Direct data access (bypassing CSV files)
    # ------------------------------------------------------------------
    def ingest_rows(self, table: str, rows: Sequence[Sequence[Any]]) -> int:
        """Append stored-form rows and rebuild dependent views (atomic)."""
        n = self.db.ingest_rows(table, rows)
        self.catalog.refresh(self.db)
        return n

    def ingest_text(self, table: str, csv_text: str) -> int:
        """Ingest CSV text (same semantics as ``ingest table``)."""
        n = self.db.ingest_text(table, csv_text)
        self.catalog.refresh(self.db)
        return n

    def table(self, name: str) -> Table:
        return self.db.table(name)

    def subgraph(self, name: str) -> Subgraph:
        return self.db.subgraph(name)

    def subgraph_tables(self, name: str, register: bool = False) -> dict[str, Table]:
        """Render a named subgraph back into per-type tables (the paper's
        table/graph duality).  With ``register=True`` the tables become
        queryable result tables named ``{subgraph}_{type}``."""
        from repro.query.duality import register_subgraph_tables, subgraph_tables

        sg = self.db.subgraph(name)
        if register:
            register_subgraph_tables(self.db, self.catalog, sg)
        return subgraph_tables(self.db, sg)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def explain(
        self, graql: str, params: Optional[Mapping[str, Any]] = None
    ) -> str:
        """The plan the engine would execute, as indented text.

        Shows strategy choice, per-atom sweep directions with cost
        estimates, per-step cardinalities/selectivities, relational
        operator pipelines, and the script's dependence schedule.
        """
        from repro.query.explain import explain_script

        return explain_script(graql, self.catalog, params)

    def execute_pipelined(
        self,
        graql: str,
        params: Optional[Mapping[str, Any]] = None,
        num_chunks: int = 8,
    ):
        """Execute with Section III-B1 pipelining: dependent
        (graph-select -> aggregation) pairs run fused in chunks, bounding
        intermediate materialization.  Returns (results, pipeline stats).
        """
        from repro.engine.pipeline import run_pipelined

        return run_pipelined(
            self.db, self.catalog, parse_script(graql), params, num_chunks
        )

    def vertex_count(self, type_name: str) -> int:
        return self.db.vertex_type(type_name).num_vertices

    def edge_count(self, type_name: str) -> int:
        return self.db.edge_type(type_name).num_edges

    def __repr__(self) -> str:
        return f"Database({self.db!r})"
