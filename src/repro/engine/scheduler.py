"""Multi-statement scheduling & planning (paper Section III-B1).

    "Given a multistatement GraQL script Omega = q1, q2, ..., qn, and the
    explicit representation of outputs and inputs for each query via the
    use of the 'into subgraph' and 'into table' expressions, we can build
    a multi-statement dependence representation.  This representation
    enables the query planner to determine whether two separate query
    statements qi and qj can be executed in parallel ... or need to be
    executed in sequence."

Dependencies are derived from named objects:

* a statement *reads* the tables it selects from, the vertex/edge types
  its pattern uses (plus, transitively, their source tables), and the
  subgraphs that seed its steps;
* a statement *writes* what it creates: DDL objects, ingested tables
  (including a pseudo-object per dependent view, since ingest rebuilds
  them atomically), and ``into table`` / ``into subgraph`` results.

Statement *i* depends on the latest earlier statement whose writes
intersect its reads (RAW), plus write-write ordering on the same object.
The schedule is the DAG's topological wave decomposition; ``run_parallel``
executes each wave with a thread pool (NumPy kernels release the GIL).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Any, Mapping, Optional

from repro.catalog import Catalog
from repro.graph.graphdb import GraphDB
from repro.graql.ast import (
    CreateEdge,
    CreateIndex,
    CreateTable,
    CreateVertex,
    DropIndex,
    GraphSelect,
    Ingest,
    PathAtom,
    RegexGroup,
    Script,
    Statement,
    TableSelect,
    VertexStep,
)
from repro.query.executor import StatementResult, execute_statement
from repro.storage.expr import col_refs


def _pattern_vertex_names(stmt: GraphSelect) -> tuple[set[str], set[str], set[str]]:
    """(vertex/edge type names referenced, label names, seed subgraphs)."""
    names: set[str] = set()
    labels: set[str] = set()
    seeds: set[str] = set()

    def walk(node):
        if isinstance(node, PathAtom):
            for s in node.steps:
                if isinstance(s, VertexStep):
                    if s.label is not None:
                        labels.add(s.label.name)
                    if s.name is not None:
                        names.add(s.name)
                    if s.seed is not None:
                        seeds.add(s.seed)
                elif isinstance(s, RegexGroup):
                    for e, v in s.pairs:
                        if e.name is not None:
                            names.add(e.name)
                        if v.name is not None:
                            names.add(v.name)
                else:
                    if s.name is not None:
                        names.add(s.name)
        else:
            walk(node.left)
            walk(node.right)

    walk(stmt.pattern)
    return names - labels, labels, seeds


class _Effects:
    """Read/write object sets of one statement."""

    def __init__(self) -> None:
        self.reads: set[tuple[str, str]] = set()
        self.writes: set[tuple[str, str]] = set()


def _analyze(
    script: Script, catalog: Optional[Catalog]
) -> list[_Effects]:
    # view -> source tables, from both the catalog and in-script DDL
    view_tables: dict[str, set[str]] = {}
    table_views: dict[str, set[str]] = {}
    if catalog is not None:
        for vm in catalog.vertices.values():
            view_tables.setdefault(vm.name, set()).add(vm.table)
        for em in catalog.edges.values():
            src = catalog.vertices.get(em.source_type)
            tgt = catalog.vertices.get(em.target_type)
            deps = set()
            if src:
                deps.add(src.table)
            if tgt:
                deps.add(tgt.table)
            view_tables.setdefault(em.name, set()).update(deps)
    for stmt in script.statements:
        if isinstance(stmt, CreateVertex):
            view_tables.setdefault(stmt.name, set()).add(stmt.table)
        elif isinstance(stmt, CreateEdge):
            deps = set(stmt.from_tables)
            if stmt.where is not None:
                deps.update(
                    r.qualifier
                    for r in col_refs(stmt.where)
                    if r.qualifier is not None
                )
            for ep in (stmt.source.type_name, stmt.target.type_name):
                deps.update(view_tables.get(ep, set()))
            view_tables.setdefault(stmt.name, set()).update(deps)
    for view, tables in view_tables.items():
        for t in tables:
            table_views.setdefault(t, set()).add(view)

    out: list[_Effects] = []
    for stmt in script.statements:
        eff = _Effects()
        if isinstance(stmt, CreateTable):
            eff.writes.add(("table", stmt.name))
        elif isinstance(stmt, CreateVertex):
            eff.reads.add(("table", stmt.table))
            eff.writes.add(("view", stmt.name))
        elif isinstance(stmt, CreateEdge):
            eff.reads.add(("view", stmt.source.type_name))
            eff.reads.add(("view", stmt.target.type_name))
            for t in view_tables.get(stmt.name, set()):
                eff.reads.add(("table", t))
            eff.writes.add(("view", stmt.name))
        elif isinstance(stmt, Ingest):
            eff.writes.add(("table", stmt.table))
            # atomic ingest rebuilds every dependent view
            for v in table_views.get(stmt.table, set()):
                eff.writes.add(("view", v))
        elif isinstance(stmt, CreateIndex):
            eff.reads.add(("view", stmt.target))
            eff.writes.add(("index", stmt.name))
        elif isinstance(stmt, DropIndex):
            eff.writes.add(("index", stmt.name))
        elif isinstance(stmt, TableSelect):
            eff.reads.add(("table", stmt.source))
            if stmt.into is not None:
                eff.writes.add((stmt.into.kind, stmt.into.name))
        else:
            assert isinstance(stmt, GraphSelect)
            names, _, seeds = _pattern_vertex_names(stmt)
            for n in names:
                eff.reads.add(("view", n))
                for t in view_tables.get(n, set()):
                    eff.reads.add(("table", t))
            for s in seeds:
                eff.reads.add(("subgraph", s))
            if stmt.into is not None:
                eff.writes.add((stmt.into.kind, stmt.into.name))
        out.append(eff)
    return out


def statement_effects(
    script: Script, catalog: Optional[Catalog] = None
) -> list[tuple[set[tuple[str, str]], set[tuple[str, str]]]]:
    """Per-statement ``(reads, writes)`` object sets (Section III-B1).

    Public wrapper over the dependence analysis so other passes (e.g. the
    static analyzer's dead-statement detection) can reason about which
    named objects each statement consumes and produces without rebuilding
    the whole schedule.
    """
    return [(e.reads, e.writes) for e in _analyze(script, catalog)]


class ScriptSchedule:
    """The dependence DAG and its wave decomposition."""

    def __init__(self, script: Script, deps: list[set[int]], waves: list[list[int]]) -> None:
        self.script = script
        #: deps[i] = indices of statements that must precede statement i
        self.deps = deps
        #: waves[k] = statement indices executable concurrently in wave k
        self.waves = waves

    @property
    def num_waves(self) -> int:
        return len(self.waves)

    @property
    def max_parallelism(self) -> int:
        return max((len(w) for w in self.waves), default=0)

    def __repr__(self) -> str:
        return f"ScriptSchedule(waves={self.waves})"


def build_schedule(script: Script, catalog: Optional[Catalog] = None) -> ScriptSchedule:
    """Build the Section III-B1 dependence DAG for a script."""
    effects = _analyze(script, catalog)
    n = len(effects)
    deps: list[set[int]] = [set() for _ in range(n)]
    for i in range(n):
        for j in range(i):
            rw = effects[i].reads & effects[j].writes  # read-after-write
            ww = effects[i].writes & effects[j].writes  # write-after-write
            wr = effects[i].writes & effects[j].reads  # write-after-read
            if rw or ww or wr:
                deps[i].add(j)
    # wave decomposition (Kahn by levels)
    level = [0] * n
    for i in range(n):
        level[i] = 1 + max((level[j] for j in deps[i]), default=-1)
    waves: list[list[int]] = []
    for i in range(n):
        while len(waves) <= level[i]:
            waves.append([])
        waves[level[i]].append(i)
    return ScriptSchedule(script, deps, waves)


def run_scheduled(
    db: GraphDB,
    catalog: Catalog,
    script: Script,
    params: Optional[Mapping[str, Any]] = None,
    parallel: bool = True,
    max_workers: int = 4,
) -> tuple[list[StatementResult], ScriptSchedule]:
    """Execute a script wave-by-wave.

    Statements inside a wave have no mutual dependencies; with
    ``parallel=True`` they run on a thread pool (the paper's "executed in
    parallel (if there are enough processing and memory resources)").
    Results are returned in statement order regardless of scheduling.
    """
    schedule = build_schedule(script, catalog)
    results: list[Optional[StatementResult]] = [None] * len(script.statements)

    def run_one(i: int) -> None:
        results[i] = execute_statement(db, catalog, script.statements[i], params)

    for wave in schedule.waves:
        if parallel and len(wave) > 1:
            with ThreadPoolExecutor(max_workers=max_workers) as pool:
                list(pool.map(run_one, wave))
        else:
            for i in wave:
                run_one(i)
    return [r for r in results if r is not None], schedule
