"""The GEMS engine: client session, front-end server, scheduler.

Maps the paper's Section III system picture:

* **Clients** — :mod:`repro.cli` (command line) or the in-process
  :class:`~repro.engine.session.Database` API.
* **Server** — :class:`~repro.engine.server.Server`: access control, user
  accounts, the central catalog, static analysis, IR compilation.
* **Backend** — a :class:`~repro.graph.graphdb.GraphDB` (single node) or a
  :class:`~repro.dist.cluster.Cluster` (simulated distributed memory).

:mod:`repro.engine.scheduler` implements Section III-B1: the
multi-statement dependence DAG that decides which statements of a script
can execute in parallel.
"""

from repro.engine.introspect import (
    EdgeTypeInfo,
    IndexInfo,
    SchemaReport,
    TableInfo,
    VertexTypeInfo,
    schema_report,
)
from repro.engine.scheduler import ScriptSchedule, build_schedule
from repro.engine.server import Server, User
from repro.engine.session import Database

__all__ = [
    "Database",
    "Server",
    "User",
    "ScriptSchedule",
    "build_schedule",
    "SchemaReport",
    "TableInfo",
    "VertexTypeInfo",
    "EdgeTypeInfo",
    "IndexInfo",
    "schema_report",
]
