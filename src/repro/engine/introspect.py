"""Typed schema introspection: ``Database.schema()``.

A frozen snapshot of the catalog as plain dataclasses — what tools and
tests should consume instead of poking at :class:`~repro.catalog.Catalog`
internals.  Mirrors the :class:`~repro.query.explain.ExplainReport`
conventions: ``str(report)`` / ``to_text()`` is the human rendering,
``to_json()`` the pinned machine schema, and ``in`` searches the text.

The index entries carry the planner-facing statistics state
(:meth:`~repro.catalog.catalog.VertexMeta.stats_freshness`): which
attributes have collected histograms and how far the row count has
drifted since — the numbers behind the cost-based access-path choice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.catalog import Catalog

__all__ = [
    "ColumnInfo",
    "TableInfo",
    "VertexTypeInfo",
    "EdgeTypeInfo",
    "IndexInfo",
    "SchemaReport",
    "schema_report",
]


@dataclass(frozen=True)
class ColumnInfo:
    """One attribute: name plus its DDL type spelling."""

    name: str
    dtype: str

    def to_json(self) -> dict[str, Any]:
        return {"name": self.name, "dtype": self.dtype}


@dataclass(frozen=True)
class TableInfo:
    name: str
    columns: tuple[ColumnInfo, ...]
    num_rows: int
    derived: bool

    def to_json(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "columns": [c.to_json() for c in self.columns],
            "num_rows": self.num_rows,
            "derived": self.derived,
        }


@dataclass(frozen=True)
class VertexTypeInfo:
    name: str
    table: Optional[str]
    key: tuple[str, ...]
    attrs: tuple[ColumnInfo, ...]
    num_vertices: int
    #: attributes with collected column statistics (NDV + histogram)
    stats_attrs: tuple[str, ...] = ()
    #: worst row-count drift fraction across those stats (None = none yet)
    stats_freshness: Optional[float] = None

    def to_json(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "table": self.table,
            "key": list(self.key),
            "attrs": [c.to_json() for c in self.attrs],
            "num_vertices": self.num_vertices,
            "stats_attrs": list(self.stats_attrs),
            "stats_freshness": self.stats_freshness,
        }


@dataclass(frozen=True)
class EdgeTypeInfo:
    name: str
    source: str
    target: str
    attrs: tuple[ColumnInfo, ...]
    num_edges: int

    def to_json(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "source": self.source,
            "target": self.target,
            "attrs": [c.to_json() for c in self.attrs],
            "num_edges": self.num_edges,
        }


@dataclass(frozen=True)
class IndexInfo:
    name: str
    target: str
    target_kind: str
    attrs: tuple[str, ...]
    num_entries: int
    #: freshness of the target type's column stats (planner inputs)
    stats_freshness: Optional[float] = None

    def describe(self) -> str:
        cols = ", ".join(self.attrs)
        fresh = (
            "no stats"
            if self.stats_freshness is None
            else f"stats drift {self.stats_freshness:.0%}"
        )
        return (
            f"{self.name} on {self.target}({cols}) "
            f"[{self.num_entries} entries, {fresh}]"
        )

    def to_json(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "target": self.target,
            "target_kind": self.target_kind,
            "attrs": list(self.attrs),
            "num_entries": self.num_entries,
            "stats_freshness": self.stats_freshness,
        }


@dataclass(frozen=True)
class SchemaReport:
    """Everything the catalog knows, frozen at snapshot time."""

    tables: tuple[TableInfo, ...] = ()
    vertex_types: tuple[VertexTypeInfo, ...] = ()
    edge_types: tuple[EdgeTypeInfo, ...] = ()
    indexes: tuple[IndexInfo, ...] = ()
    subgraphs: tuple[str, ...] = ()

    def index(self, name: str) -> Optional[IndexInfo]:
        """Look up one index by name, or None."""
        return next((i for i in self.indexes if i.name == name), None)

    def to_text(self) -> str:
        lines = []
        if self.tables:
            lines.append("tables:")
            for t in self.tables:
                tag = " [derived]" if t.derived else ""
                lines.append(
                    f"  {t.name} ({len(t.columns)} columns, "
                    f"{t.num_rows} rows){tag}"
                )
        if self.vertex_types:
            lines.append("vertex types:")
            for v in self.vertex_types:
                stats = (
                    f", stats on {', '.join(v.stats_attrs)}"
                    if v.stats_attrs
                    else ""
                )
                lines.append(
                    f"  {v.name} <- {v.table or '?'}"
                    f"({', '.join(v.key)}) "
                    f"({v.num_vertices} instances{stats})"
                )
        if self.edge_types:
            lines.append("edge types:")
            for e in self.edge_types:
                lines.append(
                    f"  {e.name}: {e.source} -> {e.target} "
                    f"({e.num_edges} edges)"
                )
        if self.indexes:
            lines.append("indexes:")
            for i in self.indexes:
                lines.append(f"  {i.describe()}")
        if self.subgraphs:
            lines.append("subgraphs:")
            for name in self.subgraphs:
                lines.append(f"  {name}")
        return "\n".join(lines) if lines else "(empty catalog)"

    def to_json(self) -> dict[str, Any]:
        return {
            "tables": [t.to_json() for t in self.tables],
            "vertex_types": [v.to_json() for v in self.vertex_types],
            "edge_types": [e.to_json() for e in self.edge_types],
            "indexes": [i.to_json() for i in self.indexes],
            "subgraphs": list(self.subgraphs),
        }

    def __str__(self) -> str:
        return self.to_text()

    def __contains__(self, fragment: str) -> bool:
        return fragment in self.to_text()


def schema_report(catalog: Catalog) -> SchemaReport:
    """Snapshot a :class:`Catalog` into a :class:`SchemaReport`."""
    tables = tuple(
        TableInfo(
            name,
            tuple(ColumnInfo(c.name, c.dtype.ddl()) for c in m.schema),
            m.num_rows,
            m.derived,
        )
        for name, m in sorted(catalog.tables.items())
    )
    vertex_types = tuple(
        VertexTypeInfo(
            name,
            m.table,
            tuple(m.key_cols),
            tuple(ColumnInfo(c.name, c.dtype.ddl()) for c in m.attr_schema),
            m.num_vertices,
            tuple(sorted(m.all_column_stats())),
            m.stats_freshness(),
        )
        for name, m in sorted(catalog.vertices.items())
    )
    edge_types = tuple(
        EdgeTypeInfo(
            name,
            m.source_type,
            m.target_type,
            tuple(ColumnInfo(c.name, c.dtype.ddl()) for c in m.attr_schema),
            m.num_edges,
        )
        for name, m in sorted(catalog.edges.items())
    )
    indexes = []
    for name, im in sorted(catalog.indexes.items()):
        vm = catalog.vertices.get(im.target)
        freshness = vm.stats_freshness() if vm is not None else None
        indexes.append(
            IndexInfo(
                name,
                im.target,
                im.target_kind,
                tuple(im.attrs),
                im.num_entries,
                freshness,
            )
        )
    return SchemaReport(
        tables,
        vertex_types,
        edge_types,
        tuple(indexes),
        tuple(sorted(catalog.subgraphs)),
    )
