"""The GEMS front-end server (paper Section III, component 2).

    "the server centralizes access to the database system in order to
    provide access control, distinct user accounts, as well as a central
    metadata repository (catalog) of all existing database objects"

:class:`Server` owns the catalog and enforces a small role model:

* ``reader`` — may run selects;
* ``writer`` — additionally may ingest and create objects;
* ``admin``  — additionally may manage accounts.

``submit`` runs the complete front-end pipeline (parse -> substitute ->
static analysis -> binary IR) and only then hands the IR to the backend,
so an ill-typed script is rejected before touching any data — exactly the
paper's static-analysis placement.  The backend is pluggable: the default
executes against a local :class:`~repro.graph.graphdb.GraphDB`; the
simulated cluster of :mod:`repro.dist` plugs in the same way.

The server is *shared*: every submission passes through the
:class:`~repro.serve.ServingEngine` — admission control with a bounded
queue (:class:`~repro.errors.ServerBusy` on overload), a
writer-preferring reader-writer catalog lock (selects run concurrently,
DDL/ingest serialize), and a plan cache keyed on (canonical script,
parameters, catalog epoch).  Clients normally talk to it through
:func:`repro.connect` (docs/API.md).
"""

from __future__ import annotations

import threading
import time
from typing import Any, Mapping, Optional

from repro.catalog import Catalog
from repro.errors import AccessError
from repro.graph.graphdb import GraphDB
from repro.graql.ast import (
    CreateEdge,
    CreateIndex,
    CreateTable,
    CreateVertex,
    DropIndex,
    GraphSelect,
    Ingest,
    Script,
    TableSelect,
)
from repro.analysis.verifier import verify_statement_ir
from repro.graql.compiler import CompiledProgram, compile_script
from repro.graql.ir import decode_statement
from repro.obs.metrics import MetricsRegistry
from repro.obs.options import QueryOptions, reject_legacy_kwargs, resolve_options
from repro.obs.profile import record_profile_metrics
from repro.query.executor import StatementResult, execute_statement

ROLE_READER = "reader"
ROLE_WRITER = "writer"
ROLE_ADMIN = "admin"

_ROLE_RANK = {ROLE_READER: 0, ROLE_WRITER: 1, ROLE_ADMIN: 2}


class User:
    """A server account."""

    def __init__(self, name: str, role: str = ROLE_READER) -> None:
        if role not in _ROLE_RANK:
            raise AccessError(f"unknown role {role!r}")
        self.name = name
        self.role = role

    def at_least(self, role: str) -> bool:
        return _ROLE_RANK[self.role] >= _ROLE_RANK[role]

    def __repr__(self) -> str:
        return f"User({self.name!r}, {self.role})"


class Server:
    """Front-end server: accounts + catalog + compile + dispatch.

    With ``workers`` set, the backend is the simulated cluster
    (:class:`repro.dist.Cluster`): IR-decoded statements execute
    distributed where the set-frontier strategy applies, completing the
    paper's client -> server -> backend-cluster picture.

    ``serving_opts`` tunes the concurrent serving layer (worker-pool
    size, admission queue bound, per-user in-flight limit, plan-cache
    capacity) — see :class:`repro.serve.ServingEngine`.
    """

    def __init__(
        self,
        backend: Optional[GraphDB] = None,
        workers: Optional[int] = None,
        cluster_opts: Optional[Mapping[str, Any]] = None,
        *,
        serving_opts: Optional[Mapping[str, Any]] = None,
    ) -> None:
        self.backend = backend or GraphDB()
        self.catalog = Catalog.from_db(self.backend)
        self.cluster = None
        if workers is not None:
            from repro.dist import Cluster

            self.cluster = Cluster(
                self.backend, workers, self.catalog, **dict(cluster_opts or {})
            )
        self.users: dict[str, User] = {"admin": User("admin", ROLE_ADMIN)}
        #: durability journal (a :class:`repro.durability.DurableStore`)
        #: wired by ``Database.open``; when set, account changes are
        #: logged to the WAL like any other mutation
        self.durability = None
        #: total IR bytes shipped to the backend (measured, Section III)
        self.ir_bytes_shipped = 0
        #: statements the cluster answered via single-node fallback
        self.degraded_statements = 0
        #: server-wide counters/histograms, fed from statement profiles
        self.metrics = MetricsRegistry()
        #: guards the plain counters above under concurrent submits
        self._counter_lock = threading.Lock()

        from repro.serve.engine import ServingEngine

        #: the shared-server concurrency core (admission, RW catalog
        #: lock, worker pool, plan cache)
        self.serving = ServingEngine(
            self.catalog,
            self.backend,
            self.metrics,
            **dict(serving_opts or {}),
        )

    # ------------------------------------------------------------------
    # Account management
    # ------------------------------------------------------------------
    def create_user(self, admin: str, name: str, role: str) -> User:
        self._require(admin, ROLE_ADMIN)
        if name in self.users:
            raise AccessError(f"user {name!r} already exists")
        user = User(name, role)
        self.users[name] = user
        if self.durability is not None:
            try:
                self.durability.log_create_user(name, role)
            except Exception:
                # not durable -> not created: keep memory and disk agreed
                del self.users[name]
                raise
        return user

    def drop_user(self, admin: str, name: str) -> None:
        self._require(admin, ROLE_ADMIN)
        if name == "admin":
            raise AccessError("the admin account cannot be dropped")
        if name not in self.users:
            raise AccessError(f"unknown user {name!r}")
        dropped = self.users.pop(name)
        if self.durability is not None:
            try:
                self.durability.log_drop_user(name)
            except Exception:
                self.users[name] = dropped
                raise

    def _require(self, username: str, role: str) -> User:
        user = self.users.get(username)
        if user is None:
            raise AccessError(f"unknown user {username!r}")
        if not user.at_least(role):
            raise AccessError(
                f"user {username!r} (role {user.role}) lacks {role!r} rights"
            )
        return user

    # ------------------------------------------------------------------
    # Script submission
    # ------------------------------------------------------------------
    def connect(self, user: str = "admin", *, transport: str = "ir"):
        """A :class:`~repro.serve.Connection` onto this server."""
        from repro.serve.connection import connect

        return connect(self, user, transport=transport)

    def compile(
        self,
        username: str,
        graql: "str | Script",
        params: Optional[Mapping[str, Any]] = None,
    ) -> CompiledProgram:
        """Front-end work only: parse, substitute, check, encode."""
        self._require(username, ROLE_READER)
        program = compile_script(graql, self.catalog, params)
        for cs in program:
            self._check_rights(username, cs.statement)
        return program

    def _check_rights(self, username: str, stmt) -> None:
        if isinstance(
            stmt,
            (CreateTable, CreateVertex, CreateEdge, CreateIndex, DropIndex, Ingest),
        ):
            self._require(username, ROLE_WRITER)
        elif isinstance(stmt, (GraphSelect, TableSelect)):
            if stmt.into is not None:
                self._require(username, ROLE_WRITER)
            else:
                self._require(username, ROLE_READER)

    def submit(
        self,
        username: str,
        graql: str,
        params: Optional[Mapping[str, Any]] = None,
        timeout_s: Optional[float] = None,
        options: Optional[QueryOptions] = None,
        **legacy: Any,
    ) -> list[StatementResult]:
        """Compile on the front-end, ship IR, execute on the backend.

        The backend decodes each statement from its IR bytes — the
        round-trip is real, not decorative, so the IR is exercised on
        every submission.

        ``timeout_s`` (or ``options.timeout``) is a per-statement
        wall-clock budget for the distributed backend; a statement that
        blows it degrades to single-node execution (or raises
        :class:`~repro.errors.DegradedMode` when fallback is disabled).
        Results answered degraded are counted in
        ``degraded_statements`` and flagged on the result itself.

        Runs through the serving engine: admission control may raise
        :class:`~repro.errors.ServerBusy`; read-only scripts execute
        under the shared catalog lock (and may be answered from the
        plan cache, flagged ``cache: hit`` in the profile); anything
        with effects serializes.  The removed ``force_*`` kwargs raise
        ``TypeError`` pointing at :class:`~repro.obs.QueryOptions`.
        """
        opts, timeout_s = self._resolve_submit(username, timeout_s, options, legacy)
        return self.serving.run(
            username, graql, params, opts,
            self._ir_runner(username, params, timeout_s),
        )

    def submit_async(
        self,
        username: str,
        graql: str,
        params: Optional[Mapping[str, Any]] = None,
        timeout_s: Optional[float] = None,
        options: Optional[QueryOptions] = None,
    ):
        """:meth:`submit` on the serving engine's worker pool; returns a
        ``concurrent.futures.Future`` resolving to the result list.
        Admission (including :class:`~repro.errors.ServerBusy`) happens
        synchronously, before the future is created."""
        opts, timeout_s = self._resolve_submit(username, timeout_s, options, {})
        return self.serving.submit(
            username, graql, params, opts,
            self._ir_runner(username, params, timeout_s),
        )

    def _resolve_submit(self, username, timeout_s, options, legacy):
        reject_legacy_kwargs(legacy, "Server.submit")
        # cheap pre-check so a cache hit cannot bypass access control;
        # per-statement write rights are checked at compile time, and
        # cached programs are always pure reads
        self._require(username, ROLE_READER)
        opts = resolve_options(options)
        if timeout_s is None:
            timeout_s = opts.timeout
        return opts, timeout_s

    def _ir_runner(self, username, params, timeout_s):
        def run(script: Script, opts: QueryOptions, parse_ms: float) -> tuple:
            t0 = time.perf_counter()
            program = self.compile(username, script, params)
            compile_ms = parse_ms + (time.perf_counter() - t0) * 1000.0
            results = self._execute_compiled(program, opts, timeout_s, compile_ms)
            if self.cluster is not None:
                # a cache hit would replay locally, bypassing the cluster
                return results, None
            return results, [cs.checked for cs in program]

        return run

    def _execute_compiled(
        self,
        program: CompiledProgram,
        opts: QueryOptions,
        timeout_s: Optional[float],
        compile_ms: float,
    ) -> list[StatementResult]:
        """Backend half of a submission: verify, decode, execute, meter."""
        results = []
        for i, cs in enumerate(program):
            # last line of defense before the backend decodes blindly:
            # reject corrupted/hand-crafted IR with a positioned IRError
            verify_statement_ir(cs.ir, self.catalog)
            with self._counter_lock:
                self.ir_bytes_shipped += cs.ir_size
            t1 = time.perf_counter()
            stmt = decode_statement(cs.ir)  # backend-side decode
            decode_ms = (time.perf_counter() - t1) * 1000.0
            if self.cluster is not None:
                result = self.cluster.execute_statement(
                    stmt, timeout_s=timeout_s, options=opts
                )
                if result.degraded:
                    with self._counter_lock:
                        self.degraded_statements += 1
            else:
                result = execute_statement(
                    self.backend, self.catalog, stmt, options=opts
                )
            if result.profile is not None:
                if i == 0:
                    # front-end compile covers the whole program
                    result.profile.stages.insert(0, ("compile_ir", compile_ms))
                    result.profile.stages.insert(1, ("decode_ir", decode_ms))
                else:
                    result.profile.stages.insert(0, ("decode_ir", decode_ms))
                record_profile_metrics(self.metrics, result.profile)
                self.metrics.counter(
                    "graql_ir_bytes_total", "IR bytes shipped to the backend"
                ).inc(cs.ir_size)
                if result.degraded:
                    self.metrics.counter(
                        "graql_degraded_statements_total",
                        "statements answered via single-node fallback",
                    ).inc()
            results.append(result)
        return results

    def __repr__(self) -> str:
        return (
            f"Server(users={len(self.users)}, objects="
            f"{len(self.catalog.tables) + len(self.catalog.vertices) + len(self.catalog.edges)})"
        )
