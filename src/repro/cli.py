"""Command-line client (paper Section III: "clients can range from a
simple command-line interface to web-based front-ends").

Usage::

    graql run script.graql --param Product1=product42
    graql run script.graql --db ./shop.db [--fsync always|batch|off]
    graql serve 127.0.0.1:7687 --db ./shop.db
    graql recover ./shop.db [--verify]
    graql checkpoint ./shop.db
    graql check script.graql [more.graql ...] [--jobs N] [--strict]
    graql profile script.graql --demo berlin
    graql stats script.graql --demo berlin
    graql repl
    graql demo berlin --scale 200
    graql demo cyber
    graql demo biology

``graql run --db PATH`` executes against the durable database directory
at PATH (created on first use): every mutation is written ahead to its
WAL, so a later ``graql run --db PATH`` (or crash + restart) continues
from the committed state.  ``graql recover PATH`` performs recovery and
prints the report; with ``--verify`` it additionally proves the
recovery invariants (docs/DURABILITY.md) and exits 0 only when the
store verified clean.  ``graql checkpoint PATH`` snapshots the state
and truncates the WAL.

``graql check`` statically analyzes without executing and exits 0 when
clean, 1 when only warnings were found under ``--strict``, and 2 when
errors were found (docs/ANALYSIS.md).  With several scripts and
``--jobs N`` the checks run in parallel, each against its own catalog
snapshot taken under the serving layer's read lock.

Execution commands talk to the database through the serving-layer
client API (docs/API.md): one :class:`~repro.serve.Connection`, with
table results streamed through a :class:`~repro.serve.Cursor` in
batches rather than materialized as one row list.

The REPL accepts a statement per paragraph: terminate input with an empty
line (or end with ``;``).  ``\\tables``, ``\\vertices``, ``\\edges`` and
``\\subgraphs`` list catalog objects; ``\\check <stmt>`` analyzes a
statement without running it; ``\\quit`` exits.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Any, Optional

from repro.engine.session import Database
from repro.errors import GraQLError
from repro.query.executor import StatementResult


def _parse_params(pairs: list[str]) -> dict[str, Any]:
    params: dict[str, Any] = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"--param expects Name=Value, got {pair!r}")
        name, value = pair.split("=", 1)
        for conv in (int, float):
            try:
                params[name] = conv(value)
                break
            except ValueError:
                continue
        else:
            params[name] = value
    return params


def _print_result(result: StatementResult, limit: int) -> None:
    if result.kind == "table" and result.table is not None:
        print(result.table.pretty(limit))
        print(f"({result.table.num_rows} rows)")
    elif result.kind == "subgraph" and result.subgraph is not None:
        sg = result.subgraph
        print(f"subgraph {sg.name!r}:")
        for t, v in sorted(sg.vertices.items()):
            print(f"  vertices {t}: {len(v)}")
        for t, e in sorted(sg.edges.items()):
            print(f"  edges {t}: {len(e)}")
    else:
        print(result.message or result.kind)


def _print_cursor_table(cur, limit: int) -> None:
    """Print the cursor's result set, pulling rows through the streaming
    fetch API (batched production) instead of materializing the table."""
    table = cur.table
    names = table.schema.names()
    shown = [
        [c.dtype.format(v) or "NULL" for c, v in zip(table.schema, row)]
        for row in cur.fetchmany(limit)
    ]
    widths = [
        max(len(n), *(len(r[j]) for r in shown)) if shown else len(n)
        for j, n in enumerate(names)
    ]
    print(" | ".join(n.ljust(w) for n, w in zip(names, widths)))
    print("-+-".join("-" * w for w in widths))
    for r in shown:
        print(" | ".join(v.ljust(w) for v, w in zip(r, widths)))
    if cur.rowcount > limit:
        print(f"... ({cur.rowcount} rows total)")
    print(f"({cur.rowcount} rows)")


def _execute_and_print(conn, source: str, params, limit: int) -> None:
    """Run one script through a streaming cursor and print every result;
    the last table is consumed through the cursor's batched fetch."""
    with conn.cursor(batch_size=max(limit, 1)) as cur:
        cur.execute(source, params or None)
        streamed = cur.table
        for r in cur.results:
            if (
                r.kind == "table"
                and r.table is not None
                and r.table is streamed
            ):
                _print_cursor_table(cur, limit)
            else:
                _print_result(r, limit)


def cmd_run(args: argparse.Namespace) -> int:
    try:
        db = (
            Database.open(args.db, fsync=args.fsync)
            if args.db
            else Database()
        )
    except GraQLError as e:
        print(f"error: {e}", file=sys.stderr)
        return 1
    params = _parse_params(args.param or [])
    try:
        with open(args.script, encoding="utf-8") as fh:
            source = fh.read()
        if args.explain:
            print(db.explain(source, params))
            return 0
        _execute_and_print(db.connect(), source, params, args.limit)
    except GraQLError as e:
        print(f"error: {e}", file=sys.stderr)
        return 1
    finally:
        db.close()  # flush the WAL before the interpreter exits
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Serve a database over TCP (docs/NETWORK.md).

    ``HOST:PORT`` binds an address (``:PORT`` binds loopback; port 0
    picks a free port).  SIGTERM and SIGINT drain gracefully: the
    listener closes, in-flight statements finish and write their
    responses, then the process exits — with ``--db`` every
    acknowledged mutation is already in the WAL, so a SIGKILL instead
    loses nothing that was acknowledged (``graql recover --verify``).
    """
    import signal

    from repro.net import GraqlServer

    host, _, port_s = args.address.rpartition(":")
    try:
        port = int(port_s)
    except ValueError:
        raise SystemExit(
            f"serve expects HOST:PORT or :PORT, got {args.address!r}"
        )
    replica = None
    try:
        if args.replica_of:
            if not args.db:
                raise SystemExit("--replica-of requires --db PATH (the "
                                 "replica's own durable directory)")
            from repro.replication import Replica

            replica = Replica(
                args.db,
                args.replica_of,
                durability={"fsync": args.fsync},
            )
            db = replica.database
        elif args.db:
            db = Database.open(args.db, fsync=args.fsync)
        elif args.demo:
            db = _demo_database(args.demo, args.scale)
        else:
            db = Database()
    except GraQLError as e:
        print(f"error: {e}", file=sys.stderr)
        return 1
    server = GraqlServer(
        None if replica is not None else db,
        host=host or "127.0.0.1",
        port=port,
        max_connections=args.max_connections,
        idle_timeout=args.idle_timeout,
        replica=replica,
    )
    try:
        server.start()
    except OSError as e:
        print(f"error: cannot bind {args.address}: {e}", file=sys.stderr)
        db.close()
        return 1
    if replica is not None:
        replica.start()
        backing = f"replica of {args.replica_of} at {args.db}"
    else:
        backing = args.db or (
            f"demo {args.demo}" if args.demo else "in-memory"
        )
    print(f"graql server listening on {server.url} ({backing})", flush=True)

    def _drain(signum: int, frame: object) -> None:
        print("draining...", flush=True)
        server.shutdown(drain=True)

    signal.signal(signal.SIGTERM, _drain)
    signal.signal(signal.SIGINT, _drain)
    try:
        server.serve_forever()
    finally:
        server.shutdown()
        if replica is not None:
            replica.stop()
        db.close()  # flush the WAL before the interpreter exits
    print("stopped", flush=True)
    return 0


def cmd_recover(args: argparse.Namespace) -> int:
    """Recover (and optionally verify) a durable database directory."""
    if args.verify:
        from repro.durability import verify_store

        report = verify_store(args.path)
        rec = report.recovery
        if rec is not None:
            print(
                f"recovered {args.path}: snapshot seq {rec.snapshot_seq}, "
                f"{rec.records_replayed} WAL record(s) replayed, "
                f"last seq {rec.last_seq} ({rec.wal_end_reason})"
            )
        for note in report.notes:
            print(f"note: {note}")
        for problem in report.problems:
            print(f"problem: {problem}", file=sys.stderr)
        if report.ok:
            print(f"verified ok (state {report.fingerprint[:16]})")
            return 0
        return 1
    try:
        db = Database.recover(args.path)
    except GraQLError as e:
        print(f"error: {e}", file=sys.stderr)
        return 1
    try:
        rec = db.recovery
        print(
            f"recovered {args.path}: snapshot seq {rec.snapshot_seq}, "
            f"{rec.records_replayed} WAL record(s) replayed, "
            f"last seq {rec.last_seq} ({rec.wal_end_reason})"
        )
        if rec.bytes_truncated:
            print(f"truncated {rec.bytes_truncated} torn tail byte(s)")
        print(db.db)
    finally:
        db.close()
    return 0


def cmd_checkpoint(args: argparse.Namespace) -> int:
    """Snapshot a durable database and truncate its WAL."""
    try:
        db = Database.open(args.path)
    except GraQLError as e:
        print(f"error: {e}", file=sys.stderr)
        return 1
    try:
        path = db.checkpoint()
        print(f"checkpoint written: {path} (seq {db.store.seq})")
    except GraQLError as e:
        print(f"error: {e}", file=sys.stderr)
        return 1
    finally:
        db.close()
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    """Statically analyze scripts; exit 0 clean / 1 warnings / 2 errors.

    With ``--jobs N`` and several scripts, checks run on a thread pool;
    each job analyzes against a :meth:`~repro.catalog.Catalog.scratch_copy`
    taken under the serving engine's read lock, so a live server can keep
    executing (even DDL) while scripts are being checked.
    """
    from repro.analysis import Analyzer

    db = (
        _demo_database(args.demo, args.scale) if args.demo else Database()
    )
    params = _parse_params(args.param or [])
    sources: list[tuple[str, str]] = []
    for path in args.script:
        try:
            with open(path, encoding="utf-8") as fh:
                sources.append((path, fh.read()))
        except OSError as e:
            print(f"error: {e}", file=sys.stderr)
            return 2
    serving = db.server.serving

    def check_one(source: str):
        with serving.lock.read_locked():
            catalog = db.catalog.scratch_copy()
        return Analyzer(catalog).analyze(source, params or None)

    if args.jobs > 1 and len(sources) > 1:
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=args.jobs) as pool:
            results = list(pool.map(check_one, (s for _, s in sources)))
    else:
        results = [check_one(s) for _, s in sources]
    exit_code = 0
    for (path, _), result in zip(sources, results):
        if args.format == "json":
            print(result.to_json(path))
        else:
            print(result.render_text(path))
        exit_code = max(exit_code, result.exit_code(strict=args.strict))
    return exit_code


def cmd_devcheck(args: argparse.Namespace) -> int:
    """Self-analyze the engine source; same exit contract as ``check``.

    Parses every ``.py`` file under the given paths and runs the
    engine-invariant passes (lock order, blocking-under-lock,
    ack-before-durability, crash-safety hygiene) from
    :mod:`repro.devlint`.  ``--baseline`` names a reviewed suppression
    file; stale entries in it are themselves reported (GDL090).
    """
    from repro.devlint import Baseline, run_devcheck

    baseline = None
    if args.baseline:
        try:
            baseline = Baseline.load(args.baseline)
        except (OSError, ValueError) as e:
            print(f"error: {e}", file=sys.stderr)
            return 2
    for path in args.path:
        if not os.path.exists(path):
            print(f"error: no such path: {path}", file=sys.stderr)
            return 2
    result = run_devcheck(args.path, baseline=baseline)
    if args.format == "json":
        print(result.to_json())
    else:
        print(result.render_text())
    return result.exit_code(strict=args.strict)


def cmd_profile(args: argparse.Namespace) -> int:
    """EXPLAIN ANALYZE a script: plans, then measured profiles."""
    db = (
        _demo_database(args.demo, args.scale) if args.demo else Database()
    )
    params = _parse_params(args.param or [])
    try:
        with open(args.script, encoding="utf-8") as fh:
            print(db.explain(fh.read(), params, mode="analyze"))
    except GraQLError as e:
        print(f"error: {e}", file=sys.stderr)
        return 1
    return 0


def cmd_ping(args: argparse.Namespace) -> int:
    """Health-check a server without entering its admission queue."""
    from repro.net.client import ping

    try:
        pong = ping(args.url, timeout=args.timeout)
    except GraQLError as e:
        print(f"error: {e}", file=sys.stderr)
        return 1
    endpoint = pong.pop("endpoint", args.url)
    rtt = pong.pop("rtt_s", 0.0)
    print(f"pong from {endpoint} in {rtt * 1000:.1f} ms")
    for key, value in pong.items():
        if key == "replicas":
            print(f"  replicas: {len(value)}")
            for peer in value:
                print(
                    f"    {peer['peer']} {peer['addr']}: "
                    f"ack_seq {peer['ack_seq']}, "
                    f"lag {peer['lag_records']} record(s)"
                )
        else:
            print(f"  {key}: {value}")
    return 0


def cmd_promote(args: argparse.Namespace) -> int:
    """Promote a replica to primary (docs/REPLICATION.md runbook)."""
    import socket as _socket

    from repro.net.client import parse_endpoints
    from repro.net.frame import (
        FT_ERROR,
        FT_HELLO,
        FT_HELLO_OK,
        FT_PROMOTE,
        FT_PROMOTED,
        FrameSocket,
        PROTOCOL_VERSION,
    )
    from repro.net.protocol import decode_error

    host, port = parse_endpoints(args.url)[0]
    try:
        sock = _socket.create_connection((host, port), timeout=args.timeout)
    except OSError as e:
        print(f"error: cannot reach {host}:{port}: {e}", file=sys.stderr)
        return 1
    fs = FrameSocket(sock)
    try:
        fs.send_magic()
        fs.send_frame(FT_HELLO, {"proto": PROTOCOL_VERSION, "user": args.user})
        ftype, payload = fs.recv_frame()
        if ftype == FT_ERROR:
            raise decode_error(payload)
        if ftype != FT_HELLO_OK:
            print(f"error: unexpected frame type {ftype}", file=sys.stderr)
            return 1
        fs.send_frame(FT_PROMOTE, {})
        ftype, payload = fs.recv_frame()
        if ftype == FT_ERROR:
            raise decode_error(payload)
        if ftype != FT_PROMOTED:
            print(f"error: unexpected frame type {ftype}", file=sys.stderr)
            return 1
        print(
            f"promoted {host}:{port}: now primary at replication epoch "
            f"{payload['repl_epoch']} (seq {payload['seq']})"
        )
    except GraQLError as e:
        print(f"error: {e}", file=sys.stderr)
        return 1
    finally:
        fs.close()
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """Execute a script and print the Prometheus metrics exposition."""
    if args.replication:
        return cmd_ping(
            argparse.Namespace(url=args.replication, timeout=5.0)
        )
    if not args.script:
        print(
            "error: a script is required unless --replication URL is given",
            file=sys.stderr,
        )
        return 2
    db = (
        _demo_database(args.demo, args.scale) if args.demo else Database()
    )
    params = _parse_params(args.param or [])
    try:
        db.execute_file(args.script, params)
    except GraQLError as e:
        print(f"error: {e}", file=sys.stderr)
        return 1
    if args.indexes:
        report = db.schema()
        if not report.indexes:
            print("(no indexes)")
        for info in report.indexes:
            print(info.describe())
        return 0
    print(db.render_metrics(), end="")
    return 0


def _demo_database(name: str, scale: int) -> Database:
    if name == "berlin":
        from repro.workloads.berlin import berlin_database

        return berlin_database(scale=scale, with_export=True)
    if name == "cyber":
        from repro.workloads.cyber import cyber_database

        return cyber_database(hosts_per_subnet=max(scale // 4, 5))
    if name == "biology":
        from repro.workloads.biology import biology_database

        return biology_database(num_pathways=max(scale // 40, 2))
    raise SystemExit(f"unknown demo {name!r} (berlin | cyber | biology)")


def _repl(db: Database, limit: int) -> int:
    print(
        "GraQL REPL — terminate a statement with an empty line; "
        "\\explain <stmt> shows plans; \\profile <stmt> runs explain "
        "analyze; \\check <stmt> analyzes without running; "
        "\\stats prints metrics; \\di lists indexes; \\quit to exit"
    )
    conn = db.connect()  # one serving-layer connection for the session
    buffer: list[str] = []
    while True:
        try:
            prompt = "graql> " if not buffer else "  ...> "
            line = input(prompt)
        except EOFError:
            print()
            return 0
        stripped = line.strip()
        if not buffer and stripped.startswith("\\explain "):
            try:
                print(db.explain(stripped[len("\\explain "):]))
            except GraQLError as e:
                print(f"error: {e}", file=sys.stderr)
            continue
        if not buffer and stripped.startswith("\\profile "):
            try:
                print(db.explain(stripped[len("\\profile "):], mode="analyze"))
            except GraQLError as e:
                print(f"error: {e}", file=sys.stderr)
            continue
        if not buffer and stripped == "\\stats":
            print(db.render_metrics(), end="")
            continue
        if not buffer and stripped.startswith("\\check "):
            print(db.analyze(stripped[len("\\check "):]).render_text("<repl>"))
            continue
        if not buffer and stripped.startswith("\\"):
            if stripped in ("\\quit", "\\q"):
                return 0
            if stripped == "\\tables":
                for name, meta in sorted(db.catalog.tables.items()):
                    print(f"  {name} ({meta.num_rows} rows)")
            elif stripped == "\\vertices":
                for name, meta in sorted(db.catalog.vertices.items()):
                    print(f"  {name} ({meta.num_vertices} instances)")
            elif stripped == "\\edges":
                for name, meta in sorted(db.catalog.edges.items()):
                    print(f"  {name} ({meta.num_edges} edges)")
            elif stripped == "\\subgraphs":
                for name in sorted(db.catalog.subgraphs):
                    print(f"  {name}")
            elif stripped == "\\di":
                report = db.schema()
                if not report.indexes:
                    print("  (no indexes)")
                for info in report.indexes:
                    print(f"  {info.describe()}")
            elif stripped == "\\schema":
                print(db.schema())
            else:
                print(f"unknown command {stripped!r}")
            continue
        terminated = stripped.endswith(";")
        if stripped:
            buffer.append(line.rstrip(";") if terminated else line)
        if buffer and (not stripped or terminated):
            text = "\n".join(buffer)
            buffer = []
            try:
                _execute_and_print(conn, text, None, limit)
            except GraQLError as e:
                print(f"error: {e}", file=sys.stderr)


def cmd_repl(args: argparse.Namespace) -> int:
    return _repl(Database(), args.limit)


def cmd_demo(args: argparse.Namespace) -> int:
    db = _demo_database(args.name, args.scale)
    print(f"loaded demo {args.name!r}: {db.db}")
    return _repl(db, args.limit)


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="graql", description="GraQL attributed-graph database client"
    )
    parser.add_argument(
        "--limit", type=int, default=20, help="max rows printed per table"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="execute a GraQL script file")
    p_run.add_argument("script")
    p_run.add_argument(
        "--param", action="append", metavar="NAME=VALUE", help="query parameter"
    )
    p_run.add_argument(
        "--explain",
        action="store_true",
        help="print the plans instead of executing",
    )
    p_run.add_argument(
        "--db",
        metavar="PATH",
        help="durable database directory (WAL + checkpoints); created on "
        "first use, recovered on every later one",
    )
    p_run.add_argument(
        "--fsync",
        choices=["always", "batch", "off"],
        default="always",
        help="WAL fsync policy for --db (default: always)",
    )
    p_run.set_defaults(func=cmd_run)

    p_srv = sub.add_parser(
        "serve", help="serve a database over TCP (binary wire protocol)"
    )
    p_srv.add_argument(
        "address",
        metavar="HOST:PORT",
        help="bind address; ':PORT' binds loopback, port 0 picks a free port",
    )
    p_srv.add_argument(
        "--db",
        metavar="PATH",
        help="serve the durable database directory at PATH (created on "
        "first use, recovered on start)",
    )
    p_srv.add_argument(
        "--fsync",
        choices=["always", "batch", "off"],
        default="always",
        help="WAL fsync policy for --db (default: always)",
    )
    p_srv.add_argument(
        "--demo",
        choices=["berlin", "cyber", "biology"],
        help="serve a demo dataset instead of an empty database",
    )
    p_srv.add_argument("--scale", type=int, default=200)
    p_srv.add_argument(
        "--replica-of",
        metavar="URL",
        help="run as a streaming read-only replica of the primary at URL "
        "(requires --db; see docs/REPLICATION.md)",
    )
    p_srv.add_argument(
        "--max-connections",
        type=int,
        default=64,
        help="refuse connections beyond this many concurrent sessions",
    )
    p_srv.add_argument(
        "--idle-timeout",
        type=float,
        default=300.0,
        help="close connections idle for this many seconds",
    )
    p_srv.set_defaults(func=cmd_serve)

    p_rec = sub.add_parser(
        "recover", help="recover a durable database directory and report"
    )
    p_rec.add_argument("path")
    p_rec.add_argument(
        "--verify",
        action="store_true",
        help="additionally prove the recovery invariants; exit 0 iff clean",
    )
    p_rec.set_defaults(func=cmd_recover)

    p_ckpt = sub.add_parser(
        "checkpoint", help="snapshot a durable database and truncate its WAL"
    )
    p_ckpt.add_argument("path")
    p_ckpt.set_defaults(func=cmd_checkpoint)

    p_check = sub.add_parser(
        "check", help="statically analyze a script without executing it"
    )
    p_check.add_argument("script", nargs="+")
    p_check.add_argument(
        "--param", action="append", metavar="NAME=VALUE", help="query parameter"
    )
    p_check.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 when warnings are present (errors always exit 2)",
    )
    p_check.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="check scripts in parallel on N threads (catalog snapshots "
        "are taken under the serving layer's read lock)",
    )
    p_check.add_argument(
        "--format", choices=["text", "json"], default="text", help="output format"
    )
    p_check.add_argument(
        "--demo",
        choices=["berlin", "cyber", "biology"],
        help="analyze against a demo dataset's catalog instead of an "
        "empty database",
    )
    p_check.add_argument("--scale", type=int, default=200)
    p_check.set_defaults(func=cmd_check)

    p_dev = sub.add_parser(
        "devcheck",
        help="self-analyze the engine source for concurrency and "
        "durability invariant violations (GDL codes)",
    )
    p_dev.add_argument(
        "path", nargs="+", help="files or directories of engine source"
    )
    p_dev.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="diagnostic output format",
    )
    p_dev.add_argument(
        "--baseline", metavar="FILE",
        help="reviewed suppression baseline (JSON; see docs/DEVLINT.md)",
    )
    p_dev.add_argument(
        "--strict", action="store_true",
        help="exit 1 when only warnings are found",
    )
    p_dev.set_defaults(func=cmd_devcheck)

    p_prof = sub.add_parser(
        "profile", help="explain analyze a script (plans + measured profiles)"
    )
    p_prof.add_argument("script")
    p_prof.add_argument(
        "--param", action="append", metavar="NAME=VALUE", help="query parameter"
    )
    p_prof.add_argument(
        "--demo",
        choices=["berlin", "cyber", "biology"],
        help="run against a demo dataset instead of an empty database",
    )
    p_prof.add_argument("--scale", type=int, default=200)
    p_prof.set_defaults(func=cmd_profile)

    p_stats = sub.add_parser(
        "stats", help="execute a script and print Prometheus metrics"
    )
    p_stats.add_argument("script", nargs="?")
    p_stats.add_argument(
        "--replication",
        metavar="URL",
        help="print a remote server's replication status (PING) instead "
        "of running a script",
    )
    p_stats.add_argument(
        "--param", action="append", metavar="NAME=VALUE", help="query parameter"
    )
    p_stats.add_argument(
        "--demo",
        choices=["berlin", "cyber", "biology"],
        help="run against a demo dataset instead of an empty database",
    )
    p_stats.add_argument("--scale", type=int, default=200)
    p_stats.add_argument(
        "--indexes",
        action="store_true",
        help="print secondary-index + statistics state instead of metrics",
    )
    p_stats.set_defaults(func=cmd_stats)

    p_ping = sub.add_parser(
        "ping", help="health-check a server (no auth, no admission queue)"
    )
    p_ping.add_argument("url", metavar="URL", help="graql://HOST:PORT[,HOST:PORT...]")
    p_ping.add_argument("--timeout", type=float, default=5.0)
    p_ping.set_defaults(func=cmd_ping)

    p_promote = sub.add_parser(
        "promote",
        help="promote a replica to primary (fence the old timeline, "
        "open writes)",
    )
    p_promote.add_argument("url", metavar="URL")
    p_promote.add_argument(
        "--user", default="admin", help="admin account (default: admin)"
    )
    p_promote.add_argument("--timeout", type=float, default=10.0)
    p_promote.set_defaults(func=cmd_promote)

    p_repl = sub.add_parser("repl", help="interactive session (empty database)")
    p_repl.set_defaults(func=cmd_repl)

    p_demo = sub.add_parser("demo", help="interactive session on a demo dataset")
    p_demo.add_argument("name", choices=["berlin", "cyber", "biology"])
    p_demo.add_argument("--scale", type=int, default=200)
    p_demo.set_defaults(func=cmd_demo)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
