"""Vectorized relational operators — the Table I operation set.

The paper's relational subset (Table I) comprises: select (selection +
projection), order by, group by, distinct, count/avg/min/max/sum, top n,
and ``as`` aliasing.  Edge-view construction (Eq. 2) additionally needs
equi-joins.  All operators here work on whole columns with NumPy kernels:

* predicates -> boolean masks (``repro.storage.expr``),
* grouping and distinct -> key *factorization* (shared integer codes via
  ``np.unique``), then ``bincount`` / ``minimum.at`` reductions,
* joins -> factorize both sides to shared codes, sort one side, and expand
  match ranges with ``searchsorted`` + ``repeat`` (no Python row loops),
* ordering -> stable ``lexsort`` over per-key rank codes so ascending /
  descending mixes are exact.

Row-index arrays (int64) are the currency between operators; data columns
are gathered once at the end.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.dtypes import FLOAT, INTEGER, DataType
from repro.dtypes.datatypes import KIND_NUMERIC
from repro.errors import ExecutionError
from repro.storage.column import Column
from repro.storage.expr import Env, Expr, evaluate_predicate
from repro.storage.schema import ColumnDef, Schema
from repro.storage.table import Table

AGGREGATE_FUNCS = ("count", "sum", "avg", "min", "max")


# ----------------------------------------------------------------------
# Selection
# ----------------------------------------------------------------------

def filter_table(table: Table, condition: Expr | None) -> Table:
    """``where`` — keep rows satisfying *condition* (None keeps all)."""
    if condition is None:
        return table
    mask = evaluate_predicate(condition, Env.from_table(table))
    return table.filter(mask)


# ----------------------------------------------------------------------
# Key factorization (shared machinery for distinct / group by / join)
# ----------------------------------------------------------------------

def _column_codes(col: Column) -> np.ndarray:
    """Dense int64 codes for one column, ordered consistently with values."""
    _, inv = np.unique(col.sort_key(), return_inverse=True)
    return inv.astype(np.int64)


def factorize(table: Table, key_names: Sequence[str]) -> tuple[np.ndarray, int]:
    """Combine one or more key columns into dense group codes.

    Returns ``(codes, ncodes_bound)`` where equal rows (on the keys) share a
    code.  Codes are *not* dense across the combination — callers run a
    final ``np.unique`` (see :func:`group_rows`).
    """
    if not key_names:
        return np.zeros(table.num_rows, dtype=np.int64), 1
    codes = _column_codes(table.column(key_names[0]))
    bound = int(codes.max(initial=-1)) + 1
    for name in key_names[1:]:
        c = _column_codes(table.column(name))
        k = int(c.max(initial=-1)) + 1
        codes = codes * k + c
        bound *= max(k, 1)
    return codes, bound


def group_rows(table: Table, key_names: Sequence[str]) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Group rows on the keys.

    Returns ``(group_ids, first_row_index, inverse)`` where ``inverse[i]``
    is the group of row *i*, ``first_row_index[g]`` is a representative row
    of group *g*, and ``group_ids`` is ``arange(ngroups)``.
    """
    codes, _ = factorize(table, key_names)
    uniq, first, inv = np.unique(codes, return_index=True, return_inverse=True)
    return np.arange(len(uniq)), first, inv


# ----------------------------------------------------------------------
# Distinct
# ----------------------------------------------------------------------

def distinct(table: Table, subset: Sequence[str] | None = None) -> Table:
    """``distinct`` — drop duplicate rows (first occurrence wins)."""
    keys = list(subset) if subset else table.schema.names()
    if table.num_rows == 0:
        return table
    _, first, _ = group_rows(table, keys)
    return table.take(np.sort(first))


# ----------------------------------------------------------------------
# Ordering / top n
# ----------------------------------------------------------------------

def order_by(table: Table, keys: Sequence[tuple[str, bool]]) -> Table:
    """``order by`` — *keys* is [(column, ascending)], major key first.

    Stable: ties preserve input order.  Descending works for every kind by
    sorting on negated rank codes.
    """
    if table.num_rows == 0 or not keys:
        return table
    rank_arrays = []
    for name, ascending in keys:
        codes = _column_codes(table.column(name))
        rank_arrays.append(codes if ascending else -codes)
    # lexsort's last key is primary
    order = np.lexsort(tuple(reversed(rank_arrays)))
    return table.take(order)


def top_n(table: Table, n: int) -> Table:
    """``top n`` — the first *n* rows in current order."""
    if n < 0:
        raise ExecutionError(f"top n requires n >= 0, got {n}")
    return table.head(n)


# ----------------------------------------------------------------------
# Aggregation
# ----------------------------------------------------------------------

class AggSpec:
    """One aggregate in a select list: ``count(*) as groupCount``."""

    __slots__ = ("func", "arg", "alias")

    def __init__(self, func: str, arg: str | None, alias: str) -> None:
        func = func.lower()
        if func not in AGGREGATE_FUNCS:
            raise ExecutionError(f"unknown aggregate function {func!r}")
        self.func = func
        self.arg = arg  # None means '*'
        self.alias = alias

    def result_type(self, table: Table) -> DataType:
        if self.func == "count":
            return INTEGER
        if self.arg is None:
            raise ExecutionError(f"{self.func}(*) is not defined")
        t = table.schema.type_of(self.arg)
        if self.func in ("sum", "avg"):
            if t.kind != KIND_NUMERIC:
                raise ExecutionError(
                    f"{self.func}() requires a numeric column, got {t.ddl()}"
                )
            return FLOAT if (self.func == "avg" or t == FLOAT) else INTEGER
        return t  # min/max keep the column type

    def __repr__(self) -> str:
        return f"AggSpec({self.func}({self.arg or '*'}) as {self.alias})"


def _agg_values(spec: AggSpec, table: Table, inv: np.ndarray, ngroups: int) -> np.ndarray:
    if spec.func == "count":
        if spec.arg is None:
            return np.bincount(inv, minlength=ngroups).astype(np.int64)
        nm = table.column(spec.arg).null_mask()
        return np.bincount(inv[~nm], minlength=ngroups).astype(np.int64)
    col = table.column(spec.arg)
    nm = col.null_mask()
    valid = ~nm
    vinv = inv[valid]
    if spec.func in ("sum", "avg"):
        vals = col.data[valid].astype(np.float64)
        sums = np.bincount(vinv, weights=vals, minlength=ngroups)
        if spec.func == "sum":
            if spec.result_type(table) == INTEGER:
                return sums.astype(np.int64)
            return sums
        counts = np.bincount(vinv, minlength=ngroups)
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)
    # min / max
    if col.data.dtype == np.dtype(object):
        # string min/max: sort by (group, value); min = first row of each
        # group run, max = last
        out = np.empty(ngroups, dtype=object)
        key = col.sort_key()[valid]
        order = np.lexsort((key, vinv))
        gs = vinv[order]
        ks = col.data[valid][order]
        if len(gs):
            starts = np.flatnonzero(np.r_[True, gs[1:] != gs[:-1]])
            pick = starts if spec.func == "min" else np.r_[starts[1:], len(gs)] - 1
            out[gs[pick]] = ks[pick]
        return out
    vals = col.data[valid]
    init = np.iinfo(np.int64).max if vals.dtype == np.int64 else np.inf
    if spec.func == "max":
        init = np.iinfo(np.int64).min + 1 if vals.dtype == np.int64 else -np.inf
    out = np.full(ngroups, init, dtype=vals.dtype)
    if spec.func == "min":
        np.minimum.at(out, vinv, vals)
    else:
        np.maximum.at(out, vinv, vals)
    # groups with no valid rows -> NULL sentinel
    present = np.zeros(ngroups, dtype=bool)
    present[vinv] = True
    if vals.dtype == np.float64:
        out[~present] = np.nan
    else:
        out[~present] = table.schema.type_of(spec.arg).null_value
    return out


def group_by_aggregate(
    table: Table,
    group_cols: Sequence[str],
    aggs: Sequence[AggSpec],
    result_name: str = "result",
) -> Table:
    """``group by`` + aggregate list -> one row per group.

    With no group columns, the whole table forms a single group (standard
    SQL aggregate-query behaviour), including for an empty input when every
    aggregate is a count.
    """
    if group_cols:
        _, first, inv = group_rows(table, group_cols)
        ngroups = len(first)
    else:
        first = np.zeros(min(1, table.num_rows), dtype=np.int64)
        inv = np.zeros(table.num_rows, dtype=np.int64)
        ngroups = 1
    out_defs: list[ColumnDef] = []
    out_cols: list[Column] = []
    for g in group_cols:
        dtype = table.schema.type_of(g)
        out_defs.append(ColumnDef(g, dtype))
        out_cols.append(table.column(g).take(first))
    for spec in aggs:
        dtype = spec.result_type(table)
        vals = _agg_values(spec, table, inv, ngroups)
        out_defs.append(ColumnDef(spec.alias, dtype))
        out_cols.append(Column(dtype, np.asarray(vals)))
    return Table(result_name, Schema(out_defs), out_cols)


# ----------------------------------------------------------------------
# Joins
# ----------------------------------------------------------------------

def _shared_codes(lcols: Sequence[Column], rcols: Sequence[Column]) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Encode both sides' key tuples with one shared code space.

    Returns (lcodes, rcodes, lvalid, rvalid); NULL keys are invalid and
    never join.
    """
    nl = len(lcols[0]) if lcols else 0
    nr = len(rcols[0]) if rcols else 0
    lcodes = np.zeros(nl, dtype=np.int64)
    rcodes = np.zeros(nr, dtype=np.int64)
    lvalid = np.ones(nl, dtype=bool)
    rvalid = np.ones(nr, dtype=bool)
    for lc, rc in zip(lcols, rcols):
        both = np.concatenate([lc.sort_key(), rc.sort_key()])
        _, inv = np.unique(both, return_inverse=True)
        k = int(inv.max(initial=-1)) + 1
        lcodes = lcodes * k + inv[:nl]
        rcodes = rcodes * k + inv[nl:]
        lvalid &= ~lc.null_mask()
        rvalid &= ~rc.null_mask()
    return lcodes, rcodes, lvalid, rvalid


def join_indices(
    left: Table,
    right: Table,
    left_keys: Sequence[str],
    right_keys: Sequence[str],
) -> tuple[np.ndarray, np.ndarray]:
    """Inner equi-join: all matching (left_row, right_row) index pairs.

    Fully vectorized: shared-code factorization, stable sort of the right
    side, ``searchsorted`` range lookup, and ``repeat``-based expansion.
    """
    if len(left_keys) != len(right_keys) or not left_keys:
        raise ExecutionError("join requires equal, non-empty key lists")
    lcols = [left.column(k) for k in left_keys]
    rcols = [right.column(k) for k in right_keys]
    lcodes, rcodes, lvalid, rvalid = _shared_codes(lcols, rcols)
    lidx = np.flatnonzero(lvalid)
    ridx = np.flatnonzero(rvalid)
    lc = lcodes[lidx]
    rc = rcodes[ridx]
    order = np.argsort(rc, kind="stable")
    rs = rc[order]
    lo = np.searchsorted(rs, lc, side="left")
    hi = np.searchsorted(rs, lc, side="right")
    counts = hi - lo
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    li_rep = np.repeat(np.arange(len(lc)), counts)
    starts = np.repeat(lo, counts)
    offsets = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
    ri_sorted = order[starts + offsets]
    return lidx[li_rep], ridx[ri_sorted]


def join_tables(
    left: Table,
    right: Table,
    left_keys: Sequence[str],
    right_keys: Sequence[str],
    left_prefix: str = "",
    right_prefix: str = "",
    name: str = "join",
) -> Table:
    """Inner equi-join materialized as a table.

    Column-name collisions between the sides must be resolved by prefixes;
    a collision without prefixes raises.
    """
    li, ri = join_indices(left, right, left_keys, right_keys)
    defs: list[ColumnDef] = []
    cols: list[Column] = []
    for cdef, col in zip(left.schema, left.columns):
        defs.append(ColumnDef(left_prefix + cdef.name, cdef.dtype))
        cols.append(col.take(li))
    for cdef, col in zip(right.schema, right.columns):
        defs.append(ColumnDef(right_prefix + cdef.name, cdef.dtype))
        cols.append(col.take(ri))
    return Table(name, Schema(defs), cols)


def semi_join_mask(
    left: Table,
    right: Table,
    left_keys: Sequence[str],
    right_keys: Sequence[str],
) -> np.ndarray:
    """Boolean mask over *left* rows having at least one match in *right*."""
    lcols = [left.column(k) for k in left_keys]
    rcols = [right.column(k) for k in right_keys]
    lcodes, rcodes, lvalid, rvalid = _shared_codes(lcols, rcols)
    present = np.unique(rcodes[rvalid])
    mask = np.zeros(left.num_rows, dtype=bool)
    pos = np.searchsorted(present, lcodes[lvalid])
    pos = np.clip(pos, 0, len(present) - 1) if len(present) else pos
    if len(present):
        mask[np.flatnonzero(lvalid)] = present[pos] == lcodes[lvalid]
    return mask


def union_all(tables: Sequence[Table], name: str = "union") -> Table:
    """Concatenate same-schema tables."""
    if not tables:
        raise ExecutionError("union of zero tables")
    out = tables[0]
    for t in tables[1:]:
        out = out.concat(t)
    return Table(name, out.schema, out.columns)
