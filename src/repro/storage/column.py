"""Columnar attribute storage.

A :class:`Column` pairs a flat NumPy array with its GraQL
:class:`~repro.dtypes.DataType`.  All bulk movement is expressed as NumPy
fancy indexing (``take``) or boolean masking (``filter``) so downstream
operators stay vectorized; per-row access exists only for materialization
and tests.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

import numpy as np

from repro.dtypes import DataType
from repro.dtypes.datatypes import KIND_BOOL, KIND_NUMERIC, KIND_STRING
from repro.dtypes.values import BOOL_NULL, INT_NULL


class Column:
    """A typed, immutable column of values."""

    __slots__ = ("dtype", "data")

    def __init__(self, dtype: DataType, data: np.ndarray) -> None:
        if data.dtype != dtype.numpy_dtype:
            data = data.astype(dtype.numpy_dtype)
        self.dtype = dtype
        self.data = data

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_values(cls, dtype: DataType, values: Sequence[Any]) -> "Column":
        """Build a column from Python values already in stored form."""
        if dtype.numpy_dtype == np.dtype(object):
            arr = np.empty(len(values), dtype=object)
            arr[:] = list(values)
        else:
            arr = np.asarray(values, dtype=dtype.numpy_dtype)
            if arr.shape == (0,):
                arr = np.empty(0, dtype=dtype.numpy_dtype)
        return cls(dtype, arr)

    @classmethod
    def empty(cls, dtype: DataType) -> "Column":
        return cls(dtype, np.empty(0, dtype=dtype.numpy_dtype))

    @classmethod
    def nulls(cls, dtype: DataType, n: int) -> "Column":
        """A column of *n* NULLs."""
        if dtype.numpy_dtype == np.dtype(object):
            arr = np.empty(n, dtype=object)
        else:
            arr = np.full(n, dtype.null_value, dtype=dtype.numpy_dtype)
        return cls(dtype, arr)

    # ------------------------------------------------------------------
    # Bulk operations (vectorized)
    # ------------------------------------------------------------------
    def take(self, indices: np.ndarray) -> "Column":
        """Gather rows by int index array (the core data-movement op)."""
        return Column(self.dtype, self.data[indices])

    def filter(self, mask: np.ndarray) -> "Column":
        """Keep rows where boolean *mask* is True."""
        return Column(self.dtype, self.data[mask])

    def concat(self, other: "Column") -> "Column":
        if self.dtype != other.dtype:
            raise ValueError(
                f"cannot concat {self.dtype.ddl()} with {other.dtype.ddl()}"
            )
        return Column(self.dtype, np.concatenate([self.data, other.data]))

    def null_mask(self) -> np.ndarray:
        """Boolean array, True where the value is NULL."""
        kind = self.dtype.kind
        if self.data.dtype == np.dtype(object):
            return np.array([v is None for v in self.data], dtype=bool)
        if kind == KIND_NUMERIC and self.data.dtype == np.float64:
            return np.isnan(self.data)
        if kind == KIND_BOOL:
            return self.data == BOOL_NULL
        # int64-backed kinds (integer, date) share the int64-min sentinel
        return self.data == INT_NULL

    def sort_key(self) -> np.ndarray:
        """An array safe to pass to argsort/lexsort (NULLs sort first).

        Object (string) columns map None to the empty string; numeric and
        date sentinels already sort below all real values.
        """
        if self.data.dtype == np.dtype(object):
            return np.array(
                ["" if v is None else str(v) for v in self.data], dtype=object
            )
        if self.data.dtype == np.float64:
            out = self.data.copy()
            out[np.isnan(out)] = -np.inf
            return out
        return self.data

    # ------------------------------------------------------------------
    # Scalar access (cold path)
    # ------------------------------------------------------------------
    def value(self, i: int) -> Any:
        v = self.data[i]
        if isinstance(v, np.generic):
            return v.item()
        return v

    def values(self) -> list[Any]:
        return [self.value(i) for i in range(len(self.data))]

    def slice_values(self, start: int, stop: int) -> list[Any]:
        """Python values for rows ``[start, stop)`` in one vectorized pass
        (``ndarray.tolist`` converts the whole slice at C speed; object
        arrays hold Python values already)."""
        chunk = self.data[start:stop]
        if chunk.dtype == object:
            return list(chunk)
        return chunk.tolist()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        return f"Column({self.dtype.ddl()}, n={len(self)})"


def build_column(dtype: DataType, texts: Iterable[str]) -> Column:
    """Parse an iterable of CSV fields into a column (ingest hot path)."""
    parsed = [dtype.parse(t) for t in texts]
    return Column.from_values(dtype, parsed)
