"""Scalar expression trees and their vectorized evaluator.

GraQL conditions appear in three places: ``where`` clauses of vertex/edge
declarations (Figs 3-4), per-step filters of path queries (``country =
%Country1%``), and the relational subset's ``where``.  All three share this
expression representation; the parser builds these nodes directly.

Evaluation is *columnar*: an expression evaluates against an
:class:`Env` that resolves (qualifier, attribute) references to NumPy
arrays, and produces a full-length result array in one vectorized pass.
NULL semantics follow the pragmatic two-valued convention: any comparison
involving NULL is False, and arithmetic involving NULL yields NULL.

Static type inference (:func:`infer_type`) implements the Section III-A
checks: comparing incomparable kinds (e.g. a date against a float) raises
:class:`~repro.errors.TypeCheckError` without touching any data.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Callable, Iterator

import numpy as np

from repro.dtypes import (
    BOOLEAN,
    DATE,
    FLOAT,
    INTEGER,
    PARAM,
    DataType,
    VarChar,
    parse_date,
)
from repro.dtypes.datatypes import (
    KIND_BOOL,
    KIND_DATE,
    KIND_NUMERIC,
    KIND_PARAM,
    KIND_STRING,
    common_type,
)
from repro.dtypes.values import DATE_NULL, INT_NULL
from repro.errors import ExecutionError, TypeCheckError

COMPARISON_OPS = ("=", "<>", "!=", "<", "<=", ">", ">=")
ARITHMETIC_OPS = ("+", "-", "*", "/")
LOGICAL_OPS = ("and", "or")


class Expr:
    """Base class for expression nodes (immutable).

    The optional ``span`` slot records the source position the parser saw
    the node at (:class:`~repro.graql.tokens.SourceSpan`); it is metadata
    only and excluded from equality/hashing (subclass ``__slots__`` drive
    both, and none of them lists ``span``).
    """

    __slots__ = ("span",)

    def children(self) -> tuple["Expr", ...]:
        return ()

    def walk(self) -> Iterator["Expr"]:
        """Pre-order traversal of the expression tree."""
        yield self
        for c in self.children():
            yield from c.walk()

    def __eq__(self, other: object) -> bool:
        if type(self) is not type(other):
            return False
        return all(
            getattr(self, s) == getattr(other, s) for s in self.__slots__
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__,) + tuple(
            getattr(self, s) if not isinstance(getattr(self, s), list) else tuple(getattr(self, s))
            for s in self.__slots__
        ))


class Const(Expr):
    """A literal constant.  ``dtype`` is the literal's natural type."""

    __slots__ = ("value", "dtype")

    def __init__(self, value: Any, dtype: DataType | None = None) -> None:
        if dtype is None:
            if isinstance(value, bool):
                dtype = BOOLEAN
                value = int(value)
            elif isinstance(value, int):
                dtype = INTEGER
            elif isinstance(value, float):
                dtype = FLOAT
            elif isinstance(value, str):
                dtype = VarChar(max(1, len(value)))
            else:
                raise TypeError(f"unsupported literal: {value!r}")
        self.value = value
        self.dtype = dtype

    def __repr__(self) -> str:
        return f"Const({self.value!r})"


class Param(Expr):
    """A ``%Name%`` query parameter, replaced before execution."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:
        return f"Param(%{self.name}%)"


class ColRef(Expr):
    """A reference to an attribute, optionally qualified.

    ``ProductVtx.producer`` parses to ``ColRef("ProductVtx", "producer")``;
    a bare ``country`` inside a step filter parses to
    ``ColRef(None, "country")`` and is resolved against the step's own type.
    """

    __slots__ = ("qualifier", "name")

    def __init__(self, qualifier: str | None, name: str) -> None:
        self.qualifier = qualifier
        self.name = name

    def __repr__(self) -> str:
        q = f"{self.qualifier}." if self.qualifier else ""
        return f"ColRef({q}{self.name})"


class BinOp(Expr):
    """Binary operation: comparison, arithmetic, or logical."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr) -> None:
        op = op.lower() if op.lower() in LOGICAL_OPS else op
        if op not in COMPARISON_OPS + ARITHMETIC_OPS + tuple(LOGICAL_OPS):
            raise ValueError(f"unknown operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"BinOp({self.left!r} {self.op} {self.right!r})"


class Not(Expr):
    """Logical negation."""

    __slots__ = ("operand",)

    def __init__(self, operand: Expr) -> None:
        self.operand = operand

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)

    def __repr__(self) -> str:
        return f"Not({self.operand!r})"


class IsNull(Expr):
    """``x is null`` / ``x is not null`` test."""

    __slots__ = ("operand", "negated")

    def __init__(self, operand: Expr, negated: bool = False) -> None:
        self.operand = operand
        self.negated = negated

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)

    def __repr__(self) -> str:
        return f"IsNull({self.operand!r}, negated={self.negated})"


# ----------------------------------------------------------------------
# Tree utilities
# ----------------------------------------------------------------------

def col_refs(expr: Expr) -> list[ColRef]:
    """All column references in the tree, in traversal order."""
    return [n for n in expr.walk() if isinstance(n, ColRef)]


def params(expr: Expr) -> list[str]:
    """All parameter names in the tree."""
    return [n.name for n in expr.walk() if isinstance(n, Param)]


def _keep_span(src: Expr, dst: Expr) -> Expr:
    span = getattr(src, "span", None)
    if span is not None:
        dst.span = span
    return dst


def substitute_params(expr: Expr, values: dict[str, Any]) -> Expr:
    """Replace every ``Param`` with a ``Const`` from *values* (copying).

    Source spans survive the rewrite so diagnostics on substituted
    conditions still point at the original token positions.
    """
    if isinstance(expr, Param):
        if expr.name not in values:
            raise ExecutionError(f"unbound query parameter %{expr.name}%")
        v = values[expr.name]
        return _keep_span(expr, v if isinstance(v, Const) else Const(v))
    if isinstance(expr, BinOp):
        return _keep_span(expr, BinOp(
            expr.op,
            substitute_params(expr.left, values),
            substitute_params(expr.right, values),
        ))
    if isinstance(expr, Not):
        return _keep_span(expr, Not(substitute_params(expr.operand, values)))
    if isinstance(expr, IsNull):
        return _keep_span(
            expr, IsNull(substitute_params(expr.operand, values), expr.negated)
        )
    return expr


def conjuncts(expr: Expr | None) -> list[Expr]:
    """Split a condition into its top-level AND conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, BinOp) and expr.op == "and":
        return conjuncts(expr.left) + conjuncts(expr.right)
    return [expr]


def conjoin(exprs: list[Expr]) -> Expr | None:
    """Re-combine conjuncts into a single AND tree (None if empty)."""
    if not exprs:
        return None
    out = exprs[0]
    for e in exprs[1:]:
        out = BinOp("and", out, e)
    return out


# ----------------------------------------------------------------------
# Constant folding + interval analysis (static lint support)
# ----------------------------------------------------------------------
#
# These helpers power the GQW101/GQW102 unsatisfiable/tautological
# predicate lints (docs/ANALYSIS.md) and let the planner short-circuit
# statically-empty steps.  They are deliberately conservative: anything
# involving NULL semantics, non-literal operands or unknown columns
# degrades to "unknown" rather than guessing.

def const_fold(expr: Expr) -> Expr:
    """Fold literal subtrees of *expr* to constants (pure, span-keeping).

    ``1 + 2`` becomes ``Const(3)``; ``2 < 1`` becomes ``Const(False)``;
    ``false and x`` becomes ``Const(False)``; column references and
    parameters are left untouched.  Division by a literal zero is *not*
    folded (it surfaces at runtime instead of at fold time).
    """
    if isinstance(expr, Not):
        inner = const_fold(expr.operand)
        if isinstance(inner, Const) and inner.dtype.kind == KIND_BOOL:
            return _keep_span(expr, Const(not bool(inner.value)))
        return _keep_span(expr, Not(inner)) if inner is not expr.operand else expr
    if isinstance(expr, IsNull):
        inner = const_fold(expr.operand)
        if isinstance(inner, Const):
            # a literal is never NULL
            return _keep_span(expr, Const(bool(expr.negated)))
        return expr
    if not isinstance(expr, BinOp):
        return expr
    left = const_fold(expr.left)
    right = const_fold(expr.right)
    if expr.op in LOGICAL_OPS:
        lval = left.value if isinstance(left, Const) and left.dtype.kind == KIND_BOOL else None
        rval = right.value if isinstance(right, Const) and right.dtype.kind == KIND_BOOL else None
        if expr.op == "and":
            if lval == 0 or rval == 0:
                return _keep_span(expr, Const(False))
            if lval is not None and rval is not None:
                return _keep_span(expr, Const(True))
            if lval is not None:
                return right
            if rval is not None:
                return left
        else:  # or
            if (lval is not None and lval != 0) or (rval is not None and rval != 0):
                return _keep_span(expr, Const(True))
            if lval is not None and rval is not None:
                return _keep_span(expr, Const(False))
            if lval is not None:
                return right
            if rval is not None:
                return left
    if isinstance(left, Const) and isinstance(right, Const):
        folded = _fold_literal_binop(expr.op, left, right)
        if folded is not None:
            return _keep_span(expr, folded)
    if left is not expr.left or right is not expr.right:
        return _keep_span(expr, BinOp(expr.op, left, right))
    return expr


def _fold_literal_binop(op: str, left: Const, right: Const) -> Const | None:
    lv, rv = left.value, right.value
    lk, rk = left.dtype.kind, right.dtype.kind
    if op in COMPARISON_OPS:
        if lk != rk:
            return None  # let the typechecker report the mismatch
        if op == "=":
            return Const(lv == rv)
        if op in ("<>", "!="):
            return Const(lv != rv)
        try:
            if op == "<":
                return Const(lv < rv)
            if op == "<=":
                return Const(lv <= rv)
            if op == ">":
                return Const(lv > rv)
            return Const(lv >= rv)
        except TypeError:  # pragma: no cover - mixed uncomparable literals
            return None
    if op in ARITHMETIC_OPS:
        if lk != KIND_NUMERIC or rk != KIND_NUMERIC:
            return None
        if op == "+":
            return Const(lv + rv)
        if op == "-":
            return Const(lv - rv)
        if op == "*":
            return Const(lv * rv)
        if rv == 0:
            return None  # division by literal zero: leave for runtime
        return Const(lv / rv)
    return None


class Interval:
    """A closed/open numeric interval for one column (interval analysis)."""

    __slots__ = ("lo", "lo_open", "hi", "hi_open")

    def __init__(
        self,
        lo: float = float("-inf"),
        hi: float = float("inf"),
        lo_open: bool = False,
        hi_open: bool = False,
    ) -> None:
        self.lo = lo
        self.hi = hi
        self.lo_open = lo_open
        self.hi_open = hi_open

    def intersect(self, other: "Interval") -> "Interval":
        out = Interval(self.lo, self.hi, self.lo_open, self.hi_open)
        if other.lo > out.lo or (other.lo == out.lo and other.lo_open):
            out.lo, out.lo_open = other.lo, other.lo_open
        if other.hi < out.hi or (other.hi == out.hi and other.hi_open):
            out.hi, out.hi_open = other.hi, other.hi_open
        return out

    @property
    def empty(self) -> bool:
        if self.lo > self.hi:
            return True
        return self.lo == self.hi and (self.lo_open or self.hi_open)

    def __repr__(self) -> str:
        lb = "(" if self.lo_open else "["
        rb = ")" if self.hi_open else "]"
        return f"Interval{lb}{self.lo}, {self.hi}{rb}"


def _comparison_interval(op: str, value: float) -> Interval:
    if op == "=":
        return Interval(value, value)
    if op == "<":
        return Interval(hi=value, hi_open=True)
    if op == "<=":
        return Interval(hi=value)
    if op == ">":
        return Interval(lo=value, lo_open=True)
    return Interval(lo=value)  # >=


def _column_comparisons(conj: Expr) -> tuple[str, str, float] | None:
    """``(column_key, op, literal)`` when *conj* compares a column with a
    numeric literal (normalized so the column is on the left)."""
    if not (isinstance(conj, BinOp) and conj.op in COMPARISON_OPS):
        return None
    flip = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "<>": "<>", "!=": "!="}
    left, right, op = conj.left, conj.right, conj.op
    if isinstance(left, Const) and isinstance(right, ColRef):
        left, right, op = right, left, flip[op]
    if not (isinstance(left, ColRef) and isinstance(right, Const)):
        return None
    if right.dtype.kind != KIND_NUMERIC:
        return None
    key = f"{left.qualifier}.{left.name}" if left.qualifier else left.name
    return key, op, float(right.value)


def predicate_feasibility(expr: Expr | None) -> bool | None:
    """Statically decide a predicate when possible.

    Returns ``False`` when the predicate can never hold (contradictory
    literal comparisons like ``x > 5 and x < 3``, equality conflicts like
    ``x = 1 and x = 2``, or a condition folding to literal false),
    ``True`` when it always holds (folds to literal true), and ``None``
    when undecidable from the expression alone.  Sound, not complete:
    ``None`` is always a safe answer and disjunctions are only decided
    by folding.
    """
    if expr is None:
        return True
    folded = const_fold(expr)
    if isinstance(folded, Const) and folded.dtype.kind == KIND_BOOL:
        return bool(folded.value)
    # interval analysis over the top-level conjunction
    intervals: dict[str, Interval] = {}
    equalities: dict[str, set] = {}
    disequalities: dict[str, set] = {}
    for conj in conjuncts(folded):
        cmp = _column_comparisons(conj)
        if cmp is not None:
            key, op, value = cmp
            if op in ("<>", "!="):
                disequalities.setdefault(key, set()).add(value)
                continue
            iv = intervals.get(key, Interval()).intersect(
                _comparison_interval(op, value)
            )
            intervals[key] = iv
            if iv.empty:
                return False
            continue
        # string/bool equality conflicts: x = 'a' and x = 'b'
        if (
            isinstance(conj, BinOp)
            and conj.op == "="
            and isinstance(conj.left, ColRef)
            and isinstance(conj.right, Const)
        ):
            key = (
                f"{conj.left.qualifier}.{conj.left.name}"
                if conj.left.qualifier
                else conj.left.name
            )
            seen = equalities.setdefault(key, set())
            seen.add(conj.right.value)
            if len(seen) > 1:
                return False
    # point interval excluded by a disequality: x = 5 and x <> 5
    for key, iv in intervals.items():
        if (
            not iv.lo_open
            and not iv.hi_open
            and iv.lo == iv.hi
            and iv.lo in disequalities.get(key, ())
        ):
            return False
    return None


# ----------------------------------------------------------------------
# Static type inference (Section III-A)
# ----------------------------------------------------------------------

TypeResolver = Callable[[str | None, str], DataType]

#: when set, :func:`infer_type` gives unbound ``%Param%`` placeholders the
#: wildcard :data:`~repro.dtypes.PARAM` type instead of raising — used by
#: prepared statements, which typecheck once before any values are bound
_DEFER_PARAMS: ContextVar[bool] = ContextVar("graql_defer_params", default=False)


@contextmanager
def deferred_params() -> Iterator[None]:
    """Typecheck with unbound ``%Param%`` placeholders allowed.

    Inside the context, an unsubstituted parameter infers to the wildcard
    ``PARAM`` type, which unifies with every comparability class; the
    concrete Section III-A check is re-run at execution time once the
    parameter values are bound.  This is what lets
    :meth:`~repro.serve.Connection.prepare` parse and typecheck a script
    exactly once and re-execute it with fresh parameters.
    """
    token = _DEFER_PARAMS.set(True)
    try:
        yield
    finally:
        _DEFER_PARAMS.reset(token)


def infer_type(expr: Expr, resolve: TypeResolver) -> DataType:
    """Infer the type of *expr*, raising ``TypeCheckError`` on misuse.

    *resolve* maps a (qualifier, attribute) pair to the attribute's
    declared type; it raises ``TypeCheckError`` for unknown names.
    String literals are admissible wherever a date is expected (date
    literals are written as quoted strings).
    """
    if isinstance(expr, Const):
        return expr.dtype
    if isinstance(expr, Param):
        if _DEFER_PARAMS.get():
            return PARAM
        raise TypeCheckError(
            f"parameter %{expr.name}% not substituted before type checking"
        )
    if isinstance(expr, ColRef):
        return resolve(expr.qualifier, expr.name)
    if isinstance(expr, Not):
        t = infer_type(expr.operand, resolve)
        if t.kind not in (KIND_BOOL, KIND_PARAM):
            raise TypeCheckError(f"'not' requires a boolean, got {t.ddl()}")
        return BOOLEAN
    if isinstance(expr, IsNull):
        infer_type(expr.operand, resolve)
        return BOOLEAN
    assert isinstance(expr, BinOp)
    lt = infer_type(expr.left, resolve)
    rt = infer_type(expr.right, resolve)
    if expr.op in LOGICAL_OPS:
        if lt.kind not in (KIND_BOOL, KIND_PARAM) or rt.kind not in (
            KIND_BOOL,
            KIND_PARAM,
        ):
            raise TypeCheckError(
                f"'{expr.op}' requires boolean operands, got "
                f"{lt.ddl()} and {rt.ddl()}"
            )
        return BOOLEAN
    # date literals arrive as strings: allow string<->date pairing when one
    # side is a string *literal*
    lt, rt = _coerce_date_literal_types(expr, lt, rt)
    if expr.op in COMPARISON_OPS:
        if lt.kind != rt.kind and KIND_PARAM not in (lt.kind, rt.kind):
            raise TypeCheckError(
                f"cannot compare {lt.ddl()} with {rt.ddl()} "
                f"(operator '{expr.op}')"
            )
        return BOOLEAN
    # arithmetic; a deferred parameter operand is re-checked once bound
    if KIND_PARAM in (lt.kind, rt.kind):
        other = rt if lt.kind == KIND_PARAM else lt
        if other.kind not in (KIND_NUMERIC, KIND_PARAM):
            raise TypeCheckError(
                f"arithmetic '{expr.op}' requires numeric operands, got "
                f"{lt.ddl()} and {rt.ddl()}"
            )
        return FLOAT if expr.op == "/" else (other if other.kind == KIND_NUMERIC else PARAM)
    if lt.kind != KIND_NUMERIC or rt.kind != KIND_NUMERIC:
        raise TypeCheckError(
            f"arithmetic '{expr.op}' requires numeric operands, got "
            f"{lt.ddl()} and {rt.ddl()}"
        )
    if expr.op == "/":
        return FLOAT
    return common_type(lt, rt)


def _coerce_date_literal_types(
    expr: BinOp, lt: DataType, rt: DataType
) -> tuple[DataType, DataType]:
    if lt.kind == KIND_DATE and rt.kind == KIND_STRING and isinstance(expr.right, Const):
        try:
            parse_date(expr.right.value)
        except ValueError:
            raise TypeCheckError(
                f"cannot compare date with non-date string {expr.right.value!r}"
            ) from None
        return lt, DATE
    if rt.kind == KIND_DATE and lt.kind == KIND_STRING and isinstance(expr.left, Const):
        try:
            parse_date(expr.left.value)
        except ValueError:
            raise TypeCheckError(
                f"cannot compare date with non-date string {expr.left.value!r}"
            ) from None
        return DATE, rt
    return lt, rt


# ----------------------------------------------------------------------
# Vectorized evaluation
# ----------------------------------------------------------------------

class Env:
    """Resolution environment for evaluation.

    Subclasses (or instances built with :meth:`from_table`) provide
    ``resolve(qualifier, name) -> (np.ndarray, DataType)`` plus the row
    count ``nrows``; all returned arrays must have ``nrows`` elements.
    """

    def __init__(
        self,
        resolver: Callable[[str | None, str], tuple[np.ndarray, DataType]],
        nrows: int,
    ) -> None:
        self._resolver = resolver
        self.nrows = nrows

    def resolve(self, qualifier: str | None, name: str) -> tuple[np.ndarray, DataType]:
        return self._resolver(qualifier, name)

    @classmethod
    def from_table(cls, table) -> "Env":
        """Environment over a single table; qualifier must be absent or
        match the table name."""

        def resolver(qualifier: str | None, name: str):
            if qualifier is not None and qualifier != table.name:
                raise ExecutionError(
                    f"unknown qualifier {qualifier!r} (table is {table.name!r})"
                )
            col = table.column(name)
            return col.data, col.dtype

        return cls(resolver, table.num_rows)

    @classmethod
    def from_columns(cls, mapping: dict[tuple[str | None, str], tuple[np.ndarray, DataType]], nrows: int) -> "Env":
        def resolver(qualifier: str | None, name: str):
            try:
                return mapping[(qualifier, name)]
            except KeyError:
                raise ExecutionError(
                    f"cannot resolve attribute "
                    f"{qualifier + '.' if qualifier else ''}{name}"
                ) from None

        return cls(resolver, nrows)


def _null_mask_of(arr: np.ndarray, dtype: DataType) -> np.ndarray:
    if arr.dtype == np.dtype(object):
        return np.array([v is None for v in arr], dtype=bool)
    if arr.dtype == np.float64:
        return np.isnan(arr)
    if dtype.kind == KIND_DATE:
        return arr == DATE_NULL
    if dtype.kind == KIND_BOOL:
        return arr == -1
    return arr == INT_NULL


def _broadcast_const(value: Any, dtype: DataType, n: int) -> np.ndarray:
    if dtype.numpy_dtype == np.dtype(object):
        arr = np.empty(n, dtype=object)
        arr[:] = value
        return arr
    return np.full(n, value, dtype=dtype.numpy_dtype)


def _eval(expr: Expr, env: Env) -> tuple[np.ndarray, DataType, np.ndarray]:
    """Evaluate to (values, dtype, null_mask)."""
    n = env.nrows
    if isinstance(expr, Const):
        arr = _broadcast_const(expr.value, expr.dtype, n)
        return arr, expr.dtype, np.zeros(n, dtype=bool)
    if isinstance(expr, Param):
        raise ExecutionError(f"unbound parameter %{expr.name}% at evaluation")
    if isinstance(expr, ColRef):
        arr, dtype = env.resolve(expr.qualifier, expr.name)
        return arr, dtype, _null_mask_of(arr, dtype)
    if isinstance(expr, Not):
        v, t, nm = _eval(expr.operand, env)
        return ~v.astype(bool), BOOLEAN, nm
    if isinstance(expr, IsNull):
        _, _, nm = _eval(expr.operand, env)
        out = ~nm if expr.negated else nm
        return out, BOOLEAN, np.zeros(n, dtype=bool)
    assert isinstance(expr, BinOp)
    lv, lt, lnull = _eval(expr.left, env)
    rv, rt, rnull = _eval(expr.right, env)
    if expr.op in LOGICAL_OPS:
        lb = lv.astype(bool)
        rb = rv.astype(bool)
        out = (lb & rb) if expr.op == "and" else (lb | rb)
        return out, BOOLEAN, np.zeros(n, dtype=bool)
    # date-literal coercion: string constant compared against date column
    lv, lt, rv, rt = _coerce_date_values(expr, lv, lt, rv, rt)
    nulls = lnull | rnull
    if expr.op in COMPARISON_OPS:
        out = _compare(expr.op, lv, lt, rv, rt, nulls)
        out[nulls] = False
        return out, BOOLEAN, np.zeros(n, dtype=bool)
    # arithmetic
    out_t = FLOAT if (expr.op == "/" or lt == FLOAT or rt == FLOAT) else INTEGER
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        a = lv.astype(np.float64) if out_t == FLOAT else lv.astype(np.int64)
        b = rv.astype(np.float64) if out_t == FLOAT else rv.astype(np.int64)
        if expr.op == "+":
            out = a + b
        elif expr.op == "-":
            out = a - b
        elif expr.op == "*":
            out = a * b
        else:
            out = a.astype(np.float64) / b.astype(np.float64)
    if out_t == FLOAT:
        out = out.astype(np.float64)
        out[nulls] = np.nan
        return out, FLOAT, np.zeros(n, dtype=bool)
    out = out.astype(np.int64)
    out[nulls] = INT_NULL
    return out, INTEGER, nulls


def _coerce_date_values(expr, lv, lt, rv, rt):
    if lt.kind == KIND_DATE and rt.kind == KIND_STRING:
        rv = np.array(
            [DATE_NULL if v is None else parse_date(v) for v in rv], dtype=np.int64
        )
        rt = DATE
    elif rt.kind == KIND_DATE and lt.kind == KIND_STRING:
        lv = np.array(
            [DATE_NULL if v is None else parse_date(v) for v in lv], dtype=np.int64
        )
        lt = DATE
    return lv, lt, rv, rt


def _compare(op, lv, lt, rv, rt, nulls) -> np.ndarray:
    if lv.dtype == np.dtype(object) or rv.dtype == np.dtype(object):
        # string comparison: mask nulls with "" so object compare is safe
        ls = np.array(["" if v is None else str(v) for v in lv], dtype=object)
        rs = np.array(["" if v is None else str(v) for v in rv], dtype=object)
        lv, rv = ls, rs
    if op == "=":
        return np.asarray(lv == rv, dtype=bool)
    if op in ("<>", "!="):
        return np.asarray(lv != rv, dtype=bool)
    if op == "<":
        return np.asarray(lv < rv, dtype=bool)
    if op == "<=":
        return np.asarray(lv <= rv, dtype=bool)
    if op == ">":
        return np.asarray(lv > rv, dtype=bool)
    return np.asarray(lv >= rv, dtype=bool)


def evaluate(expr: Expr, env: Env) -> np.ndarray:
    """Evaluate *expr* to a value array of length ``env.nrows``."""
    v, _, _ = _eval(expr, env)
    return v


def evaluate_predicate(expr: Expr | None, env: Env) -> np.ndarray:
    """Evaluate a condition to a boolean mask (None = all True)."""
    if expr is None:
        return np.ones(env.nrows, dtype=bool)
    v, t, _ = _eval(expr, env)
    if t.kind != KIND_BOOL:
        raise ExecutionError(
            f"condition does not evaluate to a boolean (got {t.ddl()})"
        )
    return v.astype(bool)


def evaluate_scalar(expr: Expr) -> Any:
    """Evaluate a constant expression (no column refs) to a Python value."""
    env = Env.from_columns({}, 1)
    v, _, nm = _eval(expr, env)
    return None if nm[0] else (v[0].item() if isinstance(v[0], np.generic) else v[0])
