"""Table schemas: ordered, named, strongly-typed attribute lists."""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.dtypes import DataType
from repro.errors import CatalogError


class ColumnDef:
    """A single attribute declaration: name + type."""

    __slots__ = ("name", "dtype")

    def __init__(self, name: str, dtype: DataType) -> None:
        self.name = name
        self.dtype = dtype

    def ddl(self) -> str:
        return f"{self.name} {self.dtype.ddl()}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ColumnDef)
            and self.name == other.name
            and self.dtype == other.dtype
        )

    def __hash__(self) -> int:
        return hash((self.name, self.dtype))

    def __repr__(self) -> str:
        return f"ColumnDef({self.name!r}, {self.dtype!r})"


class Schema:
    """An ordered collection of :class:`ColumnDef` with unique names.

    Attribute names are case-sensitive, matching the paper's examples
    (``propertyNumeric_1``, ``reviewFor`` ...).
    """

    def __init__(self, columns: Iterable[ColumnDef]) -> None:
        self.columns: list[ColumnDef] = list(columns)
        self._index: dict[str, int] = {}
        for i, c in enumerate(self.columns):
            if c.name in self._index:
                raise CatalogError(f"duplicate column name {c.name!r} in schema")
            self._index[c.name] = i

    @classmethod
    def of(cls, *pairs: tuple[str, DataType]) -> "Schema":
        """Build a schema from (name, type) pairs."""
        return cls(ColumnDef(n, t) for n, t in pairs)

    def names(self) -> list[str]:
        return [c.name for c in self.columns]

    def types(self) -> list[DataType]:
        return [c.dtype for c in self.columns]

    def has(self, name: str) -> bool:
        return name in self._index

    def index_of(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise CatalogError(f"unknown column {name!r}") from None

    def type_of(self, name: str) -> DataType:
        return self.columns[self.index_of(name)].dtype

    def subset(self, names: Iterable[str]) -> "Schema":
        """A new schema containing only *names*, in the given order."""
        return Schema(self.columns[self.index_of(n)] for n in names)

    def concat(self, other: "Schema", prefix: str = "") -> "Schema":
        """Concatenate two schemas, optionally prefixing *other*'s names."""
        cols = list(self.columns)
        for c in other.columns:
            cols.append(ColumnDef(prefix + c.name, c.dtype))
        return Schema(cols)

    def ddl(self) -> str:
        inner = ",\n  ".join(c.ddl() for c in self.columns)
        return f"(\n  {inner}\n)"

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self) -> Iterator[ColumnDef]:
        return iter(self.columns)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Schema) and self.columns == other.columns

    def __repr__(self) -> str:
        return f"Schema({', '.join(c.ddl() for c in self.columns)})"
