"""Secondary indexes over table columns.

Two index kinds back the graph layer:

* :class:`HashIndex` — exact-match lookup from a key tuple to the row ids
  holding it.  This is how a vertex view maps a vertex key to its source
  row(s): one row for one-to-one mappings, several for many-to-one
  (Section II-A).
* :class:`SortedIndex` — a sorted-codes index supporting vectorized batch
  lookup (``lookup_many``), the building block the CSR edge index
  (:mod:`repro.graph.edge_index`) uses for bulk endpoint resolution.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.storage.table import Table


class HashIndex:
    """Exact-match index: key tuple -> int64 array of row ids."""

    def __init__(self, table: Table, key_names: Sequence[str]) -> None:
        self.key_names = list(key_names)
        self._map: dict[tuple, list[int]] = {}
        cols = [table.column(k) for k in self.key_names]
        for i in range(table.num_rows):
            key = tuple(c.value(i) for c in cols)
            self._map.setdefault(key, []).append(i)
        self._frozen: dict[tuple, np.ndarray] = {
            k: np.asarray(v, dtype=np.int64) for k, v in self._map.items()
        }

    def lookup(self, key: tuple) -> np.ndarray:
        """Row ids holding *key* (possibly empty)."""
        return self._frozen.get(tuple(key), np.empty(0, dtype=np.int64))

    def contains(self, key: tuple) -> bool:
        return tuple(key) in self._frozen

    def keys(self) -> list[tuple]:
        return list(self._frozen.keys())

    def __len__(self) -> int:
        return len(self._frozen)


class SortedIndex:
    """Vectorized batch-lookup index over a single int64 code array.

    Build once over ``codes`` (e.g. factorized key codes); then
    :meth:`lookup_many` maps a query array to (row_ids, query_offsets)
    fully vectorized via searchsorted.
    """

    def __init__(self, codes: np.ndarray) -> None:
        self.order = np.argsort(codes, kind="stable")
        self.sorted_codes = codes[self.order]

    def lookup_many(self, queries: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """For each query code, every matching row id.

        Returns ``(row_ids, query_index)`` aligned arrays: row ``row_ids[i]``
        matches ``queries[query_index[i]]``.
        """
        lo = np.searchsorted(self.sorted_codes, queries, side="left")
        hi = np.searchsorted(self.sorted_codes, queries, side="right")
        counts = hi - lo
        total = int(counts.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        qidx = np.repeat(np.arange(len(queries)), counts)
        starts = np.repeat(lo, counts)
        offsets = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
        return self.order[starts + offsets], qidx


def unique_key_codes(table: Table, key_names: Sequence[str]) -> tuple[np.ndarray, list[tuple]]:
    """Factorize key columns; return (codes per row, distinct key tuples).

    ``codes[i] == j`` means row *i* carries distinct key ``keys[j]``.
    Used by many-to-one vertex views where several rows share one key.
    """
    from repro.storage.relops import group_rows

    _, first, inv = group_rows(table, key_names)
    cols = [table.column(k) for k in key_names]
    keys = [tuple(c.value(int(i)) for c in cols) for i in first]
    return inv, keys


def key_tuple(table: Table, key_names: Sequence[str], row: int) -> tuple[Any, ...]:
    """The key tuple of one row (cold path)."""
    return tuple(table.column(k).value(row) for k in key_names)
