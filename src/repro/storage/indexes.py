"""Secondary indexes over table columns.

Three index kinds back the graph layer:

* :class:`HashIndex` — exact-match lookup from a key tuple to the row ids
  holding it.  This is how a vertex view maps a vertex key to its source
  row(s): one row for one-to-one mappings, several for many-to-one
  (Section II-A).
* :class:`SortedIndex` — a sorted-codes index supporting vectorized batch
  lookup (``lookup_many``), the building block the CSR edge index
  (:mod:`repro.graph.edge_index`) uses for bulk endpoint resolution.
* :class:`AttributeIndex` — a range-capable lexsorted index over one or
  more attribute arrays (vid-aligned), the access structure behind
  ``create index`` DDL.  Equality seeks narrow column by column through
  the lexsorted order; range seeks apply to the column following the
  equality prefix — the classic composite B-tree contract.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

import numpy as np

from repro.storage.table import Table


def _grouped_rows(codes: np.ndarray) -> tuple[np.ndarray, list[np.ndarray]]:
    """Split row ids by group code, vectorized.

    Returns ``(representative_rows, groups)`` where ``groups[g]`` holds
    the ascending row ids carrying the g-th distinct code (codes made
    dense by ``np.unique`` order) and ``representative_rows[g]`` is the
    first of them.
    """
    order = np.argsort(codes, kind="stable").astype(np.int64)
    sorted_codes = codes[order]
    boundaries = np.flatnonzero(sorted_codes[1:] != sorted_codes[:-1]) + 1
    groups = np.split(order, boundaries)
    reps = np.asarray([g[0] for g in groups], dtype=np.int64)
    return reps, groups


class HashIndex:
    """Exact-match index: key tuple -> int64 array of row ids.

    The build is fully vectorized: key columns are factorized into dense
    group codes (one ``np.unique`` pass per column) and rows are grouped
    with a single stable argsort + split, instead of a per-row Python
    loop over ``table.num_rows`` tuples.
    """

    def __init__(self, table: Table, key_names: Sequence[str]) -> None:
        self.key_names = list(key_names)
        cols = [table.column(k) for k in self.key_names]
        if table.num_rows == 0:
            self._frozen: dict[tuple, np.ndarray] = {}
            return
        codes = np.zeros(table.num_rows, dtype=np.int64)
        for c in cols:
            _, inv = np.unique(c.sort_key(), return_inverse=True)
            ck = inv.astype(np.int64)
            nm = c.null_mask()
            if nm.any():
                # sort_key folds NULL into a real value ("" for strings);
                # a null bit keeps the key tuples distinct
                ck = ck * 2 + nm
            k = int(ck.max()) + 1
            codes = codes * k + ck
        reps, groups = _grouped_rows(codes)
        # only the one representative row per distinct key is touched
        # scalar-wise; everything row-aligned stayed in NumPy
        self._frozen = {
            tuple(c.value(int(r)) for c in cols): rows
            for r, rows in zip(reps, groups)
        }

    def lookup(self, key: tuple) -> np.ndarray:
        """Row ids holding *key* (possibly empty)."""
        return self._frozen.get(tuple(key), np.empty(0, dtype=np.int64))

    def contains(self, key: tuple) -> bool:
        return tuple(key) in self._frozen

    def keys(self) -> list[tuple]:
        return list(self._frozen.keys())

    def __len__(self) -> int:
        return len(self._frozen)


class SortedIndex:
    """Vectorized batch-lookup index over a single int64 code array.

    Build once over ``codes`` (e.g. factorized key codes); then
    :meth:`lookup_many` maps a query array to (row_ids, query_offsets)
    fully vectorized via searchsorted.
    """

    def __init__(self, codes: np.ndarray) -> None:
        self.order = np.argsort(codes, kind="stable")
        self.sorted_codes = codes[self.order]

    def lookup_many(self, queries: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """For each query code, every matching row id.

        Returns ``(row_ids, query_index)`` aligned arrays: row ``row_ids[i]``
        matches ``queries[query_index[i]]``.
        """
        lo = np.searchsorted(self.sorted_codes, queries, side="left")
        hi = np.searchsorted(self.sorted_codes, queries, side="right")
        counts = hi - lo
        total = int(counts.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        qidx = np.repeat(np.arange(len(queries)), counts)
        starts = np.repeat(lo, counts)
        offsets = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
        return self.order[starts + offsets], qidx


class AttributeIndex:
    """Range-capable secondary index over vid-aligned attribute arrays.

    ``arrays[0]`` is the leading column; rows (vids) are lexsorted by the
    column sequence.  Seeks return **sorted** vid arrays so executor code
    can intersect them with other sorted vid sets directly:

    * :meth:`seek_eq` — all vids whose attribute prefix equals the given
      values (any prefix length up to the column count);
    * :meth:`seek_range` — vids in ``[lo, hi]`` (either bound optional,
      either bound exclusive) on the column right after an equality
      prefix.

    NULLs never match: rows carrying a NULL in any indexed column are
    dropped at build time (SQL semantics — ``a = NULL`` is not true).
    """

    def __init__(self, arrays: Sequence[np.ndarray], null_masks: Sequence[np.ndarray]) -> None:
        n = len(arrays[0])
        keep = np.ones(n, dtype=bool)
        for m in null_masks:
            keep &= ~m
        vids = np.flatnonzero(keep).astype(np.int64)
        kept = [self._sortable(a[vids]) for a in arrays]
        if len(kept) == 1:
            order = np.argsort(kept[0], kind="stable")
        else:
            order = np.lexsort(tuple(reversed(kept)))
        #: vids in lexsorted attribute order
        self.vids: np.ndarray = vids[order]
        #: per-column attribute values aligned with ``self.vids``
        self.sorted_cols: list[np.ndarray] = [a[order] for a in kept]
        self.num_entries = len(self.vids)

    @staticmethod
    def _sortable(arr: np.ndarray) -> np.ndarray:
        """A totally-ordered view of *arr* (strings stay object dtype)."""
        if arr.dtype == np.dtype(object):
            return np.array([str(v) for v in arr], dtype=object)
        return arr

    def _narrow(self, lo: int, hi: int, col: int, value: Any) -> tuple[int, int]:
        sc = self.sorted_cols[col][lo:hi]
        return (
            lo + int(np.searchsorted(sc, value, side="left")),
            lo + int(np.searchsorted(sc, value, side="right")),
        )

    def seek_eq(self, values: Sequence[Any]) -> np.ndarray:
        """Sorted vids whose leading attributes equal *values*."""
        lo, hi = 0, self.num_entries
        for col, v in enumerate(values):
            lo, hi = self._narrow(lo, hi, col, v)
            if lo >= hi:
                break
        return np.sort(self.vids[lo:hi])

    def seek_range(
        self,
        low: Optional[Any] = None,
        high: Optional[Any] = None,
        *,
        low_exclusive: bool = False,
        high_exclusive: bool = False,
        prefix: Sequence[Any] = (),
    ) -> np.ndarray:
        """Sorted vids with ``low <= col <= high`` after an equality *prefix*.

        The range applies to column ``len(prefix)``; bounds are optional
        and may be exclusive.
        """
        lo, hi = 0, self.num_entries
        for col, v in enumerate(prefix):
            lo, hi = self._narrow(lo, hi, col, v)
            if lo >= hi:
                return np.empty(0, dtype=np.int64)
        col = len(prefix)
        sc = self.sorted_cols[col][lo:hi]
        if low is not None:
            side = "right" if low_exclusive else "left"
            lo2 = int(np.searchsorted(sc, low, side=side))
        else:
            lo2 = 0
        if high is not None:
            side = "left" if high_exclusive else "right"
            hi2 = int(np.searchsorted(sc, high, side=side))
        else:
            hi2 = hi - lo
        return np.sort(self.vids[lo + lo2 : lo + hi2])

    def __len__(self) -> int:
        return self.num_entries


def unique_key_codes(table: Table, key_names: Sequence[str]) -> tuple[np.ndarray, list[tuple]]:
    """Factorize key columns; return (codes per row, distinct key tuples).

    ``codes[i] == j`` means row *i* carries distinct key ``keys[j]``.
    Used by many-to-one vertex views where several rows share one key.
    """
    from repro.storage.relops import group_rows

    _, first, inv = group_rows(table, key_names)
    cols = [table.column(k) for k in key_names]
    keys = [tuple(c.value(int(i)) for c in cols) for i in first]
    return inv, keys


def key_tuple(table: Table, key_names: Sequence[str], row: int) -> tuple[Any, ...]:
    """The key tuple of one row (cold path)."""
    return tuple(table.column(k).value(row) for k in key_names)
