"""Tabular storage engine.

First design principle of the paper: *all data is stored in tabular form*
(Section I).  This package is the in-memory columnar table store that
everything else — vertex views, edge views, the relational subset of GraQL
(Table I) — is built on.

Layout follows the HPC guidance for Python: each attribute is a flat NumPy
array (int64 / float64 / object), operators are vectorized (masks, argsort,
bincount, reduceat) rather than row loops, and row-id arrays (``int64``
index vectors) are the universal currency between operators so data is
never copied until materialization.
"""

from repro.storage.column import Column
from repro.storage.csvio import read_csv_into, write_csv
from repro.storage.schema import ColumnDef, Schema
from repro.storage.table import Table

__all__ = ["Column", "ColumnDef", "Schema", "Table", "read_csv_into", "write_csv"]
