"""In-memory tables: a named schema plus aligned columns.

Tables are *logically immutable*: every operator returns a new ``Table``
sharing column arrays where possible (views, not copies — per the HPC
guidance).  The only mutating operation is :meth:`Table.append_rows`,
used by atomic CSV ingest, which replaces the column set wholesale.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Sequence

import numpy as np

from repro.errors import CatalogError
from repro.storage.column import Column
from repro.storage.schema import ColumnDef, Schema


class Row(tuple):
    """One result row: a tuple whose fields are also name-addressable.

    Supports positional access (``row[0]``, unpacking), mapping-style
    access (``row["id"]``) and attribute access (``row.id``) — the
    cursor/driver convention.  Rows are produced lazily by
    :meth:`Table.iter_batches`; the schema's column names are shared
    across every row of a batch, so the per-row overhead is one extra
    slot.
    """

    __slots__ = ()

    #: column names, positionally aligned with the tuple; an instance
    #: attribute is impossible on a tuple subclass with empty
    #: ``__slots__``, so each result schema gets its own Row subclass
    #: (one class per table, shared by every row)
    _names: tuple[str, ...] = ()

    @classmethod
    def make_class(cls, names: Sequence[str]) -> type:
        """A Row subclass bound to *names* (one per result schema)."""
        return type("Row", (cls,), {"__slots__": (), "_names": tuple(names)})

    def keys(self) -> tuple[str, ...]:
        return self._names

    def as_dict(self) -> dict[str, Any]:
        return dict(zip(self._names, self))

    def __getitem__(self, key):  # type: ignore[override]
        if isinstance(key, str):
            try:
                return tuple.__getitem__(self, self._names.index(key))
            except ValueError:
                raise KeyError(key) from None
        return tuple.__getitem__(self, key)

    def __getattr__(self, name: str) -> Any:
        try:
            return tuple.__getitem__(self, self._names.index(name))
        except ValueError:
            raise AttributeError(
                f"row has no column {name!r} (columns: {', '.join(self._names)})"
            ) from None

    def __repr__(self) -> str:
        inner = ", ".join(f"{n}={v!r}" for n, v in zip(self._names, self))
        return f"Row({inner})"


class Table:
    """A named, strongly-typed, columnar table."""

    def __init__(self, name: str, schema: Schema, columns: list[Column] | None = None) -> None:
        self.name = name
        self.schema = schema
        if columns is None:
            columns = [Column.empty(c.dtype) for c in schema]
        if len(columns) != len(schema):
            raise CatalogError(
                f"table {name!r}: {len(columns)} columns for {len(schema)} schema entries"
            )
        n = len(columns[0]) if columns else 0
        for c in columns:
            if len(c) != n:
                raise CatalogError(f"table {name!r}: ragged column lengths")
        self.columns = columns

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(cls, name: str, schema: Schema, rows: Iterable[Sequence[Any]]) -> "Table":
        """Build a table from row tuples of stored values."""
        rows = list(rows)
        cols = []
        for i, cdef in enumerate(schema):
            cols.append(Column.from_values(cdef.dtype, [r[i] for r in rows]))
        return cls(name, schema, cols)

    @classmethod
    def from_texts(cls, name: str, schema: Schema, rows: Iterable[Sequence[str]]) -> "Table":
        """Build a table by parsing textual fields (CSV-style)."""
        rows = list(rows)
        cols = []
        for i, cdef in enumerate(schema):
            cols.append(
                Column.from_values(cdef.dtype, [cdef.dtype.parse(r[i]) for r in rows])
            )
        return cls(name, schema, cols)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        return len(self.columns[0]) if self.columns else 0

    @property
    def num_columns(self) -> int:
        return len(self.columns)

    def column(self, name: str) -> Column:
        return self.columns[self.schema.index_of(name)]

    def column_at(self, i: int) -> Column:
        return self.columns[i]

    def _row_class(self) -> type:
        cls = getattr(self, "_row_cls", None)
        names = tuple(self.schema.names())
        if cls is None or cls._names != names:
            cls = Row.make_class(names)
            self._row_cls = cls
        return cls

    def row(self, i: int) -> "Row":
        cls = self._row_class()
        return cls(c.value(i) for c in self.columns)

    def iter_rows(self) -> Iterator["Row"]:
        for batch in self.iter_batches():
            yield from batch

    def iter_batches(self, batch_size: int = 1024) -> Iterator[list["Row"]]:
        """Yield rows in batches of up to *batch_size*.

        Row production is vectorized per batch: each column is sliced
        and converted to Python values once per batch (one
        ``Column.values`` call) instead of one ``c.value(i)`` round-trip
        per cell.  This is what cursor streaming (``fetchmany``) sits
        on: rows materialize as the consumer advances, never all at
        once.
        """
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        cls = self._row_class()
        n = self.num_rows
        for start in range(0, n, batch_size):
            stop = min(start + batch_size, n)
            cols = [c.slice_values(start, stop) for c in self.columns]
            yield [cls(vals) for vals in zip(*cols)]

    def to_rows(self) -> list["Row"]:
        return list(self.iter_rows())

    def column_dict(self) -> dict[str, np.ndarray]:
        """Raw arrays keyed by column name (zero-copy)."""
        return {c.name: col.data for c, col in zip(self.schema, self.columns)}

    # ------------------------------------------------------------------
    # Vectorized transformations (return new tables)
    # ------------------------------------------------------------------
    def take(self, indices: np.ndarray, name: str | None = None) -> "Table":
        return Table(name or self.name, self.schema, [c.take(indices) for c in self.columns])

    def filter(self, mask: np.ndarray, name: str | None = None) -> "Table":
        return Table(name or self.name, self.schema, [c.filter(mask) for c in self.columns])

    def project(self, names: Sequence[str], name: str | None = None) -> "Table":
        idx = [self.schema.index_of(n) for n in names]
        return Table(
            name or self.name,
            Schema(self.schema.columns[i] for i in idx),
            [self.columns[i] for i in idx],
        )

    def rename_columns(self, mapping: dict[str, str], name: str | None = None) -> "Table":
        cols = [
            ColumnDef(mapping.get(c.name, c.name), c.dtype) for c in self.schema
        ]
        return Table(name or self.name, Schema(cols), list(self.columns))

    def with_column(self, cdef: ColumnDef, col: Column, name: str | None = None) -> "Table":
        if len(col) != self.num_rows and self.num_columns > 0:
            raise CatalogError(
                f"column length {len(col)} != table rows {self.num_rows}"
            )
        return Table(
            name or self.name,
            Schema(list(self.schema.columns) + [cdef]),
            list(self.columns) + [col],
        )

    def head(self, n: int, name: str | None = None) -> "Table":
        return self.take(np.arange(min(n, self.num_rows)), name)

    def concat(self, other: "Table", name: str | None = None) -> "Table":
        if other.schema.types() != self.schema.types():
            raise CatalogError(
                f"cannot concat tables with different schemas: "
                f"{self.name!r} vs {other.name!r}"
            )
        return Table(
            name or self.name,
            self.schema,
            [a.concat(b) for a, b in zip(self.columns, other.columns)],
        )

    # ------------------------------------------------------------------
    # Mutation (ingest only)
    # ------------------------------------------------------------------
    def append_rows(self, rows: Iterable[Sequence[Any]]) -> None:
        """Append stored-form rows in place (atomic-ingest building block)."""
        appended = Table.from_rows(self.name, self.schema, rows)
        merged = self.concat(appended)
        self.columns = merged.columns

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def pretty(self, limit: int = 20) -> str:
        """Fixed-width textual rendering (CLI output)."""
        names = self.schema.names()
        shown = [
            [c.dtype.format(col.value(i)) or "NULL" for c, col in zip(self.schema, self.columns)]
            for i in range(min(limit, self.num_rows))
        ]
        widths = [
            max(len(n), *(len(r[j]) for r in shown)) if shown else len(n)
            for j, n in enumerate(names)
        ]
        lines = [
            " | ".join(n.ljust(w) for n, w in zip(names, widths)),
            "-+-".join("-" * w for w in widths),
        ]
        for r in shown:
            lines.append(" | ".join(v.ljust(w) for v, w in zip(r, widths)))
        if self.num_rows > limit:
            lines.append(f"... ({self.num_rows} rows total)")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Table({self.name!r}, rows={self.num_rows}, cols={self.schema.names()})"
