"""CSV ingest and export (paper Section II-A2).

``ingest table Products products.csv`` parses a CSV file *according to the
data types of the attributes in the corresponding table* and appends the
rows atomically: either every row parses and the table (plus its dependent
vertex/edge views, handled a layer up) is updated, or nothing changes and
an :class:`~repro.errors.IngestError` pinpoints the bad row.

Files may optionally start with a header row repeating the column names;
it is detected and skipped.
"""

from __future__ import annotations

import csv
import io
import os
from typing import Any, Sequence

from repro.errors import IngestError
from repro.storage.atomic import replace_file
from repro.storage.table import Table


def _parse_rows(table: Table, reader, source: str) -> list[tuple[Any, ...]]:
    schema = table.schema
    names = schema.names()
    types = schema.types()
    width = len(schema)
    rows: list[tuple[Any, ...]] = []
    for lineno, fields in enumerate(reader, start=1):
        if not fields or (len(fields) == 1 and fields[0].strip() == ""):
            continue  # blank line
        if lineno == 1 and [f.strip() for f in fields] == names:
            continue  # header row
        if len(fields) != width:
            raise IngestError(
                f"{source}:{lineno}: expected {width} fields for table "
                f"{table.name!r}, got {len(fields)}"
            )
        parsed = []
        for name, dtype, field in zip(names, types, fields):
            try:
                parsed.append(dtype.parse(field.strip()))
            except ValueError as e:
                raise IngestError(
                    f"{source}:{lineno}: column {name!r}: {e}"
                ) from e
        rows.append(tuple(parsed))
    return rows


def read_csv_into(table: Table, path: str) -> int:
    """Ingest *path* into *table* atomically.  Returns rows appended."""
    if not os.path.exists(path):
        raise IngestError(f"ingest file not found: {path}")
    with open(path, newline="", encoding="utf-8") as fh:
        rows = _parse_rows(table, csv.reader(fh), path)
    table.append_rows(rows)  # only reached if every row parsed
    return len(rows)


def read_csv_text_into(table: Table, text: str, source: str = "<string>") -> int:
    """Ingest CSV *text* (used by tests and in-memory workload generators)."""
    rows = _parse_rows(table, csv.reader(io.StringIO(text)), source)
    table.append_rows(rows)
    return len(rows)


def write_csv(table: Table, path: str, header: bool = True) -> None:
    """Export *table* to CSV, formatting values with their declared types.

    The write is atomic (temp file + rename via
    :func:`repro.storage.atomic.replace_file`, shared with the
    checkpoint writer): a process death mid-export leaves either the
    previous file or the complete new one, never a truncated mix.
    """
    with replace_file(path, "w", newline="", encoding="utf-8") as fh:
        w = csv.writer(fh)
        if header:
            w.writerow(table.schema.names())
        types = table.schema.types()
        for i in range(table.num_rows):
            w.writerow(
                dtype.format(col.value(i))
                for dtype, col in zip(types, table.columns)
            )


def rows_to_csv_text(schema_types: Sequence, rows: Sequence[Sequence[Any]]) -> str:
    """Render stored-form rows as CSV text (generator support)."""
    buf = io.StringIO()
    w = csv.writer(buf)
    for r in rows:
        w.writerow(t.format(v) for t, v in zip(schema_types, r))
    return buf.getvalue()
