"""Crash-safe file writes: temp file in the same directory + atomic rename.

A plain ``open(path, "w")`` truncates the destination immediately, so a
process death mid-write leaves a torn file where good data used to be.
Every writer in this codebase that produces a file another process (or a
recovery pass) may read — CSV export, snapshot checkpoints — goes
through :func:`replace_file` instead:

1. the content is written to ``<path>.<pid>.tmp`` in the *same*
   directory (rename across filesystems is not atomic);
2. the temp file is flushed and (optionally) fsynced;
3. ``os.replace`` atomically installs it over the destination;
4. the parent directory is (optionally) fsynced so the rename itself is
   durable.

A crash at any point leaves either the old file or the new file, never a
mix, plus at worst a stale ``*.tmp`` that readers ignore.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import IO, Any, Iterator


def fsync_file(fh: IO[Any]) -> None:
    """Flush python buffers and force the file's bytes to stable storage."""
    fh.flush()
    os.fsync(fh.fileno())


def fsync_dir(path: str) -> None:
    """fsync a directory, making renames/creates inside it durable.

    Best-effort: some platforms/filesystems refuse to open directories
    (e.g. Windows); there the rename durability is the OS's problem.
    """
    try:
        fd = os.open(path or ".", os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def temp_path_for(path: str) -> str:
    """The sibling temp-file name writes stage into (pid-unique)."""
    return f"{path}.{os.getpid()}.tmp"


@contextmanager
def replace_file(
    path: str,
    mode: str = "w",
    *,
    encoding: "str | None" = None,
    newline: "str | None" = None,
    durable: bool = False,
) -> Iterator[IO[Any]]:
    """Write-then-rename: yields a temp-file handle; on clean exit the
    temp file atomically replaces *path*.  On error the temp file is
    removed and *path* is untouched.

    ``durable=True`` additionally fsyncs the file before the rename and
    the directory after it — the checkpoint writer's requirement; plain
    exports skip the fsyncs and settle for atomicity alone.
    """
    tmp = temp_path_for(path)
    fh = open(tmp, mode, encoding=encoding, newline=newline)
    try:
        yield fh
        if durable:
            fsync_file(fh)
        fh.close()
    except BaseException:
        fh.close()
        try:
            os.remove(tmp)
        except OSError:
            pass
        raise
    os.replace(tmp, path)
    if durable:
        fsync_dir(os.path.dirname(os.path.abspath(path)))


def install_file(path: str, tmp: str, *, durable: bool = True) -> None:
    """Atomically install the fully-written temp file *tmp* at *path*.

    The rename-is-commit step shared by :func:`replace_file` users that
    need fault points *between* write, fsync and rename (the checkpoint
    writer): they stage bytes into :func:`temp_path_for` themselves and
    call this to publish.
    """
    os.replace(tmp, path)
    if durable:
        fsync_dir(os.path.dirname(os.path.abspath(path)))
