"""The table/graph duality bridge for result subgraphs.

    "We have discussed the key features of GraQL/GEMS including ...
    flexible manipulation of query results as subgraphs and tables."
    (Conclusions)

A named subgraph is a per-type selection of vertices and edges; this
module renders it back into tables so the relational subset can keep
working on it: one table per vertex type (the visible attributes of the
selected vertices) and one per edge type (source/target keys plus the
edge's associated-table attributes).
"""

from __future__ import annotations

from repro.graph.graphdb import GraphDB
from repro.graph.subgraph import Subgraph
from repro.storage.column import Column
from repro.storage.schema import ColumnDef, Schema
from repro.storage.table import Table


def vertex_table(db: GraphDB, sg: Subgraph, type_name: str, table_name: str | None = None) -> Table:
    """The selected vertices of one type as an attribute table."""
    vt = db.vertex_type(type_name)
    vids = sg.vertex_ids(type_name)
    defs: list[ColumnDef] = []
    cols: list[Column] = []
    for cdef in vt.attribute_schema():
        arr, dtype = vt.attribute_array(cdef.name)
        defs.append(ColumnDef(cdef.name, dtype))
        cols.append(Column(dtype, arr[vids]))
    return Table(table_name or f"{sg.name}_{type_name}", Schema(defs), cols)


def edge_table(db: GraphDB, sg: Subgraph, type_name: str, table_name: str | None = None) -> Table:
    """The selected edges of one type: endpoint keys + edge attributes."""
    et = db.edge_type(type_name)
    eids = sg.edge_ids(type_name)
    defs: list[ColumnDef] = []
    cols: list[Column] = []
    src_vids = et.src_vids[eids]
    tgt_vids = et.tgt_vids[eids]
    for endpoint, vids, prefix in (
        (et.source, src_vids, "source_"),
        (et.target, tgt_vids, "target_"),
    ):
        for kc in endpoint.key_cols:
            arr, dtype = endpoint.attribute_array(kc)
            defs.append(ColumnDef(f"{prefix}{kc}", dtype))
            cols.append(Column(dtype, arr[vids]))
    for cdef in et.attribute_schema():
        arr, dtype = et.attribute_array(cdef.name)
        defs.append(ColumnDef(cdef.name, dtype))
        cols.append(Column(dtype, arr[eids]))
    return Table(table_name or f"{sg.name}_{type_name}", Schema(defs), cols)


def subgraph_tables(db: GraphDB, sg: Subgraph) -> dict[str, Table]:
    """Every type of the subgraph as a table, keyed by type name.

    Vertex and edge types share a namespace in the result (they already
    do in the catalog), so the keys never collide.
    """
    out: dict[str, Table] = {}
    for t in sg.vertices:
        out[t] = vertex_table(db, sg, t)
    for t in sg.edges:
        out[t] = edge_table(db, sg, t)
    return out


def register_subgraph_tables(
    db: GraphDB, catalog, sg: Subgraph, prefix: str | None = None
) -> list[str]:
    """Register each per-type table as a derived result table.

    Names are ``{prefix or subgraph name}_{type}``; returns the names so
    follow-up relational statements can reference them.
    """
    base = prefix or sg.name
    names: list[str] = []
    for t, table in subgraph_tables(db, sg).items():
        name = f"{base}_{t}"
        renamed = Table(name, table.schema, table.columns)
        db.register_result_table(name, renamed)
        catalog.register_result_table(name, renamed)
        names.append(name)
    return names
