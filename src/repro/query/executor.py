"""Top-level statement execution and pattern composition.

Dispatches every GraQL statement kind against a
:class:`~repro.graph.graphdb.GraphDB` + :class:`~repro.catalog.Catalog`
pair, and implements multi-path composition (Section II-B3):

* ``and`` — atoms share labels.  Under set semantics the atoms run
  left-to-right sharing a label environment, then a short fixpoint
  iteration re-culls each atom with the intersection of every label's
  defining and referencing sets (so a constraint discovered in the right
  path propagates back into the left path's matched subgraph).  Under
  binding semantics the atoms' path tables are equi-joined on the shared
  label columns.
* ``or`` — the union of the matched subgraphs.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

import numpy as np

from repro.catalog import Catalog
from repro.errors import ExecutionError
from repro.graph.graphdb import GraphDB
from repro.graph.subgraph import Subgraph
from repro.graql.ast import (
    CreateEdge,
    CreateTable,
    CreateVertex,
    GraphSelect,
    Ingest,
    INTO_SUBGRAPH,
    Script,
    Statement,
    TableSelect,
)
from repro.graql.params import substitute_statement
from repro.graql.typecheck import (
    CheckedGraphSelect,
    RAtom,
    RVertexStep,
    check_statement,
)
from repro.query.bindings import BindingExecutor
from repro.query.frontier import AtomSets, FrontierExecutor
from repro.query.planner import QueryPlan, plan_graph_select
from repro.query.relational import execute_table_select
from repro.query.results import (
    JoinedBindings,
    NameMap,
    subgraph_from_bindings,
    subgraph_from_sets,
    table_from_bindings,
)
from repro.storage.table import Table

#: max and-composition refinement rounds under set semantics
MAX_REFINE_ROUNDS = 4


class StatementResult:
    """Outcome of executing one statement."""

    def __init__(
        self,
        kind: str,
        table: Optional[Table] = None,
        subgraph: Optional[Subgraph] = None,
        message: str = "",
        count: int = 0,
        plan: Optional[QueryPlan] = None,
        degraded: bool = False,
        degraded_reason: str = "",
        recovery: Optional[dict] = None,
    ) -> None:
        self.kind = kind  # 'ddl' | 'ingest' | 'table' | 'subgraph'
        self.table = table
        self.subgraph = subgraph
        self.message = message
        self.count = count
        self.plan = plan
        #: True when the cluster fell back to single-node execution
        #: (circuit breaker open or fatal backend failure); the reason
        #: names what degraded (docs/RELIABILITY.md)
        self.degraded = degraded
        self.degraded_reason = degraded_reason
        #: per-statement fault-recovery cost (retries, failovers,
        #: backoff, extra messages/bytes) when run on the cluster
        self.recovery = recovery

    def __repr__(self) -> str:
        if self.kind == "table" and self.table is not None:
            return f"StatementResult(table {self.table.name!r}, rows={self.table.num_rows})"
        if self.kind == "subgraph" and self.subgraph is not None:
            return f"StatementResult({self.subgraph!r})"
        return f"StatementResult({self.kind}, {self.message!r})"


# ----------------------------------------------------------------------
# Statement dispatch
# ----------------------------------------------------------------------

def execute_statement(
    db: GraphDB,
    catalog: Catalog,
    stmt: Statement,
    params: Optional[Mapping[str, Any]] = None,
    force_direction: Optional[str] = None,
    force_strategy: Optional[str] = None,
) -> StatementResult:
    """Type-check and execute one statement (parameters substituted first)."""
    if params:
        stmt = substitute_statement(stmt, params)
    checked = check_statement(stmt, catalog)
    if isinstance(stmt, CreateTable):
        db.create_table(stmt.name, stmt.schema)
        catalog.refresh(db)
        return StatementResult("ddl", message=f"created table {stmt.name}")
    if isinstance(stmt, CreateVertex):
        vt = db.create_vertex(stmt.name, stmt.key_cols, stmt.table, stmt.where)
        catalog.refresh(db)
        return StatementResult(
            "ddl", message=f"created vertex {stmt.name}", count=vt.num_vertices
        )
    if isinstance(stmt, CreateEdge):
        et = db.create_edge(
            stmt.name,
            stmt.source.type_name,
            stmt.target.type_name,
            stmt.source.ref_name,
            stmt.target.ref_name,
            stmt.from_tables,
            stmt.where,
        )
        catalog.refresh(db)
        return StatementResult(
            "ddl", message=f"created edge {stmt.name}", count=et.num_edges
        )
    if isinstance(stmt, Ingest):
        n = db.ingest(stmt.table, stmt.path)
        catalog.refresh(db)
        return StatementResult(
            "ingest", message=f"ingested {n} rows into {stmt.table}", count=n
        )
    if isinstance(stmt, TableSelect):
        table = execute_table_select(db, stmt)
        if stmt.into is not None:
            db.register_result_table(stmt.into.name, table)
            catalog.register_result_table(stmt.into.name, table)
        return StatementResult("table", table=table, count=table.num_rows)
    assert isinstance(checked, CheckedGraphSelect)
    return _execute_graph_select(
        db, catalog, checked, force_direction, force_strategy
    )


def execute_script(
    db: GraphDB,
    catalog: Catalog,
    script: Script,
    params: Optional[Mapping[str, Any]] = None,
) -> list[StatementResult]:
    """Execute a whole GraQL script in order (Section III's Omega)."""
    return [
        execute_statement(db, catalog, stmt, params) for stmt in script.statements
    ]


# ----------------------------------------------------------------------
# Graph select execution
# ----------------------------------------------------------------------

def _execute_graph_select(
    db: GraphDB,
    catalog: Catalog,
    checked: CheckedGraphSelect,
    force_direction: Optional[str],
    force_strategy: Optional[str],
) -> StatementResult:
    stmt = checked.stmt
    plan = plan_graph_select(checked, catalog, force_direction, force_strategy)
    atoms = checked.pattern.atoms()
    ordinals = {id(a): i for i, a in enumerate(atoms)}
    name_map = NameMap()
    for i, a in enumerate(atoms):
        name_map.add_atom(i, a)
    result_name = stmt.into.name if stmt.into is not None else "result"

    if plan.strategy == "set":
        atom_results = _run_set(db, checked, plan, atoms, ordinals)
        subgraph = subgraph_from_sets(
            stmt, [(a, atom_results[i]) for i, a in enumerate(atoms)], name_map, result_name
        )
        if stmt.into is not None and stmt.into.kind == INTO_SUBGRAPH:
            db.register_subgraph(subgraph)
            catalog.subgraphs[subgraph.name] = {
                k: len(v) for k, v in subgraph.vertices.items()
            }
        return StatementResult(
            "subgraph", subgraph=subgraph, count=subgraph.num_vertices, plan=plan
        )

    # binding strategy
    branches = _run_bindings(db, catalog, checked, plan, ordinals)
    if stmt.into is not None and stmt.into.kind == INTO_SUBGRAPH:
        subgraph = Subgraph(result_name)
        for jb in branches:
            subgraph = subgraph.union(
                subgraph_from_bindings(stmt, jb, name_map, result_name, db),
                result_name,
            )
        db.register_subgraph(subgraph)
        catalog.subgraphs[subgraph.name] = {
            k: len(v) for k, v in subgraph.vertices.items()
        }
        return StatementResult(
            "subgraph", subgraph=subgraph, count=subgraph.num_vertices, plan=plan
        )
    if len(branches) != 1:
        raise ExecutionError("'or' composition cannot produce a table result")
    table = table_from_bindings(stmt, branches[0], name_map, result_name, db)
    if stmt.into is not None:
        db.register_result_table(stmt.into.name, table)
        catalog.register_result_table(stmt.into.name, table)
    return StatementResult("table", table=table, count=table.num_rows, plan=plan)


def _run_set(db, checked, plan, atoms, ordinals) -> dict[int, AtomSets]:
    """Run all atoms under set semantics with and-composition refinement."""
    fx = FrontierExecutor(db)
    results: dict[int, AtomSets] = {}

    def run_all():
        for a in atoms:
            direction = plan.plan_for(a).direction
            results[ordinals[id(a)]] = fx.run_atom(a, direction)

    run_all()
    # refinement: intersect each label's defining set with every
    # referencing step's final set; rerun until stable
    pairs = _label_def_ref_pairs(atoms, ordinals)
    for _ in range(MAX_REFINE_ROUNDS):
        changed = False
        for label, (d_ord, d_pos), refs in pairs:
            def_sets = results[d_ord].vertex_sets.get(d_pos, {})
            refined = def_sets
            for r_ord, r_pos in refs:
                ref_sets = results[r_ord].vertex_sets.get(r_pos, {})
                refined = {
                    t: np.intersect1d(v, ref_sets.get(t, np.empty(0, dtype=np.int64)))
                    for t, v in refined.items()
                }
            refined = {t: v for t, v in refined.items() if len(v)}
            if _sizes(refined) != _sizes(def_sets):
                fx.pin_labels[label] = refined
                changed = True
        if not changed:
            break
        fx.label_env.clear()
        run_all()
    return results


def _sizes(sets) -> dict[str, int]:
    return {t: len(v) for t, v in sets.items()}


def _label_def_ref_pairs(atoms, ordinals):
    """[(label, (def_ord, def_pos), [(ref_ord, ref_pos), ...])]"""
    defs: dict[str, tuple[int, int]] = {}
    refs: dict[str, list[tuple[int, int]]] = {}
    for a in atoms:
        o = ordinals[id(a)]
        for pos, s in enumerate(a.steps):
            if isinstance(s, RVertexStep):
                if s.label is not None:
                    defs[s.label.name] = (o, pos)
                if s.label_ref is not None:
                    refs.setdefault(s.label_ref, []).append((o, pos))
    return [
        (label, loc, refs[label]) for label, loc in defs.items() if label in refs
    ]


def _run_bindings(db, catalog, checked, plan, ordinals) -> list[JoinedBindings]:
    """Run the composition tree under path enumeration.

    Returns one JoinedBindings per or-branch (a single element when the
    pattern has no 'or').
    """
    fx = FrontierExecutor(db)
    bex = BindingExecutor(db, catalog, frontier=fx)

    def run(node) -> list[JoinedBindings]:
        if isinstance(node, RAtom):
            o = ordinals[id(node)]
            res = bex.run_atom(node, plan.plan_for(node).direction)
            return [JoinedBindings.from_result(o, res, node)]
        op, left, right = node
        lbs = run(left)
        rbs = run(right)
        if op == "or":
            return lbs + rbs
        out = []
        for lb in lbs:
            for rb in rbs:
                pairs = _shared_label_pairs(lb, rb)
                out.append(lb.join(rb, pairs))
        return out

    return run(checked.pattern.root)


def _shared_label_pairs(lb: JoinedBindings, rb: JoinedBindings):
    """Join keys: (left def column, right ref column) per shared label."""
    left_defs: dict[str, tuple[int, str, int]] = {}
    for aord, steps in lb._steps.items():
        for pos, s in enumerate(steps):
            if isinstance(s, RVertexStep) and s.label is not None:
                left_defs[s.label.name] = (aord, "v", pos)
    pairs = []
    for aord, steps in rb._steps.items():
        for pos, s in enumerate(steps):
            if isinstance(s, RVertexStep) and s.label_ref in left_defs:
                pairs.append((left_defs[s.label_ref], (aord, "v", pos)))
    return pairs
