"""Top-level statement execution and pattern composition.

Dispatches every GraQL statement kind against a
:class:`~repro.graph.graphdb.GraphDB` + :class:`~repro.catalog.Catalog`
pair, and implements multi-path composition (Section II-B3):

* ``and`` — atoms share labels.  Under set semantics the atoms run
  left-to-right sharing a label environment, then a short fixpoint
  iteration re-culls each atom with the intersection of every label's
  defining and referencing sets (so a constraint discovered in the right
  path propagates back into the left path's matched subgraph).  Under
  binding semantics the atoms' path tables are equi-joined on the shared
  label columns.
* ``or`` — the union of the matched subgraphs.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from enum import Enum
from typing import Any, Iterator, Mapping, Optional

import numpy as np

from repro.catalog import Catalog
from repro.errors import ExecutionError
from repro.graph.graphdb import GraphDB
from repro.graph.subgraph import Subgraph
from repro.graql.ast import (
    CreateEdge,
    CreateIndex,
    CreateTable,
    CreateVertex,
    DropIndex,
    GraphSelect,
    Ingest,
    INTO_SUBGRAPH,
    Script,
    Statement,
    TableSelect,
)
from repro.graql.params import substitute_statement
from repro.graql.typecheck import (
    CheckedGraphSelect,
    RAtom,
    REdgeStep,
    RRegex,
    RVertexStep,
    check_statement,
)
from repro.obs.options import QueryOptions, reject_legacy_kwargs, resolve_options
from repro.obs.profile import AtomProfile, QueryProfile, StepProfile
from repro.obs.trace import Tracer
from repro.query.bindings import BindingExecutor
from repro.query.frontier import AtomSets, FrontierExecutor
from repro.query.planner import AtomPlan, QueryPlan, plan_graph_select
from repro.query.relational import execute_table_select
from repro.query.results import (
    JoinedBindings,
    NameMap,
    subgraph_from_bindings,
    subgraph_from_sets,
    table_from_bindings,
)
from repro.storage.table import Table

#: max and-composition refinement rounds under set semantics
MAX_REFINE_ROUNDS = 4


@contextmanager
def _stage(
    name: str, profile: Optional[QueryProfile], tracer: Optional[Tracer]
) -> Iterator[None]:
    """Time one pipeline stage into the profile (and span it if traced)."""
    if tracer is None:
        # hot path: two perf_counter calls and a list append
        t0 = time.perf_counter()
        try:
            yield
        finally:
            if profile is not None:
                profile.add_stage(name, (time.perf_counter() - t0) * 1000.0)
    else:
        with tracer.span(name):
            t0 = time.perf_counter()
            try:
                yield
            finally:
                if profile is not None:
                    profile.add_stage(
                        name, (time.perf_counter() - t0) * 1000.0
                    )


class StatementKind(str, Enum):
    """Stable classification of a :class:`StatementResult`.

    A ``str`` subclass, so existing ``result.kind == "table"`` call sites
    keep working; new code can match on the enum members.  ``__str__``
    is pinned to the plain string form so f-strings render ``"table"``
    identically on every supported Python version.
    """

    DDL = "ddl"
    INGEST = "ingest"
    TABLE = "table"
    SUBGRAPH = "subgraph"

    __str__ = str.__str__

    @property
    def is_write(self) -> bool:
        """True for statements that mutate the database or catalog."""
        return self in (StatementKind.DDL, StatementKind.INGEST)


class StatementResult:
    """Outcome of executing one statement."""

    def __init__(
        self,
        kind: "str | StatementKind",
        table: Optional[Table] = None,
        subgraph: Optional[Subgraph] = None,
        message: str = "",
        count: int = 0,
        plan: Optional[QueryPlan] = None,
        degraded: bool = False,
        degraded_reason: str = "",
        recovery: Optional[dict] = None,
        profile: Optional[QueryProfile] = None,
    ) -> None:
        self.kind = StatementKind(kind)
        self.table = table
        self.subgraph = subgraph
        self.message = message
        self.count = count
        self.plan = plan
        #: True when the cluster fell back to single-node execution
        #: (circuit breaker open or fatal backend failure); the reason
        #: names what degraded (docs/RELIABILITY.md)
        self.degraded = degraded
        self.degraded_reason = degraded_reason
        #: per-statement fault-recovery cost (retries, failovers,
        #: backoff, extra messages/bytes) when run on the cluster
        self.recovery = recovery
        #: what execution measured (stage timings, estimated vs. actual
        #: cardinalities, index hits, dist counters) — attached to every
        #: result unless QueryOptions(profile=False); docs/OBSERVABILITY.md
        self.profile = profile

    def __repr__(self) -> str:
        if self.kind == "table" and self.table is not None:
            return f"StatementResult(table {self.table.name!r}, rows={self.table.num_rows})"
        if self.kind == "subgraph" and self.subgraph is not None:
            return f"StatementResult({self.subgraph!r})"
        return f"StatementResult({self.kind}, {self.message!r})"


# ----------------------------------------------------------------------
# Statement dispatch
# ----------------------------------------------------------------------

def execute_statement(
    db: GraphDB,
    catalog: Catalog,
    stmt: Statement,
    params: Optional[Mapping[str, Any]] = None,
    options: Optional[QueryOptions] = None,
    **legacy: Any,
) -> StatementResult:
    """Type-check and execute one statement (parameters substituted first).

    ``options`` is the typed execution API
    (:class:`~repro.obs.QueryOptions`); the removed ``force_direction`` /
    ``force_strategy`` kwargs raise ``TypeError`` pointing at it.  Unless
    ``options.profile`` is off, the returned result carries a
    :class:`~repro.obs.QueryProfile`.
    """
    reject_legacy_kwargs(legacy, "execute_statement")
    opts = resolve_options(options)
    profile = QueryProfile() if opts.profile else None
    tracer = Tracer() if (opts.trace and profile is not None) else None
    result = _dispatch_statement(db, catalog, stmt, params, opts, profile, tracer)
    return _finish_result(result, profile, tracer)


def execute_checked(
    db: GraphDB,
    catalog: Catalog,
    checked: "Statement | CheckedGraphSelect",
    options: Optional[QueryOptions] = None,
) -> StatementResult:
    """Execute an already substituted and type-checked statement.

    The plan-cache fast path (:mod:`repro.serve`): on a cache hit the
    parse/substitute/typecheck stages are skipped entirely and the cached
    resolution (a :class:`~repro.graql.typecheck.CheckedGraphSelect` for
    graph queries, the statement itself otherwise) executes directly.
    Only valid while the catalog epoch the statement was checked against
    is current — the cache enforces that.
    """
    opts = resolve_options(options)
    profile = QueryProfile() if opts.profile else None
    tracer = Tracer() if (opts.trace and profile is not None) else None
    stmt = checked.stmt if isinstance(checked, CheckedGraphSelect) else checked
    result = _execute_resolved(db, catalog, stmt, checked, opts, profile, tracer)
    return _finish_result(result, profile, tracer)


def _finish_result(
    result: StatementResult,
    profile: Optional[QueryProfile],
    tracer: Optional[Tracer],
) -> StatementResult:
    if profile is not None:
        profile.kind = result.kind
        profile.rows_out = result.count
        if tracer is not None and tracer.roots:
            profile.trace = tracer.roots[0] if len(tracer.roots) == 1 else None
            if profile.trace is None:
                # several top-level spans: wrap them under a synthetic root
                # spanning from the first child's start to the last's end
                from repro.obs.trace import Span

                root = Span("statement")
                root.children = tracer.roots
                root.start_s = tracer.roots[0].start_s
                root.end_s = tracer.roots[-1].end_s
                profile.trace = root
        result.profile = profile
    return result


def _dispatch_statement(
    db: GraphDB,
    catalog: Catalog,
    stmt: Statement,
    params: Optional[Mapping[str, Any]],
    opts: QueryOptions,
    profile: Optional[QueryProfile],
    tracer: Optional[Tracer],
) -> StatementResult:
    if params:
        with _stage("substitute", profile, tracer):
            stmt = substitute_statement(stmt, params)
    with _stage("typecheck", profile, tracer):
        checked = check_statement(stmt, catalog)
    return _execute_resolved(db, catalog, stmt, checked, opts, profile, tracer)


def _execute_resolved(
    db: GraphDB,
    catalog: Catalog,
    stmt: Statement,
    checked: "Statement | CheckedGraphSelect",
    opts: QueryOptions,
    profile: Optional[QueryProfile],
    tracer: Optional[Tracer],
) -> StatementResult:
    if isinstance(stmt, CreateTable):
        with _stage("execute", profile, tracer):
            db.create_table(stmt.name, stmt.schema)
            catalog.refresh(db)
        return StatementResult("ddl", message=f"created table {stmt.name}")
    if isinstance(stmt, CreateVertex):
        with _stage("execute", profile, tracer):
            vt = db.create_vertex(stmt.name, stmt.key_cols, stmt.table, stmt.where)
            catalog.refresh(db)
        return StatementResult(
            "ddl", message=f"created vertex {stmt.name}", count=vt.num_vertices
        )
    if isinstance(stmt, CreateEdge):
        with _stage("execute", profile, tracer):
            et = db.create_edge(
                stmt.name,
                stmt.source.type_name,
                stmt.target.type_name,
                stmt.source.ref_name,
                stmt.target.ref_name,
                stmt.from_tables,
                stmt.where,
            )
            catalog.refresh(db)
        return StatementResult(
            "ddl", message=f"created edge {stmt.name}", count=et.num_edges
        )
    if isinstance(stmt, CreateIndex):
        with _stage("execute", profile, tracer):
            gi = db.create_attr_index(stmt.name, stmt.target, stmt.attrs)
            catalog.refresh(db)
        return StatementResult(
            "ddl",
            message=f"created index {stmt.name} on {stmt.target}",
            count=gi.num_entries,
        )
    if isinstance(stmt, DropIndex):
        with _stage("execute", profile, tracer):
            db.drop_attr_index(stmt.name)
            catalog.refresh(db)
        return StatementResult("ddl", message=f"dropped index {stmt.name}")
    if isinstance(stmt, Ingest):
        with _stage("execute", profile, tracer):
            n = db.ingest(stmt.table, stmt.path)
            catalog.refresh(db)
        return StatementResult(
            "ingest", message=f"ingested {n} rows into {stmt.table}", count=n
        )
    if isinstance(stmt, TableSelect):
        with _stage("execute", profile, tracer):
            table = execute_table_select(db, stmt)
        if stmt.into is not None:
            db.register_result_table(stmt.into.name, table)
            catalog.register_result_table(stmt.into.name, table)
        return StatementResult("table", table=table, count=table.num_rows)
    assert isinstance(checked, CheckedGraphSelect)
    return _execute_graph_select(db, catalog, checked, opts, profile, tracer)


def execute_script(
    db: GraphDB,
    catalog: Catalog,
    script: Script,
    params: Optional[Mapping[str, Any]] = None,
    options: Optional[QueryOptions] = None,
) -> list[StatementResult]:
    """Execute a whole GraQL script in order (Section III's Omega)."""
    return [
        execute_statement(db, catalog, stmt, params, options)
        for stmt in script.statements
    ]


# ----------------------------------------------------------------------
# Graph select execution
# ----------------------------------------------------------------------

def _execute_graph_select(
    db: GraphDB,
    catalog: Catalog,
    checked: CheckedGraphSelect,
    opts: QueryOptions,
    profile: Optional[QueryProfile] = None,
    tracer: Optional[Tracer] = None,
) -> StatementResult:
    stmt = checked.stmt
    with _stage("plan", profile, tracer):
        plan = plan_graph_select(
            checked, catalog, opts.direction, opts.strategy, opts.hints
        )
    atoms = checked.pattern.atoms()
    ordinals = {id(a): i for i, a in enumerate(atoms)}
    name_map = NameMap()
    for i, a in enumerate(atoms):
        name_map.add_atom(i, a)
    result_name = stmt.into.name if stmt.into is not None else "result"
    if profile is not None:
        profile.strategy = plan.strategy
        profile.atoms = [
            _atom_profile(i, a, plan.plan_for(a)) for i, a in enumerate(atoms)
        ]

    if plan.strategy == "set":
        with _stage("execute", profile, tracer):
            atom_results = _run_set(
                db, checked, plan, atoms, ordinals, profile, tracer
            )
        if profile is not None:
            _fill_set_actuals(profile, atoms, atom_results)
        with _stage("materialize", profile, tracer):
            subgraph = subgraph_from_sets(
                stmt, [(a, atom_results[i]) for i, a in enumerate(atoms)], name_map, result_name
            )
        if stmt.into is not None and stmt.into.kind == INTO_SUBGRAPH:
            db.register_subgraph(subgraph)
            catalog.register_subgraph(
                subgraph.name, {k: len(v) for k, v in subgraph.vertices.items()}
            )
        return StatementResult(
            "subgraph", subgraph=subgraph, count=subgraph.num_vertices, plan=plan
        )

    # binding strategy
    with _stage("execute", profile, tracer):
        branches = _run_bindings(
            db, catalog, checked, plan, ordinals, profile, tracer
        )
    if profile is not None:
        _fill_bindings_actuals(profile, branches)
    if stmt.into is not None and stmt.into.kind == INTO_SUBGRAPH:
        with _stage("materialize", profile, tracer):
            subgraph = Subgraph(result_name)
            for jb in branches:
                subgraph = subgraph.union(
                    subgraph_from_bindings(stmt, jb, name_map, result_name, db),
                    result_name,
                )
        db.register_subgraph(subgraph)
        catalog.register_subgraph(
            subgraph.name, {k: len(v) for k, v in subgraph.vertices.items()}
        )
        return StatementResult(
            "subgraph", subgraph=subgraph, count=subgraph.num_vertices, plan=plan
        )
    if len(branches) != 1:
        raise ExecutionError("'or' composition cannot produce a table result")
    with _stage("materialize", profile, tracer):
        table = table_from_bindings(stmt, branches[0], name_map, result_name, db)
    if stmt.into is not None:
        db.register_result_table(stmt.into.name, table)
        catalog.register_result_table(stmt.into.name, table)
    return StatementResult("table", table=table, count=table.num_rows, plan=plan)


# ----------------------------------------------------------------------
# Profile construction
# ----------------------------------------------------------------------

def _step_detail(step) -> str:
    """A compact, deterministic one-token description of a step."""
    if isinstance(step, RVertexStep):
        if step.is_variant:
            return "any[" + "|".join(step.types) + "]"
        return step.types[0] if step.types else "?"
    if isinstance(step, REdgeStep):
        arrow = "-->" if step.direction == "out" else "<--"
        return arrow + (",".join(step.names) if step.names else "[]")
    assert isinstance(step, RRegex)
    op = {"star": "*", "plus": "+"}.get(step.op, f"{{{step.count}}}")
    return f"regex({len(step.pairs)}){op}"


def _atom_profile(index: int, atom: RAtom, ap: AtomPlan) -> AtomProfile:
    access = ap.access
    out = AtomProfile(
        index, ap.direction, ap.cost_forward, ap.cost_backward, ap.forced,
        access=access.describe() if access is not None else None,
        access_est=access.est_rows if access is not None else None,
        access_forced=access.forced if access is not None else None,
    )
    for i, step in enumerate(atom.steps):
        if isinstance(step, RVertexStep):
            kind = "vertex"
        elif isinstance(step, REdgeStep):
            kind = "edge"
        else:
            kind = "regex"
        out.steps.append(
            StepProfile(
                i,
                kind,
                _step_detail(step),
                est_forward=ap.step_est_forward.get(i),
                est_backward=ap.step_est_backward.get(i),
            )
        )
    return out


def _fill_set_actuals(
    profile: QueryProfile, atoms: list, atom_results: dict[int, AtomSets]
) -> None:
    """Actual per-step cardinalities from backward-culled set results."""
    for i, atom in enumerate(atoms):
        sets = atom_results.get(i)
        if sets is None or i >= len(profile.atoms):
            continue
        for sp in profile.atoms[i].steps:
            source = (
                sets.vertex_sets if sp.kind == "vertex" else sets.edge_sets
            )
            sp.actual = int(
                sum(len(v) for v in source.get(sp.index, {}).values())
            )


def _fill_bindings_actuals(
    profile: QueryProfile, branches: list["JoinedBindings"]
) -> None:
    """Actual per-step distinct cardinalities from enumerated paths."""
    acc: dict[tuple[int, int, str], list[np.ndarray]] = {}
    for jb in branches:
        for (aord, kind, pos), arr in jb.columns.items():
            if kind in ("v", "e"):
                acc.setdefault((aord, pos, kind), []).append(arr)
    for (aord, pos, _kind), arrs in acc.items():
        if aord < len(profile.atoms) and pos < len(profile.atoms[aord].steps):
            sp = profile.atoms[aord].steps[pos]
            joined = arrs[0] if len(arrs) == 1 else np.concatenate(arrs)
            # plain set() beats np.unique by ~10x on the small columns
            # that dominate here; keep unique for genuinely wide results
            if joined.size <= 4096:
                sp.actual = len(set(joined.tolist()))
            else:
                sp.actual = int(np.unique(joined).size)


def _run_set(
    db, checked, plan, atoms, ordinals, profile=None, tracer=None
) -> dict[int, AtomSets]:
    """Run all atoms under set semantics with and-composition refinement."""
    fx = FrontierExecutor(db, profile=profile)
    results: dict[int, AtomSets] = {}

    def run_all():
        for a in atoms:
            ap = plan.plan_for(a)
            direction, access = ap.direction, ap.access
            if tracer is not None:
                with tracer.span(
                    f"atom {ordinals[id(a)]}", direction=direction, strategy="set"
                ):
                    results[ordinals[id(a)]] = fx.run_atom(a, direction, access)
            else:
                results[ordinals[id(a)]] = fx.run_atom(a, direction, access)

    run_all()
    # refinement: intersect each label's defining set with every
    # referencing step's final set; rerun until stable
    pairs = _label_def_ref_pairs(atoms, ordinals)
    for _ in range(MAX_REFINE_ROUNDS):
        changed = False
        for label, (d_ord, d_pos), refs in pairs:
            def_sets = results[d_ord].vertex_sets.get(d_pos, {})
            refined = def_sets
            for r_ord, r_pos in refs:
                ref_sets = results[r_ord].vertex_sets.get(r_pos, {})
                refined = {
                    t: np.intersect1d(v, ref_sets.get(t, np.empty(0, dtype=np.int64)))
                    for t, v in refined.items()
                }
            refined = {t: v for t, v in refined.items() if len(v)}
            if _sizes(refined) != _sizes(def_sets):
                fx.pin_labels[label] = refined
                changed = True
        if not changed:
            break
        fx.label_env.clear()
        run_all()
    return results


def _sizes(sets) -> dict[str, int]:
    return {t: len(v) for t, v in sets.items()}


def _label_def_ref_pairs(atoms, ordinals):
    """[(label, (def_ord, def_pos), [(ref_ord, ref_pos), ...])]"""
    defs: dict[str, tuple[int, int]] = {}
    refs: dict[str, list[tuple[int, int]]] = {}
    for a in atoms:
        o = ordinals[id(a)]
        for pos, s in enumerate(a.steps):
            if isinstance(s, RVertexStep):
                if s.label is not None:
                    defs[s.label.name] = (o, pos)
                if s.label_ref is not None:
                    refs.setdefault(s.label_ref, []).append((o, pos))
    return [
        (label, loc, refs[label]) for label, loc in defs.items() if label in refs
    ]


def _run_bindings(
    db, catalog, checked, plan, ordinals, profile=None, tracer=None
) -> list[JoinedBindings]:
    """Run the composition tree under path enumeration.

    Returns one JoinedBindings per or-branch (a single element when the
    pattern has no 'or').
    """
    fx = FrontierExecutor(db, profile=profile)
    bex = BindingExecutor(db, catalog, frontier=fx, profile=profile)

    def run(node) -> list[JoinedBindings]:
        if isinstance(node, RAtom):
            o = ordinals[id(node)]
            ap = plan.plan_for(node)
            direction, access = ap.direction, ap.access
            if tracer is not None:
                with tracer.span(
                    f"atom {o}", direction=direction, strategy="bindings"
                ):
                    res = bex.run_atom(node, direction, access=access)
            else:
                res = bex.run_atom(node, direction, access=access)
            return [JoinedBindings.from_result(o, res, node)]
        op, left, right = node
        lbs = run(left)
        rbs = run(right)
        if op == "or":
            return lbs + rbs
        out = []
        for lb in lbs:
            for rb in rbs:
                pairs = _shared_label_pairs(lb, rb)
                out.append(lb.join(rb, pairs))
        return out

    return run(checked.pattern.root)


def _shared_label_pairs(lb: JoinedBindings, rb: JoinedBindings):
    """Join keys: (left def column, right ref column) per shared label."""
    left_defs: dict[str, tuple[int, str, int]] = {}
    for aord, steps in lb._steps.items():
        for pos, s in enumerate(steps):
            if isinstance(s, RVertexStep) and s.label is not None:
                left_defs[s.label.name] = (aord, "v", pos)
    pairs = []
    for aord, steps in rb._steps.items():
        for pos, s in enumerate(steps):
            if isinstance(s, RVertexStep) and s.label_ref in left_defs:
                pairs.append((left_defs[s.label_ref], (aord, "v", pos)))
    return pairs
