"""Binding-join path-query execution (path enumeration).

Where the set-frontier executor answers "*which* vertices/edges lie on a
full path", this executor answers "*what are* the paths": it materializes
a binding table with one row per matched path and one column group per
step.  The paper's semantics need this whenever

* an element-wise ``foreach`` label requires the *same instance* to appear
  at two steps of one path (Eq. 8),
* a step condition compares attributes against a previous step,
* the result is a table whose row multiplicity is per-path — Fig. 6's
  "a table of product ids, with each id repeated for each feature".

The executor prunes aggressively: a relaxed set-frontier pass runs first
(cross-step constraints dropped — a sound over-approximation), and the
binding expansion is restricted to its backward-culled per-step sets, so
rows are only ever spent on prefixes that can complete.  Expansion reuses
the CSR ``expand`` kernel with an origin-row mapping, keeping the hot loop
fully vectorized.

Column keys are ``v{i}``/``e{i}`` by step position, plus ``t{i}`` global
type ids for variant steps so Eq. 12's "the type of the label becomes
bound at matching time" holds per row.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.catalog import Catalog
from repro.errors import ExecutionError
from repro.graph.graphdb import GraphDB
from repro.graql.ast import DIR_OUT, LABEL_FOREACH
from repro.graql.typecheck import RAtom, REdgeStep, RRegex, RVertexStep
from repro.query.frontier import (
    AtomSets,
    FrontierExecutor,
    _in_sorted,
    reverse_steps,
    unroll_counted_regexes,
)
from repro.storage.expr import Env, evaluate_predicate

_EMPTY = np.empty(0, dtype=np.int64)

#: safety cap on materialized paths (per atom)
DEFAULT_MAX_ROWS = 5_000_000


class BindingResult:
    """One atom's enumerated paths.

    ``columns`` maps step position (in the original atom) to arrays:
    ``("v", i)`` vertex ids, ``("t", i)`` global vertex-type ids (variant
    steps only), ``("e", i)`` edge ids, ``("et", i)`` global edge-type ids.
    All arrays share ``nrows``.
    """

    def __init__(self, columns: dict[tuple[str, int], np.ndarray], nrows: int) -> None:
        self.columns = columns
        self.nrows = nrows

    def take(self, idx: np.ndarray) -> "BindingResult":
        return BindingResult({k: v[idx] for k, v in self.columns.items()}, len(idx))

    def vertex_column(self, i: int) -> np.ndarray:
        return self.columns[("v", i)]

    def has(self, kind: str, i: int) -> bool:
        return (kind, i) in self.columns


def _relax_atom(atom: RAtom) -> RAtom:
    """Drop cross-step conditions so the set prerun stays sound."""
    steps = []
    for s in atom.steps:
        if isinstance(s, RVertexStep) and s.cross_refs:
            steps.append(
                RVertexStep(
                    list(s.types),
                    None,
                    s.label,
                    s.label_ref,
                    s.seed,
                    s.is_variant,
                    [],
                    s.names,
                )
            )
        else:
            steps.append(s)
    return RAtom(steps)


class BindingExecutor:
    """Enumerates paths of one atom against a GraphDB."""

    def __init__(
        self,
        db: GraphDB,
        catalog: Catalog,
        frontier: Optional[FrontierExecutor] = None,
        max_rows: Optional[int] = None,
        profile=None,
    ) -> None:
        self.db = db
        self.catalog = catalog
        self.frontier = frontier or FrontierExecutor(db, profile=profile)
        #: optional QueryProfile for index-hit/edge-scan accounting
        self.profile = profile if profile is not None else self.frontier.profile
        # read the module default at call time so deployments (and tests)
        # can tune the cap globally
        self.max_rows = max_rows if max_rows is not None else DEFAULT_MAX_ROWS
        # global type-id spaces (stable across steps)
        self.vtype_ids = {n: i for i, n in enumerate(sorted(catalog.vertices))}
        self.etype_ids = {n: i for i, n in enumerate(sorted(catalog.edges))}

    # ------------------------------------------------------------------
    def run_atom(
        self,
        atom: RAtom,
        direction: str = "forward",
        label_columns: Optional[dict[str, tuple["BindingResult", int]]] = None,
        access=None,
    ) -> BindingResult:
        """Enumerate the atom's paths.

        *label_columns* maps labels defined in *earlier* atoms to their
        (result, step-position) — used only to know a label is external;
        the actual cross-atom join happens in the composer.  *access* is
        the planner's anchor access path, forwarded to the set-semantics
        pre-run (the planner never picks a seek for anchors whose
        condition the relaxation would drop, so the pre-run stays sound).
        """
        label_columns = label_columns or {}
        pre: AtomSets = self.frontier.run_atom(_relax_atom(atom), direction, access)
        tagged = unroll_counted_regexes(atom.steps)
        if direction == "backward":
            tagged = reverse_steps(tagged)
        steps = [s for s, _ in tagged]
        orig_idx = [i for _, i in tagged]
        for s in steps:
            if isinstance(s, RRegex):
                raise ExecutionError(
                    "unbounded path regular expressions are not supported "
                    "under path enumeration"
                )
        name_to_pos = self._name_positions(atom)
        columns: dict[tuple[str, int], np.ndarray] = {}
        # ---- first vertex step
        first = steps[0]
        assert isinstance(first, RVertexStep)
        vids, tids = self._initial_rows(first, pre.vertex_sets.get(orig_idx[0], {}))
        columns[("v", orig_idx[0])] = vids
        if len(first.types) > 1:
            columns[("t", orig_idx[0])] = tids
        nrows = len(vids)
        bound_positions = {orig_idx[0]}
        deferred = self._collect_deferred(atom, name_to_pos, label_columns)
        columns, nrows = self._apply_ready_constraints(
            atom, columns, nrows, bound_positions, deferred, name_to_pos
        )
        # ---- expansion over edge steps
        i = 1
        while i < len(steps) and nrows > 0:
            estep = steps[i]
            vstep = steps[i + 1]
            assert isinstance(estep, REdgeStep) and isinstance(vstep, RVertexStep)
            columns, nrows = self._expand(
                columns,
                nrows,
                estep,
                vstep,
                prev_pos=orig_idx[i - 1],
                edge_pos=orig_idx[i],
                next_pos=orig_idx[i + 1],
                prev_types=steps[i - 1].types,
                allowed_edges=pre.edge_sets.get(orig_idx[i], {}),
                allowed_vertices=pre.vertex_sets.get(orig_idx[i + 1], {}),
            )
            bound_positions.add(orig_idx[i + 1])
            columns, nrows = self._apply_ready_constraints(
                atom, columns, nrows, bound_positions, deferred, name_to_pos
            )
            if nrows > self.max_rows:
                raise ExecutionError(
                    f"path enumeration exceeded {self.max_rows} rows — "
                    f"narrow the query or use 'into subgraph'"
                )
            i += 2
        if nrows == 0:
            columns = {k: v[:0] for k, v in columns.items()}
        # ensure every step has a column even when the frontier died early
        # (empty results must still materialize the full output schema)
        for pos, s in enumerate(steps):
            key = ("v", orig_idx[pos]) if isinstance(s, RVertexStep) else ("e", orig_idx[pos])
            if key not in columns:
                columns[key] = _EMPTY
                nrows = 0
        return BindingResult(columns, nrows)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _name_positions(self, atom: RAtom) -> dict[str, int]:
        """Step-name -> original step position (labels and type names)."""
        out: dict[str, int] = {}
        for i, s in enumerate(atom.steps):
            if isinstance(s, RVertexStep):
                if s.label is not None:
                    out[s.label.name] = i
                if not s.is_variant and s.label_ref is None:
                    # a type name maps to its first occurrence; typecheck
                    # rejects references to ambiguous type names
                    for n in s.names:
                        out.setdefault(n, i)
        return out

    def _global_tids(self, types: list[str]) -> np.ndarray:
        return np.asarray([self.vtype_ids[t] for t in types], dtype=np.int64)

    def _initial_rows(self, step: RVertexStep, pre_sets) -> tuple[np.ndarray, np.ndarray]:
        vid_parts = []
        tid_parts = []
        for t in step.types:
            vids = pre_sets.get(t, _EMPTY)
            if len(vids) == 0:
                continue
            vid_parts.append(vids)
            tid_parts.append(np.full(len(vids), self.vtype_ids[t], dtype=np.int64))
        if not vid_parts:
            return _EMPTY, _EMPTY
        return np.concatenate(vid_parts), np.concatenate(tid_parts)

    def _row_tids(self, columns, nrows, pos: int, types: list[str]) -> np.ndarray:
        """Global vertex-type id per row for step *pos*."""
        if ("t", pos) in columns:
            return columns[("t", pos)]
        return np.full(nrows, self.vtype_ids[types[0]], dtype=np.int64)

    def _expand(
        self,
        columns,
        nrows,
        estep: REdgeStep,
        vstep: RVertexStep,
        prev_pos: int,
        edge_pos: int,
        next_pos: int,
        prev_types: list[str],
        allowed_edges,
        allowed_vertices,
    ):
        prev_v = columns[("v", prev_pos)]
        prev_t = self._row_tids(columns, nrows, prev_pos, prev_types)
        origin_parts = []
        newv_parts = []
        newt_parts = []
        eid_parts = []
        etid_parts = []
        for ename in estep.names:
            et = self.db.edge_type(ename)
            along = estep.direction == DIR_OUT
            from_type = et.source.name if along else et.target.name
            to_type = et.target.name if along else et.source.name
            if to_type not in vstep.types:
                continue
            rows = np.flatnonzero(prev_t == self.vtype_ids.get(from_type, -1))
            if len(rows) == 0:
                continue
            index = self.db.index(ename).direction(along)
            frontier = prev_v[rows]
            origins, tgts, eids = index.expand(frontier)
            if self.profile is not None:
                self.profile.index_hits += 1
                self.profile.edges_scanned += len(eids)
            # 'origins' here are frontier positions? expand returns source
            # vids; we need origin rows — recompute via counts
            starts = index.indptr[frontier]
            ends = index.indptr[frontier + 1]
            counts = ends - starts
            origin_rows = np.repeat(rows, counts)
            del origins
            allowed = allowed_edges.get(ename, _EMPTY)
            mask = _in_sorted(eids, allowed)
            mask &= _in_sorted(tgts, allowed_vertices.get(to_type, _EMPTY))
            if not mask.any():
                continue
            origin_parts.append(origin_rows[mask])
            newv_parts.append(tgts[mask])
            k = int(mask.sum())
            newt_parts.append(np.full(k, self.vtype_ids[to_type], dtype=np.int64))
            eid_parts.append(eids[mask])
            etid_parts.append(np.full(k, self.etype_ids[ename], dtype=np.int64))
        if not origin_parts:
            return {k: v[:0] for k, v in columns.items()}, 0
        origin = np.concatenate(origin_parts)
        out = {k: v[origin] for k, v in columns.items()}
        out[("v", next_pos)] = np.concatenate(newv_parts)
        if len(vstep.types) > 1:
            out[("t", next_pos)] = np.concatenate(newt_parts)
        out[("e", edge_pos)] = np.concatenate(eid_parts)
        if len(estep.names) > 1:
            out[("et", edge_pos)] = np.concatenate(etid_parts)
        return out, len(origin)

    def _collect_deferred(self, atom: RAtom, name_to_pos, label_columns):
        """Constraints that need more than one bound step.

        Returns a list of dicts with keys: kind ('foreach' | 'cond'),
        positions (steps that must be bound), payload.
        """
        out = []
        for i, s in enumerate(atom.steps):
            if not isinstance(s, RVertexStep):
                continue
            if s.label_ref is not None and s.label_ref in name_to_pos:
                # same-instance constraint only for foreach labels; set
                # labels were already enforced as membership in the prerun
                from_pos = name_to_pos[s.label_ref]
                if from_pos != i and self._label_kind(atom, s.label_ref) == LABEL_FOREACH:
                    out.append(
                        {
                            "kind": "foreach",
                            "positions": (from_pos, i),
                            "applied": False,
                        }
                    )
            if s.cond is not None and s.cross_refs:
                positions = [i]
                external = False
                for q in s.cross_refs:
                    if q in name_to_pos:
                        positions.append(name_to_pos[q])
                    else:
                        external = True
                if external:
                    raise ExecutionError(
                        "conditions referencing labels from another path of "
                        "an 'and' composition are not supported — reference "
                        "the label as a step instead"
                    )
                out.append(
                    {
                        "kind": "cond",
                        "positions": tuple(positions),
                        "step": s,
                        "step_pos": i,
                        "name_to_pos": name_to_pos,
                        "steps": atom.steps,
                        "applied": False,
                    }
                )
        return out

    def _label_kind(self, atom: RAtom, label: str) -> str:
        for s in atom.steps:
            if isinstance(s, RVertexStep) and s.label is not None and s.label.name == label:
                return s.label.kind
        # label from an earlier atom: the composer joins, treat as set here
        return "def"

    def _apply_ready_constraints(
        self, atom, columns, nrows, bound, deferred, name_to_pos
    ):
        for c in deferred:
            if c["applied"] or not all(p in bound for p in c["positions"]):
                continue
            c["applied"] = True
            if nrows == 0:
                continue
            if c["kind"] == "foreach":
                a, b = c["positions"]
                mask = columns[("v", a)] == columns[("v", b)]
                sa = atom.steps[a]
                ta = self._row_tids(columns, nrows, a, sa.types)
                sb = atom.steps[b]
                tb = self._row_tids(columns, nrows, b, sb.types)
                mask &= ta == tb
            else:
                mask = self._eval_cond(c, columns, nrows)
            idx = np.flatnonzero(mask)
            columns = {k: v[idx] for k, v in columns.items()}
            nrows = len(idx)
        return columns, nrows

    def _eval_cond(self, c, columns, nrows) -> np.ndarray:
        step: RVertexStep = c["step"]
        pos: int = c["step_pos"]
        name_to_pos: dict[str, int] = c["name_to_pos"]
        own_names = set(step.names) | set(step.types) | {None}

        steps = c["steps"]

        def resolver(qualifier, name):
            if qualifier in own_names:
                p = pos
                types = step.types
            else:
                p = name_to_pos[qualifier]
                types = steps[p].types
            vt = self.db.vertex_type(types[0])
            arr, dtype = vt.attribute_array(name)
            return arr[columns[("v", p)]], dtype

        env = Env(resolver, nrows)
        return evaluate_predicate(step.cond, env)
