"""Relational statement execution — the Table I operation set.

``select [top n] [distinct] items from table T [where ...] [group by ...]
[order by ...] [into table X]`` executes as the classic pipeline:
selection -> grouping/aggregation (or projection) -> distinct -> order by
-> top n, all on the vectorized operators of
:mod:`repro.storage.relops`.
"""

from __future__ import annotations

from repro.errors import ExecutionError
from repro.graph.graphdb import GraphDB
from repro.graql.ast import AggItem, AttrItem, StarItem, TableSelect
from repro.storage import relops
from repro.storage.relops import AggSpec
from repro.storage.table import Table


def execute_table_select(db: GraphDB, stmt: TableSelect) -> Table:
    """Run one relational select; returns the (unregistered) result."""
    source = db.table(stmt.source)
    working = relops.filter_table(source, stmt.where)
    has_agg = any(isinstance(i, AggItem) for i in stmt.items)

    if stmt.group_by or has_agg:
        aggs = []
        for item in stmt.items:
            if isinstance(item, AggItem):
                alias = item.alias or _default_agg_alias(item)
                aggs.append(AggSpec(item.func, item.arg, alias))
        grouped = relops.group_by_aggregate(
            working, stmt.group_by, aggs, result_name=stmt.source
        )
        # project in select-list order
        names = []
        for item in stmt.items:
            if isinstance(item, AggItem):
                names.append(item.alias or _default_agg_alias(item))
            elif isinstance(item, AttrItem):
                names.append(item.ref.name)
            else:
                raise ExecutionError("select * cannot be combined with aggregates")
        working = grouped.project(names)
        # apply aliases on plain columns
        renames = {
            i.ref.name: i.alias
            for i in stmt.items
            if isinstance(i, AttrItem) and i.alias
        }
        if renames:
            working = working.rename_columns(renames)
    else:
        if len(stmt.items) == 1 and isinstance(stmt.items[0], StarItem):
            pass  # keep all columns
        else:
            # SQL allows ordering by source columns that are not projected;
            # order before projecting when some key is source-only
            keys = [(k.column, k.ascending) for k in stmt.order_by]
            projected_names = {
                (i.alias or i.ref.name) for i in stmt.items if isinstance(i, AttrItem)
            }
            if keys and not all(c in projected_names for c, _ in keys):
                if all(working.schema.has(c) for c, _ in keys):
                    working = relops.order_by(working, keys)
                    stmt = _without_order(stmt)
            names = []
            renames = {}
            for item in stmt.items:
                assert isinstance(item, AttrItem)
                names.append(item.ref.name)
                if item.alias:
                    renames[item.ref.name] = item.alias
            working = working.project(names)
            if renames:
                working = working.rename_columns(renames)

    if stmt.distinct:
        working = relops.distinct(working)
    if stmt.order_by:
        keys = [(k.column, k.ascending) for k in stmt.order_by]
        for col, _ in keys:
            if not working.schema.has(col):
                raise ExecutionError(
                    f"order by column {col!r} is not in the select output"
                )
        working = relops.order_by(working, keys)
    if stmt.top is not None:
        working = relops.top_n(working, stmt.top)
    result_name = stmt.into.name if stmt.into is not None else "result"
    return Table(result_name, working.schema, working.columns)


def _default_agg_alias(item: AggItem) -> str:
    return f"{item.func}_{item.arg}" if item.arg else item.func


def _without_order(stmt: TableSelect) -> TableSelect:
    """Copy of *stmt* with the (already applied) order-by removed."""
    return TableSelect(
        stmt.items,
        stmt.source,
        stmt.top,
        stmt.distinct,
        stmt.where,
        stmt.group_by,
        (),
        stmt.into,
    )
