"""Dynamic query planning (paper Section III-B).

    "The existence of both forward and reverse indices enables significant
    flexibility on how to execute a path query: the execution is not
    restricted to the forward-looking lexical representation of the path
    query in GraQL."

For each linear path (atom) the planner estimates the cost of sweeping the
steps left-to-right versus right-to-left.  The cost model is the classic
frontier-size recurrence: starting from the anchor step's estimated
cardinality (type cardinality x condition selectivity), each edge step
multiplies by the catalog's average degree in the traversal direction and
each vertex step filters by its selectivity.  The cheaper direction wins;
``force_direction`` exists so the S3B ablation benchmark can pin the
lexical order and measure what the reverse index buys.

Strategy choice: patterns that need per-path bindings (``foreach`` labels,
cross-step attribute references, table outputs) run the binding-join
executor; pure structural queries with subgraph output run the cheaper
set-frontier executor.
"""

from __future__ import annotations

from typing import Literal, Optional

from repro.catalog import Catalog, estimate_selectivity
from repro.errors import PlanError
from repro.graql.ast import DIR_OUT, GraphSelect, INTO_SUBGRAPH
from repro.graql.typecheck import (
    CheckedGraphSelect,
    RAtom,
    REdgeStep,
    RPattern,
    RRegex,
    RVertexStep,
)
from repro.storage.expr import predicate_feasibility

Direction = Literal["forward", "backward"]
Strategy = Literal["set", "bindings"]

#: cost charged per regex-group iteration (treated as one variant hop)
_REGEX_HOP_PENALTY = 2.0


class AtomPlan:
    """Planned execution of one linear path.

    Besides the winning direction, the plan keeps *both* directions'
    total costs and per-step frontier estimates (keyed by the step's
    position in the atom), so EXPLAIN and ``QueryProfile`` can show the
    road not taken — without that, direction ablations are undebuggable.
    """

    def __init__(
        self,
        atom: RAtom,
        direction: Direction,
        cost_forward: float,
        cost_backward: float,
        step_est_forward: Optional[dict[int, float]] = None,
        step_est_backward: Optional[dict[int, float]] = None,
        forced: Optional[str] = None,
    ) -> None:
        self.atom = atom
        self.direction = direction
        self.cost_forward = cost_forward
        self.cost_backward = cost_backward
        #: step index -> estimated frontier when sweeping forward
        self.step_est_forward = step_est_forward or {}
        #: step index -> estimated frontier when sweeping backward
        self.step_est_backward = step_est_backward or {}
        #: why the direction ignored the cost model
        #: (None | 'label-ref' | 'options')
        self.forced = forced

    def step_estimates(self, direction: Optional[Direction] = None) -> dict[int, float]:
        d = direction or self.direction
        return self.step_est_forward if d == "forward" else self.step_est_backward

    def __repr__(self) -> str:
        return (
            f"AtomPlan({self.direction}, fwd={self.cost_forward:.1f}, "
            f"bwd={self.cost_backward:.1f})"
        )


class QueryPlan:
    """Planned execution of a whole graph select."""

    def __init__(
        self,
        checked: CheckedGraphSelect,
        strategy: Strategy,
        atom_plans: dict[int, AtomPlan],
    ) -> None:
        self.checked = checked
        self.strategy = strategy
        self.atom_plans = atom_plans  # keyed by id(atom)

    def plan_for(self, atom: RAtom) -> AtomPlan:
        return self.atom_plans[id(atom)]

    def __repr__(self) -> str:
        return f"QueryPlan(strategy={self.strategy}, atoms={len(self.atom_plans)})"


def _vertex_cardinality(step: RVertexStep, catalog: Catalog) -> float:
    """Estimated matches of a vertex step in isolation.

    Statically unsatisfiable conditions (the analyzer's GQW101 interval
    analysis) pin the estimate to zero instead of the selectivity guess,
    so a contradictory anchor makes its sweep direction maximally cheap —
    the executor then starts from the step that provably matches nothing
    and terminates immediately.
    """
    if step.cond is not None and predicate_feasibility(step.cond) is False:
        return 0.0
    total = 0.0
    for t in step.types:
        meta = catalog.vertex(t)
        sel = estimate_selectivity(step.cond, meta.distinct_counts)
        total += meta.num_vertices * sel
    if step.seed is not None:
        seeded = catalog.subgraphs.get(step.seed, {})
        cap = sum(seeded.get(t, 0) for t in step.types)
        total = min(total, float(cap)) if seeded else total
    return max(total, 0.0)


def _edge_expansion(step: REdgeStep, catalog: Catalog, along_lexical: bool) -> float:
    """Average frontier growth for one edge step in traversal direction.

    *along_lexical* is True when the sweep traverses the step from its
    lexical left vertex to its right vertex.
    """
    factors = []
    for name in step.names:
        em = catalog.edge(name)
        # going left->right on an OUT edge follows the declared direction
        outgoing = (step.direction == DIR_OUT) == along_lexical
        factors.append(em.degree_stats.expansion_factor(outgoing))
    if not factors:
        return 0.0
    sel = estimate_selectivity(step.cond)
    return max(factors) * sel


def _sweep_cost(
    steps: list, catalog: Catalog, forward: bool
) -> tuple[float, list[float]]:
    """Frontier-recurrence cost of sweeping an atom in one direction.

    Returns ``(total cost, per-step frontier estimates)`` with the
    estimates aligned to the *sweep* order of ``steps``: a vertex step's
    estimate is its post-filter frontier, an edge/regex step's estimate
    is the expanded frontier before the next vertex filter.
    """
    ordered = steps if forward else list(reversed(steps))
    first = ordered[0]
    if not isinstance(first, RVertexStep):  # pragma: no cover - grammar
        raise PlanError("path must start and end with vertex steps")
    frontier = _vertex_cardinality(first, catalog)
    estimates = [frontier]
    cost = frontier
    i = 1
    while i < len(ordered):
        estep = ordered[i]
        vstep = ordered[i + 1]
        if isinstance(estep, RRegex):
            # a regex group behaves like a couple of variant hops
            frontier *= _REGEX_HOP_PENALTY
        else:
            assert isinstance(estep, REdgeStep)
            frontier *= max(_edge_expansion(estep, catalog, along_lexical=forward), 1e-3)
        estimates.append(frontier)
        assert isinstance(vstep, RVertexStep)
        selectivities = [
            estimate_selectivity(vstep.cond, catalog.vertex(t).distinct_counts)
            for t in vstep.types
        ] or [1.0]
        frontier *= max(selectivities)
        # frontier cannot exceed the step's own cardinality
        frontier = min(frontier, max(_vertex_cardinality(vstep, catalog), 1e-3))
        estimates.append(frontier)
        cost += frontier
        i += 2
    return cost, estimates


def _has_internal_label_ref(atom: RAtom) -> bool:
    """True if a step references a label defined earlier in this atom.

    Such atoms must sweep forward so the defining step is processed before
    the referencing step.
    """
    defined: set[str] = set()
    for s in atom.steps:
        if isinstance(s, (RVertexStep, REdgeStep)):
            if s.label_ref is not None and s.label_ref in defined:
                return True
            if s.label is not None:
                defined.add(s.label.name)
    return False


def plan_atom(
    atom: RAtom,
    catalog: Catalog,
    force_direction: Optional[Direction] = None,
) -> AtomPlan:
    """Choose the sweep direction for one atom."""
    cf, est_f = _sweep_cost(atom.steps, catalog, forward=True)
    cb, est_b = _sweep_cost(atom.steps, catalog, forward=False)
    forced: Optional[str] = None
    if _has_internal_label_ref(atom):
        direction: Direction = "forward"
        forced = "label-ref"
    elif force_direction is not None:
        direction = force_direction
        forced = "options"
    else:
        direction = "forward" if cf <= cb else "backward"
    n = len(atom.steps)
    # sweep-order estimates back onto original step positions
    step_est_forward = {i: e for i, e in enumerate(est_f)}
    step_est_backward = {n - 1 - i: e for i, e in enumerate(est_b)}
    return AtomPlan(
        atom, direction, cf, cb, step_est_forward, step_est_backward, forced
    )


def plan_graph_select(
    checked: CheckedGraphSelect,
    catalog: Catalog,
    force_direction: Optional[Direction] = None,
    force_strategy: Optional[Strategy] = None,
) -> QueryPlan:
    """Plan a checked graph select: strategy + per-atom directions."""
    pattern: RPattern = checked.pattern
    stmt: GraphSelect = checked.stmt
    if force_strategy is not None:
        strategy: Strategy = force_strategy
    elif pattern.needs_bindings:
        strategy = "bindings"
    elif stmt.into is not None and stmt.into.kind == INTO_SUBGRAPH:
        strategy = "set"
    else:
        strategy = "bindings"
    if strategy == "set" and pattern.needs_bindings:
        raise PlanError(
            "this query needs per-path bindings (foreach labels or "
            "cross-step references) and cannot run with the set strategy"
        )
    atom_plans: dict[int, AtomPlan] = {}
    for atom in pattern.atoms():
        atom_plans[id(atom)] = plan_atom(atom, catalog, force_direction)
    return QueryPlan(checked, strategy, atom_plans)
