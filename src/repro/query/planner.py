"""Dynamic query planning (paper Section III-B).

    "The existence of both forward and reverse indices enables significant
    flexibility on how to execute a path query: the execution is not
    restricted to the forward-looking lexical representation of the path
    query in GraQL."

For each linear path (atom) the planner estimates the cost of sweeping the
steps left-to-right versus right-to-left.  The cost model is the classic
frontier-size recurrence: starting from the anchor step's estimated
cardinality (type cardinality x condition selectivity), each edge step
multiplies by the catalog's average degree in the traversal direction and
each vertex step filters by its selectivity.  The cheaper direction wins;
``force_direction`` exists so the S3B ablation benchmark can pin the
lexical order and measure what the reverse index buys.

Strategy choice: patterns that need per-path bindings (``foreach`` labels,
cross-step attribute references, table outputs) run the binding-join
executor; pure structural queries with subgraph output run the cheaper
set-frontier executor.
"""

from __future__ import annotations

import math
from typing import Any, Literal, Optional

from repro.catalog import Catalog, estimate_selectivity
from repro.catalog.stats import _literal_comparison_ref
from repro.dtypes import parse_date
from repro.dtypes.datatypes import KIND_DATE, KIND_NUMERIC, KIND_STRING
from repro.errors import PlanError
from repro.graql.ast import DIR_OUT, GraphSelect, INTO_SUBGRAPH
from repro.graql.typecheck import (
    CheckedGraphSelect,
    RAtom,
    REdgeStep,
    RPattern,
    RRegex,
    RVertexStep,
)
from repro.obs.options import Hints
from repro.storage.expr import BinOp, ColRef, Expr, predicate_feasibility

Direction = Literal["forward", "backward"]
Strategy = Literal["set", "bindings"]

#: cost charged per regex-group iteration (treated as one variant hop)
_REGEX_HOP_PENALTY = 2.0

#: per-row cost of the vectorized anchor scan relative to one unit of
#: downstream frontier work (a scan touches every row but with SIMD-wide
#: comparisons, so a row costs a fraction of a frontier expansion)
_SCAN_WEIGHT = 0.25


class AccessPath:
    """How an atom's anchor step produces its first candidate set.

    ``"scan"`` is the baseline: enumerate every vertex of the anchor's
    type(s) and filter with the vectorized condition kernel.
    ``"index-seek"`` narrows the candidates first through a secondary
    :class:`~repro.storage.indexes.AttributeIndex` (``eq_values`` is the
    equality prefix, ``range_spec`` an optional ``(low, high, low_ex,
    high_ex)`` bound on the next index column); the full step condition
    is still applied afterwards, so a seek can only prune candidates —
    never change the result set.  ``est_rows`` / ``cost`` come from the
    column statistics and drive the seek-vs-scan decision.
    """

    __slots__ = (
        "kind", "index", "type_name", "eq_values", "range_spec",
        "est_rows", "cost", "forced",
    )

    def __init__(
        self,
        kind: str,
        index: Optional[str],
        type_name: Optional[str],
        eq_values: tuple,
        range_spec: Optional[tuple],
        est_rows: float,
        cost: float,
        forced: Optional[str] = None,
    ) -> None:
        self.kind = kind  # 'scan' | 'index-seek'
        self.index = index
        self.type_name = type_name
        self.eq_values = eq_values
        self.range_spec = range_spec
        self.est_rows = est_rows
        self.cost = cost
        #: why the cost model was overridden (None | 'hint')
        self.forced = forced

    def describe(self) -> str:
        """Short form used by EXPLAIN / profiles: ``index-seek(I)``."""
        if self.kind == "index-seek":
            return f"index-seek({self.index})"
        return "scan"

    def __repr__(self) -> str:
        return (
            f"AccessPath({self.describe()}, est={self.est_rows:.1f}, "
            f"cost={self.cost:.1f})"
        )


def _conjuncts(cond) -> list:
    """Flatten a condition's top-level ``and`` tree into conjuncts."""
    if isinstance(cond, BinOp) and cond.op == "and":
        return _conjuncts(cond.left) + _conjuncts(cond.right)
    return [cond]


def _cond_attrs(cond) -> set[str]:
    """Every attribute a condition references."""
    out: set[str] = set()
    stack = [cond]
    while stack:
        e = stack.pop()
        if isinstance(e, ColRef):
            out.add(e.name)
        for child_name in ("left", "right", "operand"):
            child = getattr(e, child_name, None)
            if isinstance(child, Expr):
                stack.append(child)
    return out


def _cond_stats(cond, meta) -> dict:
    """Column statistics for the attributes *cond* references.

    This is the lazy-collection trigger: :meth:`VertexMeta.column_stats`
    builds (and caches) histogram stats from the live view on first
    planner request; scratch catalogs (static analysis) have no view
    attached and fall back to distinct counts.
    """
    if cond is None:
        return {}
    stats = {}
    for attr in _cond_attrs(cond):
        cs = meta.column_stats(attr)
        if cs is not None:
            stats[attr] = cs
    return stats


def _seek_literal(value: Any, dtype) -> Optional[Any]:
    """Coerce a condition literal into the index's stored value domain.

    Date columns store ordinals, so string literals are parsed; string
    columns are indexed as ``str``; numeric columns need a non-bool
    number.  ``None`` means the conjunct cannot drive a seek (the scan
    kernel still evaluates it — only the index shortcut is skipped).
    """
    kind = dtype.kind
    if kind == KIND_DATE:
        if isinstance(value, str):
            try:
                return parse_date(value)
            except ValueError:
                return None
        if isinstance(value, int) and not isinstance(value, bool):
            return value
        return None
    if kind == KIND_NUMERIC:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return None
        return value
    if kind == KIND_STRING:
        return value if isinstance(value, str) else None
    return None


_RANGE_OPS = ("<", "<=", ">", ">=")


def _match_index(imeta, by_attr: dict, schema) -> Optional[tuple]:
    """Match condition conjuncts against one index's column order.

    Greedy equality prefix over the leading index columns, then an
    optional range on the first column without an equality.  Returns
    ``(eq_values, range_spec, covered_conjuncts)`` or None when the
    index covers nothing.
    """
    eq_values: list = []
    covered: list = []
    range_spec: Optional[tuple] = None
    for attr in imeta.attrs:
        if not schema.has(attr):
            break
        entries = by_attr.get(attr, [])
        dtype = schema.type_of(attr)
        eq = next(
            (
                (val, expr)
                for op, lit, expr in entries
                if op == "=" and (val := _seek_literal(lit, dtype)) is not None
            ),
            None,
        )
        if eq is not None:
            eq_values.append(eq[0])
            covered.append(eq[1])
            continue
        # no usable equality on this column: close with a range, if any
        low = high = None
        low_ex = high_ex = False
        for op, lit, expr in entries:
            if op not in _RANGE_OPS:
                continue
            val = _seek_literal(lit, dtype)
            if val is None:
                continue
            if op in (">", ">="):
                if low is None or val > low or (val == low and op == ">"):
                    low, low_ex = val, op == ">"
            else:
                if high is None or val < high or (val == high and op == "<"):
                    high, high_ex = val, op == "<"
            covered.append(expr)
        if low is not None or high is not None:
            range_spec = (low, high, low_ex, high_ex)
        break
    if not eq_values and range_spec is None:
        return None
    return tuple(eq_values), range_spec, covered


def _plan_anchor_access(
    step: RVertexStep, catalog: Catalog, hints: Optional[Hints] = None
) -> AccessPath:
    """Cost index-seek vs full scan for one atom anchor.

    A seek is applicable only to single-type anchors with a condition and
    no cross-step references (the binding executor relaxes cross-ref
    conditions away, so seeking on them would over-prune its pre-run).
    """
    n_total = sum(float(catalog.vertex(t).num_vertices) for t in step.types)
    scan = AccessPath(
        "scan", None, None, (), None,
        est_rows=_vertex_cardinality(step, catalog),
        cost=max(n_total, 1.0) * _SCAN_WEIGHT,
    )
    if len(step.types) != 1 or step.cond is None or step.cross_refs:
        return scan
    t = step.types[0]
    candidates = [
        im for im in catalog.indexes_on(t) if im.target_kind == "vertex"
    ]
    if hints is not None:
        candidates = [im for im in candidates if im.name not in hints.no_index]
    if not candidates:
        return scan
    meta = catalog.vertex(t)
    stats = _cond_stats(step.cond, meta)
    by_attr: dict[str, list] = {}
    for expr in _conjuncts(step.cond):
        if not isinstance(expr, BinOp) or expr.op not in ("=",) + _RANGE_OPS:
            continue
        ref = _literal_comparison_ref(expr)
        if ref is None:
            continue
        attr, op, lit = ref
        by_attr.setdefault(attr, []).append((op, lit, expr))
    best: Optional[AccessPath] = None
    for im in candidates:
        m = _match_index(im, by_attr, meta.attr_schema)
        if m is None:
            continue
        eq_values, range_spec, covered = m
        sel = 1.0
        for expr in covered:
            sel *= estimate_selectivity(expr, meta.distinct_counts, stats)
        est = max(n_total * sel, 0.0)
        path = AccessPath(
            "index-seek", im.name, t, eq_values, range_spec,
            est_rows=est, cost=math.log2(n_total + 2.0) + est,
        )
        if hints is not None and im.name in hints.use_index:
            path.forced = "hint"
            return path
        if best is None or path.cost < best.cost:
            best = path
    if best is None or best.cost >= scan.cost:
        return scan
    return best


class AtomPlan:
    """Planned execution of one linear path.

    Besides the winning direction, the plan keeps *both* directions'
    total costs and per-step frontier estimates (keyed by the step's
    position in the atom), so EXPLAIN and ``QueryProfile`` can show the
    road not taken — without that, direction ablations are undebuggable.
    """

    def __init__(
        self,
        atom: RAtom,
        direction: Direction,
        cost_forward: float,
        cost_backward: float,
        step_est_forward: Optional[dict[int, float]] = None,
        step_est_backward: Optional[dict[int, float]] = None,
        forced: Optional[str] = None,
        access_forward: Optional[AccessPath] = None,
        access_backward: Optional[AccessPath] = None,
    ) -> None:
        self.atom = atom
        self.direction = direction
        self.cost_forward = cost_forward
        self.cost_backward = cost_backward
        #: step index -> estimated frontier when sweeping forward
        self.step_est_forward = step_est_forward or {}
        #: step index -> estimated frontier when sweeping backward
        self.step_est_backward = step_est_backward or {}
        #: why the direction ignored the cost model
        #: (None | 'label-ref' | 'options')
        self.forced = forced
        #: anchor access path of each sweep direction
        self.access_forward = access_forward
        self.access_backward = access_backward

    @property
    def access(self) -> Optional[AccessPath]:
        """The chosen direction's anchor access path."""
        return (
            self.access_forward
            if self.direction == "forward"
            else self.access_backward
        )

    def step_estimates(self, direction: Optional[Direction] = None) -> dict[int, float]:
        d = direction or self.direction
        return self.step_est_forward if d == "forward" else self.step_est_backward

    def __repr__(self) -> str:
        return (
            f"AtomPlan({self.direction}, fwd={self.cost_forward:.1f}, "
            f"bwd={self.cost_backward:.1f})"
        )


class QueryPlan:
    """Planned execution of a whole graph select."""

    def __init__(
        self,
        checked: CheckedGraphSelect,
        strategy: Strategy,
        atom_plans: dict[int, AtomPlan],
    ) -> None:
        self.checked = checked
        self.strategy = strategy
        self.atom_plans = atom_plans  # keyed by id(atom)

    def plan_for(self, atom: RAtom) -> AtomPlan:
        return self.atom_plans[id(atom)]

    def __repr__(self) -> str:
        return f"QueryPlan(strategy={self.strategy}, atoms={len(self.atom_plans)})"


def _vertex_cardinality(step: RVertexStep, catalog: Catalog) -> float:
    """Estimated matches of a vertex step in isolation.

    Statically unsatisfiable conditions (the analyzer's GQW101 interval
    analysis) pin the estimate to zero instead of the selectivity guess,
    so a contradictory anchor makes its sweep direction maximally cheap —
    the executor then starts from the step that provably matches nothing
    and terminates immediately.
    """
    if step.cond is not None and predicate_feasibility(step.cond) is False:
        return 0.0
    total = 0.0
    for t in step.types:
        meta = catalog.vertex(t)
        sel = estimate_selectivity(
            step.cond, meta.distinct_counts, _cond_stats(step.cond, meta)
        )
        total += meta.num_vertices * sel
    if step.seed is not None:
        seeded = catalog.subgraphs.get(step.seed, {})
        cap = sum(seeded.get(t, 0) for t in step.types)
        total = min(total, float(cap)) if seeded else total
    return max(total, 0.0)


def _edge_expansion(step: REdgeStep, catalog: Catalog, along_lexical: bool) -> float:
    """Average frontier growth for one edge step in traversal direction.

    *along_lexical* is True when the sweep traverses the step from its
    lexical left vertex to its right vertex.
    """
    factors = []
    for name in step.names:
        em = catalog.edge(name)
        # going left->right on an OUT edge follows the declared direction
        outgoing = (step.direction == DIR_OUT) == along_lexical
        factors.append(em.degree_stats.expansion_factor(outgoing))
    if not factors:
        return 0.0
    sel = estimate_selectivity(step.cond)
    return max(factors) * sel


def _sweep_cost(
    steps: list, catalog: Catalog, forward: bool, hints: Optional[Hints] = None
) -> tuple[float, list[float], AccessPath]:
    """Frontier-recurrence cost of sweeping an atom in one direction.

    Returns ``(total cost, per-step frontier estimates, anchor access)``
    with the estimates aligned to the *sweep* order of ``steps``: a
    vertex step's estimate is its post-filter frontier, an edge/regex
    step's estimate is the expanded frontier before the next vertex
    filter.  The anchor term is the access path's cost (index-seek or
    scan) plus the resulting frontier, so a direction whose anchor can
    seek a selective index wins the recurrence.
    """
    ordered = steps if forward else list(reversed(steps))
    first = ordered[0]
    if not isinstance(first, RVertexStep):  # pragma: no cover - grammar
        raise PlanError("path must start and end with vertex steps")
    access = _plan_anchor_access(first, catalog, hints)
    frontier = _vertex_cardinality(first, catalog)
    estimates = [frontier]
    cost = access.cost + frontier
    i = 1
    while i < len(ordered):
        estep = ordered[i]
        vstep = ordered[i + 1]
        if isinstance(estep, RRegex):
            # a regex group behaves like a couple of variant hops
            frontier *= _REGEX_HOP_PENALTY
        else:
            assert isinstance(estep, REdgeStep)
            frontier *= max(_edge_expansion(estep, catalog, along_lexical=forward), 1e-3)
        estimates.append(frontier)
        assert isinstance(vstep, RVertexStep)
        selectivities = [
            estimate_selectivity(
                vstep.cond,
                catalog.vertex(t).distinct_counts,
                _cond_stats(vstep.cond, catalog.vertex(t)),
            )
            for t in vstep.types
        ] or [1.0]
        frontier *= max(selectivities)
        # frontier cannot exceed the step's own cardinality
        frontier = min(frontier, max(_vertex_cardinality(vstep, catalog), 1e-3))
        estimates.append(frontier)
        cost += frontier
        i += 2
    return cost, estimates, access


def _has_internal_label_ref(atom: RAtom) -> bool:
    """True if a step references a label defined earlier in this atom.

    Such atoms must sweep forward so the defining step is processed before
    the referencing step.
    """
    defined: set[str] = set()
    for s in atom.steps:
        if isinstance(s, (RVertexStep, REdgeStep)):
            if s.label_ref is not None and s.label_ref in defined:
                return True
            if s.label is not None:
                defined.add(s.label.name)
    return False


def plan_atom(
    atom: RAtom,
    catalog: Catalog,
    force_direction: Optional[Direction] = None,
    hints: Optional[Hints] = None,
) -> AtomPlan:
    """Choose the sweep direction (and anchor access path) for one atom."""
    cf, est_f, acc_f = _sweep_cost(atom.steps, catalog, forward=True, hints=hints)
    cb, est_b, acc_b = _sweep_cost(atom.steps, catalog, forward=False, hints=hints)
    forced: Optional[str] = None
    hinted_f = acc_f is not None and acc_f.forced == "hint"
    hinted_b = acc_b is not None and acc_b.forced == "hint"
    if _has_internal_label_ref(atom):
        direction: Direction = "forward"
        forced = "label-ref"
    elif force_direction is not None:
        direction = force_direction
        forced = "options"
    elif hinted_f != hinted_b:
        # a use_index hint applies to only one sweep's anchor: honour it
        # by sweeping from the end the index can seed
        direction = "forward" if hinted_f else "backward"
        forced = "hint"
    else:
        direction = "forward" if cf <= cb else "backward"
    n = len(atom.steps)
    # sweep-order estimates back onto original step positions
    step_est_forward = {i: e for i, e in enumerate(est_f)}
    step_est_backward = {n - 1 - i: e for i, e in enumerate(est_b)}
    return AtomPlan(
        atom, direction, cf, cb, step_est_forward, step_est_backward, forced,
        access_forward=acc_f, access_backward=acc_b,
    )


def validate_hints(hints: Optional[Hints], catalog: Catalog) -> None:
    """Reject hints naming indexes the catalog does not know."""
    if hints is None:
        return
    unknown = [n for n in hints.names() if not catalog.is_index(n)]
    if unknown:
        existing = ", ".join(sorted(catalog.indexes)) or "none"
        raise PlanError(
            f"unknown index {unknown[0]!r} in hints "
            f"(existing indexes: {existing})"
        )


def plan_graph_select(
    checked: CheckedGraphSelect,
    catalog: Catalog,
    force_direction: Optional[Direction] = None,
    force_strategy: Optional[Strategy] = None,
    hints: Optional[Hints] = None,
) -> QueryPlan:
    """Plan a checked graph select: strategy + per-atom directions."""
    validate_hints(hints, catalog)
    pattern: RPattern = checked.pattern
    stmt: GraphSelect = checked.stmt
    if force_strategy is not None:
        strategy: Strategy = force_strategy
    elif pattern.needs_bindings:
        strategy = "bindings"
    elif stmt.into is not None and stmt.into.kind == INTO_SUBGRAPH:
        strategy = "set"
    else:
        strategy = "bindings"
    if strategy == "set" and pattern.needs_bindings:
        raise PlanError(
            "this query needs per-path bindings (foreach labels or "
            "cross-step references) and cannot run with the set strategy"
        )
    atom_plans: dict[int, AtomPlan] = {}
    for atom in pattern.atoms():
        atom_plans[id(atom)] = plan_atom(atom, catalog, force_direction, hints)
    return QueryPlan(checked, strategy, atom_plans)
