"""Result materialization: subgraphs and tables (paper Section II-C).

Graph-query results have two renderings, matching the data model's
table/graph duality:

* ``into subgraph G`` — a :class:`~repro.graph.subgraph.Subgraph` holding
  the selected per-type vertex/edge id sets (Fig. 11).  Named subgraphs
  can seed later queries (Fig. 12, the ``resQ1.Vn`` notation).
* ``into table T`` (or no ``into``) — a table with one row per matched
  path (Fig. 13: "each row has all the attributes of all entities
  involved in the query path").  Named result tables feed the relational
  subset (the Fig. 6/7 two-statement pattern).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ExecutionError
from repro.graph.graphdb import GraphDB
from repro.graph.subgraph import Subgraph
from repro.graql.ast import AttrItem, GraphSelect, StarItem, StepItem
from repro.graql.typecheck import RVertexStep
from repro.query.bindings import BindingResult
from repro.query.frontier import AtomSets
from repro.storage.column import Column
from repro.storage.schema import ColumnDef, Schema
from repro.storage.table import Table

# ----------------------------------------------------------------------
# Name maps: qualifier -> step location
# ----------------------------------------------------------------------

class NameMap:
    """Maps step names (labels and unambiguous type names) to locations.

    A location is ``(atom_ordinal, step_position, RVertexStep)``.
    """

    def __init__(self) -> None:
        self._map: dict[str, tuple[int, int, RVertexStep]] = {}
        self._edges: dict[str, tuple[int, int]] = {}

    def add_atom(self, ordinal: int, atom) -> None:
        from repro.graql.typecheck import REdgeStep

        for pos, step in enumerate(atom.steps):
            if isinstance(step, REdgeStep):
                if step.label is not None and step.label.name not in self._edges:
                    self._edges[step.label.name] = (ordinal, pos)
                continue
            if not isinstance(step, RVertexStep):
                continue
            if step.label is not None and step.label.name not in self._map:
                self._map[step.label.name] = (ordinal, pos, step)
            if not step.is_variant and step.label_ref is None:
                for n in step.names:
                    self._map.setdefault(n, (ordinal, pos, step))

    def lookup(self, name: str) -> tuple[int, int, RVertexStep]:
        if name not in self._map:
            raise ExecutionError(f"unknown step reference {name!r}")
        return self._map[name]

    def lookup_edge(self, name: str) -> tuple[int, int]:
        if name not in self._edges:
            raise ExecutionError(f"unknown edge-step reference {name!r}")
        return self._edges[name]

    def is_edge_label(self, name: str) -> bool:
        return name in self._edges

    def locations(self) -> dict[str, tuple[int, int, RVertexStep]]:
        return dict(self._map)


# ----------------------------------------------------------------------
# Subgraph materialization (set strategy)
# ----------------------------------------------------------------------

def subgraph_from_sets(
    stmt: GraphSelect,
    atom_results: list[tuple[object, AtomSets]],
    name_map: NameMap,
    result_name: str,
) -> Subgraph:
    """Build the output subgraph from per-atom set results."""
    out = Subgraph(result_name)
    star = any(isinstance(i, StarItem) for i in stmt.items)
    if star:
        for _, sets in atom_results:
            out = out.union(Subgraph(result_name, sets.all_vertices(), sets.all_edges()), result_name)
        return out
    for item in stmt.items:
        if not isinstance(item, StepItem):
            raise ExecutionError(
                "subgraph results select whole steps ('select V0, Vn') or '*'"
            )
        if name_map.is_edge_label(item.name):
            ordinal, pos = name_map.lookup_edge(item.name)
            _, sets = atom_results[ordinal]
            out = out.union(
                Subgraph(result_name, {}, sets.edge_sets.get(pos, {})),
                result_name,
            )
            continue
        ordinal, pos, _ = name_map.lookup(item.name)
        _, sets = atom_results[ordinal]
        step_sets = sets.vertex_sets.get(pos, {})
        out = out.union(Subgraph(result_name, step_sets, {}), result_name)
    return out


def subgraph_from_bindings(
    stmt: GraphSelect,
    joined: "JoinedBindings",
    name_map: NameMap,
    result_name: str,
    db: GraphDB,
) -> Subgraph:
    """Build a subgraph from enumerated paths (foreach queries)."""
    star = any(isinstance(i, StarItem) for i in stmt.items)
    vertices: dict[str, list[np.ndarray]] = {}
    edges: dict[str, list[np.ndarray]] = {}
    if star:
        for (aord, kind, pos), arr in joined.columns.items():
            if kind == "v":
                step = joined.vertex_step(aord, pos)
                for t, vids in _split_by_type(joined, aord, pos, step, arr, db):
                    vertices.setdefault(t, []).append(vids)
            elif kind == "e":
                ename_arr = joined.edge_types_for(aord, pos, db)
                for ename, eids in ename_arr:
                    edges.setdefault(ename, []).append(eids)
    else:
        for item in stmt.items:
            assert isinstance(item, StepItem)
            aord, pos, step = name_map.lookup(item.name)
            arr = joined.columns[(aord, "v", pos)]
            for t, vids in _split_by_type(joined, aord, pos, step, arr, db):
                vertices.setdefault(t, []).append(vids)
    return Subgraph(
        result_name,
        {t: np.unique(np.concatenate(v)) for t, v in vertices.items()},
        {e: np.unique(np.concatenate(v)) for e, v in edges.items()},
    )


def _split_by_type(joined, aord, pos, step: RVertexStep, arr, db):
    if len(step.types) == 1:
        yield step.types[0], arr
        return
    tids = joined.columns.get((aord, "t", pos))
    type_ids = {t: i for i, t in enumerate(sorted(db.vertex_types))}
    for t in step.types:
        mask = tids == type_ids[t]
        if mask.any():
            yield t, arr[mask]


# ----------------------------------------------------------------------
# Joined bindings across atoms (and-composition)
# ----------------------------------------------------------------------

class JoinedBindings:
    """Binding columns from one or more atoms, keyed (atom, kind, pos)."""

    def __init__(self, columns: dict[tuple[int, str, int], np.ndarray], nrows: int, steps: dict[int, list]) -> None:
        self.columns = columns
        self.nrows = nrows
        self._steps = steps  # atom ordinal -> atom.steps

    @classmethod
    def from_result(cls, ordinal: int, result: BindingResult, atom) -> "JoinedBindings":
        cols = {
            (ordinal, kind, pos): arr for (kind, pos), arr in result.columns.items()
        }
        return cls(cols, result.nrows, {ordinal: atom.steps})

    def vertex_step(self, aord: int, pos: int) -> RVertexStep:
        return self._steps[aord][pos]

    def edge_types_for(self, aord: int, pos: int, db: GraphDB):
        """Split an edge column by edge type."""
        arr = self.columns[(aord, "e", pos)]
        estep = self._steps[aord][pos]
        if len(estep.names) == 1:
            return [(estep.names[0], arr)]
        etids = self.columns.get((aord, "et", pos))
        ids = {n: i for i, n in enumerate(sorted(db.edge_types))}
        out = []
        for n in estep.names:
            mask = etids == ids[n]
            if mask.any():
                out.append((n, arr[mask]))
        return out

    def join(self, other: "JoinedBindings", pairs: list[tuple[tuple[int, str, int], tuple[int, str, int]]]) -> "JoinedBindings":
        """Equi-join on the given column-key pairs (all int64 columns)."""
        if not pairs:
            raise ExecutionError(
                "'and' composition requires a shared label between the paths"
            )
        lcodes = _combine(self, [a for a, _ in pairs])
        rcodes = _combine(other, [b for _, b in pairs])
        order = np.argsort(rcodes, kind="stable")
        rs = rcodes[order]
        lo = np.searchsorted(rs, lcodes, "left")
        hi = np.searchsorted(rs, lcodes, "right")
        counts = hi - lo
        total = int(counts.sum())
        li = np.repeat(np.arange(len(lcodes)), counts)
        if total:
            starts = np.repeat(lo, counts)
            offs = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
            ri = order[starts + offs]
        else:
            ri = np.empty(0, dtype=np.int64)
            li = li[:0]
        cols = {k: v[li] for k, v in self.columns.items()}
        cols.update({k: v[ri] for k, v in other.columns.items()})
        steps = dict(self._steps)
        steps.update(other._steps)
        return JoinedBindings(cols, total, steps)


def _combine(jb: JoinedBindings, keys) -> np.ndarray:
    code = jb.columns[keys[0]].astype(np.int64).copy()
    for k in keys[1:]:
        arr = jb.columns[k]
        span = int(arr.max(initial=0)) + 1
        code = code * span + arr
    return code


# ----------------------------------------------------------------------
# Table materialization (binding strategy)
# ----------------------------------------------------------------------

def table_from_bindings(
    stmt: GraphSelect,
    joined: JoinedBindings,
    name_map: NameMap,
    result_name: str,
    db: GraphDB,
) -> Table:
    """Build the result table: one row per matched path (Fig. 6/13)."""
    defs: list[ColumnDef] = []
    cols: list[Column] = []
    used: set[str] = set()

    def add(name: str, dtype, arr: np.ndarray) -> None:
        final = name
        k = 2
        while final in used:
            final = f"{name}_{k}"
            k += 1
        used.add(final)
        defs.append(ColumnDef(final, dtype))
        cols.append(Column(dtype, arr))

    star = any(isinstance(i, StarItem) for i in stmt.items)
    if star:
        _add_star_columns(joined, db, add)
    else:
        for item in stmt.items:
            if isinstance(item, AttrItem):
                if name_map.is_edge_label(item.ref.qualifier):
                    aord, pos = name_map.lookup_edge(item.ref.qualifier)
                    estep = joined._steps[aord][pos]
                    et = db.edge_type(estep.names[0])
                    arr, dtype = et.attribute_array(item.ref.name)
                    eids = joined.columns[(aord, "e", pos)]
                    add(item.alias or item.ref.name, dtype, arr[eids])
                    continue
                aord, pos, step = name_map.lookup(item.ref.qualifier)
                arr, dtype = _attr_values(joined, aord, pos, step, item.ref.name, db)
                add(item.alias or item.ref.name, dtype, arr)
            elif isinstance(item, StepItem):
                aord, pos, step = name_map.lookup(item.name)
                if len(step.types) != 1:
                    raise ExecutionError(
                        f"step {item.name!r} matches several vertex types; "
                        f"select specific attributes instead"
                    )
                vt = db.vertex_type(step.types[0])
                vids = joined.columns[(aord, "v", pos)]
                for kc in vt.key_cols:
                    arr, dtype = vt.attribute_array(kc)
                    add(f"{item.name}_{kc}", dtype, arr[vids])
            else:
                raise ExecutionError("unsupported select item for table output")
    if not defs:
        raise ExecutionError("graph select produced no output columns")
    return Table(result_name, Schema(defs), cols)


def _attr_values(joined, aord, pos, step: RVertexStep, attr: str, db: GraphDB):
    vids = joined.columns[(aord, "v", pos)]
    if len(step.types) == 1:
        vt = db.vertex_type(step.types[0])
        arr, dtype = vt.attribute_array(attr)
        return arr[vids], dtype
    # multi-type step: gather per type
    tids = joined.columns[(aord, "t", pos)]
    type_ids = {t: i for i, t in enumerate(sorted(db.vertex_types))}
    dtype = db.vertex_type(step.types[0]).attribute_type(attr)
    if dtype.numpy_dtype == np.dtype(object):
        out = np.empty(len(vids), dtype=object)
    else:
        out = np.full(len(vids), dtype.null_value, dtype=dtype.numpy_dtype)
    for t in step.types:
        mask = tids == type_ids[t]
        if mask.any():
            arr, _ = db.vertex_type(t).attribute_array(attr)
            out[mask] = arr[vids[mask]]
    return out, dtype


def _add_star_columns(joined: JoinedBindings, db: GraphDB, add) -> None:
    """Fig. 13: all attributes of every entity on the path."""
    for key in sorted(joined.columns.keys()):
        aord, kind, pos = key
        if kind == "v":
            step = joined.vertex_step(aord, pos)
            if len(step.types) != 1:
                raise ExecutionError(
                    "'select *' into a table requires concrete steps; a "
                    "variant step matches several types with different "
                    "attributes"
                )
            vt = db.vertex_type(step.types[0])
            prefix = (step.label.name if step.label else None) or step.types[0]
            vids = joined.columns[key]
            for cdef in vt.attribute_schema():
                arr, dtype = vt.attribute_array(cdef.name)
                add(f"{prefix}_{cdef.name}", dtype, arr[vids])
        elif kind == "e":
            estep = joined._steps[aord][pos]
            if len(estep.names) != 1:
                continue
            et = db.edge_type(estep.names[0])
            if et.assoc_table is None:
                continue
            eids = joined.columns[key]
            for cdef in et.attribute_schema():
                arr, dtype = et.attribute_array(cdef.name)
                add(f"{estep.names[0]}_{cdef.name}", dtype, arr[eids])
