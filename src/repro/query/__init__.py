"""Query execution: path patterns, relational subset, result capture.

Two execution strategies implement the paper's path-query semantics
(Section II-B):

* **set-frontier** (:mod:`repro.query.frontier`) — Eq. 5's set semantics:
  a forward filtered expansion over the bidirectional CSR edge indexes
  followed by a backward cull, producing per-step vertex/edge sets in
  which every element lies on a full path.  Linear in traversed edges;
  used for subgraph results.
* **binding-join** (:mod:`repro.query.bindings`) — full path enumeration
  as a growing binding table, needed for element-wise (``foreach``)
  labels, cross-step attribute comparisons, and table outputs whose row
  multiplicity is per-path (Fig. 6: "each id repeated for each feature").

The planner (:mod:`repro.query.planner`) picks the strategy and — using
catalog statistics per Section III-B — the traversal direction, exploiting
the existence of both forward and reverse edge indexes.
"""

from repro.query.executor import StatementResult, execute_script, execute_statement
from repro.query.explain import ExplainReport, PlanNode, StatementPlan
from repro.query.planner import AccessPath, AtomPlan, QueryPlan, plan_graph_select

__all__ = [
    "execute_statement",
    "execute_script",
    "StatementResult",
    "plan_graph_select",
    "QueryPlan",
    "AtomPlan",
    "AccessPath",
    "ExplainReport",
    "PlanNode",
    "StatementPlan",
]
