"""Set-frontier path-query execution (Eq. 5 set semantics).

The result of a path query is, per step, the set of vertices/edges lying
on at least one full matching path.  This executor computes it in two
vectorized sweeps over the CSR edge indexes:

1. **forward sweep** (in the planner's chosen direction): each vertex step
   filters the incoming frontier with its condition / seed / label
   constraints (Eq. 4); each edge step expands the frontier through every
   compatible edge type, honouring the step's direction via the forward or
   reverse index.
2. **backward cull**: walking back from the final step, drop every edge
   whose far endpoint did not survive, and shrink each vertex set to the
   endpoints of surviving edges — after this pass, Eq. 5's "culled of all
   vertices that have no path to vertices selected at that step" holds
   exactly (asserted by the property-based tests against brute force).

Frontiers are per-vertex-type dicts of sorted unique int64 vid arrays, so
variant steps (Section II-B4) fall out naturally: a variant frontier just
has entries for several types, and Eq. 12-style type-matched labels work
because label membership is intersected per type.

Path regular expressions (Fig. 10) with ``+``/``*`` are fixpoint
reachability over the group's pairs; ``{n}`` groups are unrolled before
the sweep (see :func:`unroll_counted_regexes`).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ExecutionError
from repro.graph.graphdb import GraphDB
from repro.graql.ast import DIR_IN, DIR_OUT, REGEX_COUNT, REGEX_STAR
from repro.graql.typecheck import RAtom, REdgeStep, RRegex, RVertexStep
from repro.storage.expr import BinOp

_EMPTY = np.empty(0, dtype=np.int64)

SetDict = dict[str, np.ndarray]  # type name -> sorted unique ids


def _union(a: SetDict, b: SetDict) -> SetDict:
    out = dict(a)
    for k, v in b.items():
        out[k] = np.union1d(out[k], v) if k in out else v
    return out


def _intersect_sorted(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return np.intersect1d(a, b, assume_unique=False)


def _in_sorted(values: np.ndarray, sorted_set: np.ndarray) -> np.ndarray:
    """Boolean mask: values[i] in sorted_set (vectorized)."""
    if len(sorted_set) == 0 or len(values) == 0:
        return np.zeros(len(values), dtype=bool)
    pos = np.searchsorted(sorted_set, values)
    pos = np.minimum(pos, len(sorted_set) - 1)
    return sorted_set[pos] == values


def _is_empty(sets: SetDict) -> bool:
    return all(len(v) == 0 for v in sets.values())


# ----------------------------------------------------------------------
# Atom preprocessing
# ----------------------------------------------------------------------

def _merge_vertex_steps(inner: RVertexStep, outer: RVertexStep) -> RVertexStep:
    """Unify a regex group's final inner vertex with the following step."""
    types = [t for t in outer.types if t in inner.types] if not inner.is_variant else list(outer.types)
    if inner.cond is not None and outer.cond is not None:
        cond = BinOp("and", inner.cond, outer.cond)
    else:
        cond = inner.cond if inner.cond is not None else outer.cond
    return RVertexStep(
        types,
        cond,
        outer.label,
        outer.label_ref,
        outer.seed,
        outer.is_variant and inner.is_variant,
        list(set(inner.cross_refs) | set(outer.cross_refs)),
        outer.names,
    )


def unroll_counted_regexes(steps: list) -> list[tuple]:
    """Replace ``{n}`` regex groups by n inline copies of their pairs.

    Returns ``[(step, original_index)]`` so results can be folded back to
    the original step positions (inline copies map to the group's index).
    """
    out: list[tuple] = []
    for i, s in enumerate(steps):
        if isinstance(s, RRegex) and s.op == REGEX_COUNT:
            if s.count is None or s.count < 1:
                raise ExecutionError("regex repetition count must be >= 1")
            # splice: n copies of (edge, vertex); the final inner vertex is
            # merged with the *following* original vertex step
            nxt = steps[i + 1]
            assert isinstance(nxt, RVertexStep)
            for k in range(s.count):
                for j, (e, v) in enumerate(s.pairs):
                    out.append((e, i))
                    is_last = k == s.count - 1 and j == len(s.pairs) - 1
                    if is_last:
                        out.append((_merge_vertex_steps(v, nxt), i + 1))
                    else:
                        out.append((v, i))
        elif isinstance(s, RVertexStep) and out and out[-1][1] == i:
            continue  # already emitted as the merged final vertex
        else:
            out.append((s, i))
    return out


def reverse_steps(tagged: list[tuple]) -> list[tuple]:
    """Reverse an atom: flip step order and every edge direction."""
    out: list[tuple] = []
    for s, idx in reversed(tagged):
        if isinstance(s, REdgeStep):
            flipped = REdgeStep(
                list(s.names),
                DIR_IN if s.direction == DIR_OUT else DIR_OUT,
                s.cond,
                s.label,
                s.is_variant,
                s.label_ref,
            )
            out.append((flipped, idx))
        elif isinstance(s, RRegex):
            pairs = []
            for e, v in reversed(s.pairs):
                pairs.append(
                    (
                        REdgeStep(
                            list(e.names),
                            DIR_IN if e.direction == DIR_OUT else DIR_OUT,
                            e.cond,
                            e.label,
                            e.is_variant,
                            e.label_ref,
                        ),
                        v,
                    )
                )
            out.append((RRegex(pairs, s.op, s.count), idx))
        else:
            out.append((s, idx))
    return out


# ----------------------------------------------------------------------
# The executor
# ----------------------------------------------------------------------

class AtomSets:
    """Result of set-semantics execution of one atom.

    ``vertex_sets[i]`` / ``edge_sets[i]`` are keyed by the step's position
    in the original atom; each maps type name -> sorted unique id array.
    """

    def __init__(self, num_steps: int) -> None:
        self.vertex_sets: dict[int, SetDict] = {}
        self.edge_sets: dict[int, SetDict] = {}
        self.num_steps = num_steps

    def all_vertices(self) -> SetDict:
        out: SetDict = {}
        for s in self.vertex_sets.values():
            out = _union(out, s)
        return out

    def all_edges(self) -> SetDict:
        out: SetDict = {}
        for s in self.edge_sets.values():
            out = _union(out, s)
        return out

    def is_empty(self) -> bool:
        return all(_is_empty(s) for s in self.vertex_sets.values())


class FrontierExecutor:
    """Runs atoms under set semantics against a GraphDB."""

    def __init__(
        self,
        db: GraphDB,
        label_env: Optional[dict[str, SetDict]] = None,
        profile=None,
    ) -> None:
        self.db = db
        #: label name -> per-type vid sets (shared across atoms of a query)
        self.label_env: dict[str, SetDict] = label_env if label_env is not None else {}
        #: refinement pins: extra restriction applied at a label's defining
        #: step during and-composition fixpoint iteration
        self.pin_labels: dict[str, SetDict] = {}
        #: edge label name -> per-edge-type eid sets (Eq. 6 for edges)
        self.edge_label_env: dict[str, SetDict] = {}
        #: optional QueryProfile receiving index-hit/edge-scan counters;
        #: None keeps the hot path at a single attribute test
        self.profile = profile

    # ------------------------------------------------------------------
    # Step primitives
    # ------------------------------------------------------------------
    def _anchor_candidates(self, t: str, vt, access) -> np.ndarray:
        """Initial candidates of an anchor step: index seek or full range.

        The seek is pruning only — the step condition is still applied —
        so a missing or stale-named index (e.g. on a distributed worker's
        partition db, which does not build attribute indexes) degrades to
        the full scan without changing results.
        """
        if (
            access is not None
            and access.kind == "index-seek"
            and access.type_name == t
        ):
            gi = self.db.attr_indexes.get(access.index)
            if gi is not None and gi.target_name == t:
                if access.range_spec is not None:
                    low, high, low_ex, high_ex = access.range_spec
                    cands = gi.index.seek_range(
                        low,
                        high,
                        low_exclusive=low_ex,
                        high_exclusive=high_ex,
                        prefix=access.eq_values,
                    )
                else:
                    cands = gi.index.seek_eq(access.eq_values)
                if self.profile is not None:
                    self.profile.attr_seeks += 1
                    self.profile.attr_seek_rows += len(cands)
                return cands
        return np.arange(vt.num_vertices, dtype=np.int64)

    def _vertex_select(
        self, step: RVertexStep, incoming: Optional[SetDict], access=None
    ) -> SetDict:
        out: SetDict = {}
        for t in step.types:
            vt = self.db.vertex_type(t)
            if incoming is None:
                cands = self._anchor_candidates(t, vt, access)
            else:
                cands = incoming.get(t, _EMPTY)
            if step.seed is not None and len(cands):
                cands = _intersect_sorted(cands, self.db.subgraph(step.seed).vertex_ids(t))
            if step.label_ref is not None and len(cands):
                label_sets = self.label_env.get(step.label_ref, {})
                cands = _intersect_sorted(cands, label_sets.get(t, _EMPTY))
            if step.label is not None and step.label.name in self.pin_labels and len(cands):
                pin = self.pin_labels[step.label.name]
                cands = _intersect_sorted(cands, pin.get(t, _EMPTY))
            if step.cond is not None and len(cands):
                cands = vt.select(step.cond, cands)
            if len(cands):
                out[t] = np.unique(cands)
        return out

    def _edge_expand(
        self,
        step: REdgeStep,
        prev_sets: SetDict,
        next_types: list[str],
        allowed_edges: Optional[SetDict] = None,
    ) -> tuple[SetDict, SetDict]:
        """Expand one edge step.  Returns (next frontier, matched eids)."""
        frontier: SetDict = {}
        matched: SetDict = {}
        for ename in step.names:
            et = self.db.edge_type(ename)
            along = step.direction == DIR_OUT
            from_type = et.source.name if along else et.target.name
            to_type = et.target.name if along else et.source.name
            if to_type not in next_types:
                continue
            fr = prev_sets.get(from_type, _EMPTY)
            if len(fr) == 0:
                continue
            index = self.db.index(ename).direction(along)
            allowed = None
            if step.cond is not None:
                allowed = np.sort(et.select(step.cond))
            if step.label_ref is not None:
                labelled = self.edge_label_env.get(step.label_ref, {}).get(
                    ename, _EMPTY
                )
                allowed = (
                    labelled if allowed is None
                    else _intersect_sorted(allowed, labelled)
                )
            if allowed_edges is not None:
                extra = allowed_edges.get(ename, _EMPTY)
                allowed = extra if allowed is None else _intersect_sorted(allowed, extra)
            _, tgts, eids = index.expand_restricted(fr, allowed)
            if self.profile is not None:
                self.profile.index_hits += 1
                self.profile.edges_scanned += len(eids)
            if len(eids) == 0:
                continue
            frontier = _union(frontier, {to_type: np.unique(tgts)})
            matched = _union(matched, {ename: np.unique(eids)})
        return frontier, matched

    # ------------------------------------------------------------------
    # Path regular expressions (+ / *)
    # ------------------------------------------------------------------
    def _regex_round(
        self, group: RRegex, sets: SetDict, allowed_edges: Optional[SetDict] = None
    ) -> tuple[SetDict, SetDict]:
        cur = sets
        edges: SetDict = {}
        for estep, vstep in group.pairs:
            frontier, eids = self._edge_expand(estep, cur, vstep.types, allowed_edges)
            cur = self._vertex_select(vstep, frontier)
            edges = _union(edges, eids)
            if _is_empty(cur):
                return {}, edges
        return cur, edges

    def _regex_closure(
        self, group: RRegex, start: SetDict, allowed_edges: Optional[SetDict] = None
    ) -> tuple[SetDict, SetDict]:
        """All states reachable in >=1 rounds (and the traversed edges)."""
        acc: SetDict = {}
        edges: SetDict = {}
        frontier = start
        while True:
            frontier, round_edges = self._regex_round(group, frontier, allowed_edges)
            edges = _union(edges, round_edges)
            new: SetDict = {}
            for t, vids in frontier.items():
                fresh = np.setdiff1d(vids, acc.get(t, _EMPTY), assume_unique=False)
                if len(fresh):
                    new[t] = fresh
            if not new:
                break
            acc = _union(acc, new)
            frontier = new
        return acc, edges

    def _regex_forward(self, group: RRegex, start: SetDict) -> tuple[SetDict, SetDict]:
        closure, edges = self._regex_closure(group, start)
        if group.op == REGEX_STAR:
            closure = _union(closure, start)  # k = 0 keeps the start states
        return closure, edges

    def _regex_cull(
        self,
        group_reversed: RRegex,
        culled_next: SetDict,
        forward_prev: SetDict,
        forward_edges: SetDict,
    ) -> tuple[SetDict, SetDict]:
        """Cull through a regex group during the backward pass.

        *group_reversed* is the group with pair order and edge directions
        flipped, so its closure computes co-reachability.  Kept edges are
        those connecting a forward-reachable source to a co-reachable
        target — every such edge lies on some prev -> next path.
        """
        co_reach, _ = self._regex_closure(group_reversed, culled_next, forward_edges)
        culled_prev: SetDict = {}
        for t, vids in forward_prev.items():
            keep = _intersect_sorted(vids, co_reach.get(t, _EMPTY))
            if group_reversed.op == REGEX_STAR:
                keep = np.union1d(keep, _intersect_sorted(vids, culled_next.get(t, _EMPTY)))
            if len(keep):
                culled_prev[t] = keep
        if _is_empty(culled_prev) and group_reversed.op != REGEX_STAR:
            return {}, {}
        # edges on some path: walked-from endpoint reachable from culled
        # prev, walked-to endpoint co-reachable from culled next.  Each
        # edge type is walked in the orientation(s) its group step uses.
        original = _flip_group(group_reversed)
        fwd_reach, _ = self._regex_closure(original, culled_prev, forward_edges)
        fwd_states = _union(fwd_reach, culled_prev)
        bwd_states = _union(co_reach, culled_next)
        orientations: dict[str, set[bool]] = {}
        for estep, _v in original.pairs:
            for ename in estep.names:
                orientations.setdefault(ename, set()).add(
                    estep.direction == DIR_OUT
                )
        kept: SetDict = {}
        for ename, eids in forward_edges.items():
            et = self.db.edge_type(ename)
            src = et.src_vids[eids]
            tgt = et.tgt_vids[eids]
            s_f = _in_sorted(src, fwd_states.get(et.source.name, _EMPTY))
            t_b = _in_sorted(tgt, bwd_states.get(et.target.name, _EMPTY))
            s_b = _in_sorted(src, bwd_states.get(et.source.name, _EMPTY))
            t_f = _in_sorted(tgt, fwd_states.get(et.target.name, _EMPTY))
            mask = np.zeros(len(eids), dtype=bool)
            for along in orientations.get(ename, ()):
                mask |= (s_f & t_b) if along else (s_b & t_f)
            if mask.any():
                kept[ename] = eids[mask]
        return culled_prev, kept

    # ------------------------------------------------------------------
    # Whole-atom execution
    # ------------------------------------------------------------------
    def run_atom(
        self, atom: RAtom, direction: str = "forward", access=None
    ) -> AtomSets:
        tagged = unroll_counted_regexes(atom.steps)
        if direction == "backward":
            tagged = reverse_steps(tagged)
        steps = [s for s, _ in tagged]
        indices = [i for _, i in tagged]
        n = len(steps)
        forward: list[SetDict] = [dict() for _ in range(n)]
        # ---- forward sweep
        assert isinstance(steps[0], RVertexStep)
        forward[0] = self._vertex_select(steps[0], None, access)
        self._record_label(steps[0], forward[0])
        i = 1
        dead = _is_empty(forward[0])
        while i < n:
            estep, vstep = steps[i], steps[i + 1]
            assert isinstance(vstep, RVertexStep)
            if dead:
                forward[i] = {}
                forward[i + 1] = {}
            elif isinstance(estep, RRegex):
                frontier, eids = self._regex_forward(estep, forward[i - 1])
                forward[i] = eids
                forward[i + 1] = self._vertex_select(vstep, frontier)
            else:
                assert isinstance(estep, REdgeStep)
                frontier, eids = self._edge_expand(estep, forward[i - 1], vstep.types)
                forward[i] = eids
                forward[i + 1] = self._vertex_select(vstep, frontier)
                self._record_edge_label(estep, eids)
            if not dead:
                self._record_label(vstep, forward[i + 1])
                dead = _is_empty(forward[i + 1])
            i += 2
        # ---- backward cull
        culled: list[SetDict] = [dict() for _ in range(n)]
        culled[n - 1] = forward[n - 1]
        i = n - 2
        while i > 0:
            estep = steps[i]
            if isinstance(estep, RRegex):
                rev = _flip_group(estep)
                prev, kept = self._regex_cull(rev, culled[i + 1], forward[i - 1], forward[i])
                culled[i] = kept
                culled[i - 1] = prev
            else:
                assert isinstance(estep, REdgeStep)
                prev, kept = self._cull_edge(estep, culled[i + 1], forward[i - 1], forward[i])
                culled[i] = kept
                culled[i - 1] = prev
            i -= 2
        # ---- fold back to original indices
        result = AtomSets(len(atom.steps))
        for pos, (step, idx) in enumerate(tagged):
            if isinstance(step, RVertexStep):
                prior = result.vertex_sets.get(idx, {})
                result.vertex_sets[idx] = _union(prior, culled[pos]) if prior else culled[pos]
            else:
                prior = result.edge_sets.get(idx, {})
                result.edge_sets[idx] = _union(prior, culled[pos]) if prior else culled[pos]
        # labels get the final (culled) sets for cross-atom composition
        for pos, (step, _) in enumerate(tagged):
            if isinstance(step, RVertexStep):
                self._record_label(step, culled[pos])
            elif isinstance(step, REdgeStep):
                self._record_edge_label(step, culled[pos])
        return result

    def _cull_edge(
        self,
        estep: REdgeStep,
        culled_next: SetDict,
        forward_prev: SetDict,
        forward_edges: SetDict,
    ) -> tuple[SetDict, SetDict]:
        """Keep edges whose next-side endpoint survived; shrink prev."""
        culled_prev: SetDict = {}
        kept: SetDict = {}
        for ename in estep.names:
            eids = forward_edges.get(ename, _EMPTY)
            if len(eids) == 0:
                continue
            et = self.db.edge_type(ename)
            along = estep.direction == DIR_OUT
            # when traversing prev->next along the declaration, next side
            # is the target
            next_type = et.target.name if along else et.source.name
            prev_type = et.source.name if along else et.target.name
            next_vids = et.tgt_vids[eids] if along else et.src_vids[eids]
            prev_vids = et.src_vids[eids] if along else et.tgt_vids[eids]
            mask = _in_sorted(next_vids, culled_next.get(next_type, _EMPTY))
            mask &= _in_sorted(prev_vids, forward_prev.get(prev_type, _EMPTY))
            if mask.any():
                kept = _union(kept, {ename: eids[mask]})
                culled_prev = _union(culled_prev, {prev_type: np.unique(prev_vids[mask])})
        return culled_prev, kept

    def _record_label(self, step: RVertexStep, sets: SetDict) -> None:
        if step.label is not None:
            self.label_env[step.label.name] = {
                t: v.copy() for t, v in sets.items()
            }

    def _record_edge_label(self, step: REdgeStep, sets: SetDict) -> None:
        if step.label is not None:
            self.edge_label_env[step.label.name] = {
                t: v.copy() for t, v in sets.items()
            }


def _flip_group(group: RRegex) -> RRegex:
    pairs = []
    for e, v in reversed(group.pairs):
        pairs.append(
            (
                REdgeStep(
                    list(e.names),
                    DIR_IN if e.direction == DIR_OUT else DIR_OUT,
                    e.cond,
                    e.label,
                    e.is_variant,
                    e.label_ref,
                ),
                v,
            )
        )
    return RRegex(pairs, group.op, group.count)
