"""EXPLAIN: structured query plans with text and JSON renderings.

What the Section III-B machinery decided for a statement — the chosen
execution strategy, each atom's sweep direction with both cost
estimates, the anchor's access path (index-seek vs scan), per-step
candidate types with estimated cardinalities and selectivities, and —
for relational statements — the operator pipeline.

``Database.explain`` returns an :class:`ExplainReport`: a frozen tree of
:class:`PlanNode` objects.  ``report.to_text()`` (and ``str(report)``)
is the classic indented rendering; ``report.to_json()`` is the
machine-readable schema pinned by ``tests/query/test_explain.py``.  The
CLI and REPL render from the same object, so the two views can never
drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

from repro.catalog import Catalog, estimate_selectivity
from repro.graql.ast import (
    AggItem,
    AttrItem,
    CreateEdge,
    CreateIndex,
    CreateTable,
    CreateVertex,
    DropIndex,
    GraphSelect,
    Ingest,
    StarItem,
    Statement,
    TableSelect,
)
from repro.graql.params import substitute_statement
from repro.graql.pretty import pretty_expr
from repro.graql.typecheck import (
    CheckedGraphSelect,
    RAtom,
    REdgeStep,
    RRegex,
    RVertexStep,
    check_statement,
)
from repro.query.planner import plan_graph_select


# ----------------------------------------------------------------------
# The structured plan tree
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class PlanNode:
    """One node of an explain tree.

    ``title`` is the node's rendered line (indentation is structural:
    each nesting level adds two spaces); ``attrs`` carries the
    machine-readable facts behind the line — costs, estimates, access
    paths — for ``to_json()``.
    """

    kind: str
    title: str
    attrs: Mapping[str, Any] = field(default_factory=dict)
    children: tuple["PlanNode", ...] = ()

    def to_text(self, depth: int = 0) -> str:
        lines = ["  " * depth + self.title]
        lines.extend(c.to_text(depth + 1) for c in self.children)
        return "\n".join(lines)

    def to_json(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "title": self.title,
            "attrs": dict(self.attrs),
            "children": [c.to_json() for c in self.children],
        }

    def __str__(self) -> str:
        return self.to_text()


@dataclass(frozen=True)
class StatementPlan:
    """One statement's plan, tagged with its schedule wave."""

    index: int
    wave: int
    root: PlanNode
    #: measured :class:`~repro.obs.QueryProfile` (analyze mode only)
    profile: Optional[Any] = None

    def to_json(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "wave": self.wave,
            "plan": self.root.to_json(),
            "profile": (
                self.profile.to_dict() if self.profile is not None else None
            ),
        }


@dataclass(frozen=True)
class ExplainReport:
    """The full explain result for a script.

    ``to_text()`` / ``str()`` reproduce the classic block rendering
    (statement plans, dependence schedule, analyze profiles);
    ``to_json()`` is the stable machine-readable schema.  ``in`` checks
    delegate to the text, so existing string-style assertions keep
    working against the structured object.
    """

    mode: str  # 'plan' | 'analyze'
    statements: tuple[StatementPlan, ...]
    num_waves: int
    max_parallelism: int

    def to_text(self) -> str:
        blocks = []
        for sp in self.statements:
            blocks.append(
                f"-- statement {sp.index} (wave {sp.wave}) " + "-" * 20
                + f"\n{sp.root.to_text()}"
            )
        blocks.append(
            f"-- schedule: {self.num_waves} wave(s), "
            f"max parallelism {self.max_parallelism}"
        )
        if self.mode == "analyze":
            for sp in self.statements:
                blocks.append(f"-- analyze statement {sp.index} " + "-" * 18)
                blocks.append(
                    sp.profile.render()
                    if sp.profile is not None
                    else "(no profile)"
                )
        return "\n".join(blocks)

    def to_json(self) -> dict[str, Any]:
        return {
            "mode": self.mode,
            "statements": [sp.to_json() for sp in self.statements],
            "schedule": {
                "num_waves": self.num_waves,
                "max_parallelism": self.max_parallelism,
            },
        }

    def __str__(self) -> str:
        return self.to_text()

    def __contains__(self, item: str) -> bool:
        return item in self.to_text()


# ----------------------------------------------------------------------
# Per-statement plan builders
# ----------------------------------------------------------------------

def plan_statement(
    stmt: Statement,
    catalog: Catalog,
    params: Optional[Mapping[str, Any]] = None,
    hints=None,
) -> PlanNode:
    """One statement's plan as a :class:`PlanNode` tree."""
    if params:
        stmt = substitute_statement(stmt, params)
    if isinstance(stmt, CreateTable):
        return PlanNode(
            "create-table",
            f"CREATE TABLE {stmt.name} ({len(stmt.schema)} columns)",
            {"name": stmt.name, "columns": len(stmt.schema)},
        )
    if isinstance(stmt, CreateVertex):
        return PlanNode(
            "create-vertex",
            f"CREATE VERTEX {stmt.name} <- view over {stmt.table} "
            f"(key: {', '.join(stmt.key_cols)})",
            {"name": stmt.name, "table": stmt.table, "key": list(stmt.key_cols)},
        )
    if isinstance(stmt, CreateEdge):
        title = (
            f"CREATE EDGE {stmt.name}: {stmt.source.type_name} -> "
            f"{stmt.target.type_name}"
            + (f" via {', '.join(stmt.from_tables)}" if stmt.from_tables else "")
        )
        return PlanNode(
            "create-edge",
            title,
            {
                "name": stmt.name,
                "source": stmt.source.type_name,
                "target": stmt.target.type_name,
            },
        )
    if isinstance(stmt, CreateIndex):
        return PlanNode(
            "create-index",
            f"CREATE INDEX {stmt.name} on {stmt.target}"
            f"({', '.join(stmt.attrs)}) [sorted attribute index]",
            {"name": stmt.name, "target": stmt.target, "attrs": list(stmt.attrs)},
        )
    if isinstance(stmt, DropIndex):
        return PlanNode(
            "drop-index", f"DROP INDEX {stmt.name}", {"name": stmt.name}
        )
    if isinstance(stmt, Ingest):
        return PlanNode(
            "ingest",
            f"INGEST {stmt.path} -> {stmt.table} (atomic view rebuild)",
            {"path": stmt.path, "table": stmt.table},
        )
    if isinstance(stmt, TableSelect):
        check_statement(stmt, catalog)  # surface static errors in explain
        return _plan_table_select(stmt, catalog)
    assert isinstance(stmt, GraphSelect)
    checked = check_statement(stmt, catalog)
    assert isinstance(checked, CheckedGraphSelect)
    return _plan_graph_select(checked, catalog, hints)


def explain_statement(
    stmt: Statement,
    catalog: Catalog,
    params: Optional[Mapping[str, Any]] = None,
) -> str:
    """One statement's plan as indented text (legacy string form)."""
    return plan_statement(stmt, catalog, params).to_text()


def _plan_table_select(stmt: TableSelect, catalog: Catalog) -> PlanNode:
    children = []
    meta = catalog.tables.get(stmt.source)
    if meta is not None:
        children.append(
            PlanNode(
                "scan",
                f"scan {stmt.source} ({meta.num_rows} rows)",
                {"table": stmt.source, "rows": meta.num_rows},
            )
        )
    if stmt.where is not None:
        sel = estimate_selectivity(stmt.where)
        children.append(
            PlanNode(
                "filter",
                f"filter {pretty_expr(stmt.where)} (est. selectivity {sel:.3f})",
                {"predicate": pretty_expr(stmt.where), "selectivity": sel},
            )
        )
    if stmt.group_by or any(isinstance(i, AggItem) for i in stmt.items):
        aggs = [
            f"{i.func}({i.arg or '*'})"
            for i in stmt.items
            if isinstance(i, AggItem)
        ]
        keys = ", ".join(stmt.group_by) or "<all rows>"
        children.append(
            PlanNode(
                "aggregate",
                f"aggregate [{', '.join(aggs)}] group by {keys}",
                {"aggregates": aggs, "group_by": list(stmt.group_by)},
            )
        )
    else:
        cols = [
            i.ref.name for i in stmt.items if isinstance(i, AttrItem)
        ] or ["*"]
        children.append(
            PlanNode("project", f"project [{', '.join(cols)}]", {"columns": cols})
        )
    if stmt.distinct:
        children.append(PlanNode("distinct", "distinct"))
    if stmt.order_by:
        keys = ", ".join(
            f"{k.column} {'asc' if k.ascending else 'desc'}" for k in stmt.order_by
        )
        children.append(PlanNode("sort", f"sort by {keys}"))
    if stmt.top is not None:
        children.append(PlanNode("top", f"top {stmt.top}", {"n": stmt.top}))
    if stmt.into is not None:
        children.append(
            PlanNode(
                "into",
                f"-> into table {stmt.into.name}",
                {"kind": "table", "name": stmt.into.name},
            )
        )
    return PlanNode(
        "table-select",
        f"TABLE SELECT from {stmt.source}",
        {"source": stmt.source},
        tuple(children),
    )


def _plan_graph_select(
    checked: CheckedGraphSelect, catalog: Catalog, hints=None
) -> PlanNode:
    stmt = checked.stmt
    plan = plan_graph_select(checked, catalog, hints=hints)
    children = []
    if checked.pattern.needs_bindings:
        reasons = []
        if any(
            s.label is not None and s.label.kind == "foreach"
            for a in checked.pattern.atoms()
            for s in a.steps
            if isinstance(s, RVertexStep)
        ):
            reasons.append("foreach label")
        if any(
            s.cross_refs
            for a in checked.pattern.atoms()
            for s in a.steps
            if isinstance(s, RVertexStep)
        ):
            reasons.append("cross-step condition")
        if stmt.into is None or stmt.into.kind == "table":
            reasons.append("table output (row per path)")
        children.append(
            PlanNode(
                "bindings-reasons",
                f"bindings needed: {', '.join(reasons)}",
                {"reasons": reasons},
            )
        )
    for n, atom in enumerate(checked.pattern.atoms()):
        ap = plan.plan_for(atom)
        forced = f", forced by {ap.forced}" if ap.forced else ""
        steps = []
        access = ap.access
        if access is not None:
            steps.append(
                PlanNode(
                    "access",
                    f"access: {access.describe()} est={access.est_rows:.1f}"
                    + (f" (forced by {access.forced})" if access.forced else ""),
                    {
                        "path": access.describe(),
                        "kind": access.kind,
                        "index": access.index,
                        "est_rows": access.est_rows,
                        "forced": access.forced,
                    },
                )
            )
        for pos, step in enumerate(atom.steps):
            steps.append(_plan_step(step, catalog, ap, pos))
        children.append(
            PlanNode(
                "atom",
                f"atom {n}: sweep {ap.direction} "
                f"(cost fwd={ap.cost_forward:.1f}, bwd={ap.cost_backward:.1f}"
                f"{forced})",
                {
                    "index": n,
                    "direction": ap.direction,
                    "cost_forward": ap.cost_forward,
                    "cost_backward": ap.cost_backward,
                    "forced": ap.forced,
                },
                tuple(steps),
            )
        )
    if stmt.into is not None:
        children.append(
            PlanNode(
                "into",
                f"-> into {stmt.into.kind} {stmt.into.name}",
                {"kind": stmt.into.kind, "name": stmt.into.name},
            )
        )
    return PlanNode(
        "graph-select",
        f"GRAPH SELECT (strategy: {plan.strategy})",
        {"strategy": plan.strategy},
        tuple(children),
    )


def _both_direction_est(ap, pos) -> str:
    """Both directions' frontier estimates for one step position.

    Variant and regex steps have no single catalog cardinality to show,
    so the plan's own per-direction estimates are the only way to see
    what each sweep order would cost through them — show both, not just
    the winner's.
    """
    if ap is None or pos is None:
        return ""
    ef = ap.step_est_forward.get(pos)
    eb = ap.step_est_backward.get(pos)
    if ef is None and eb is None:
        return ""
    ef_txt = f"{ef:.1f}" if ef is not None else "?"
    eb_txt = f"{eb:.1f}" if eb is not None else "?"
    return f" (est fwd={ef_txt}, bwd={eb_txt})"


def _plan_step(step, catalog: Catalog, ap=None, pos=None) -> PlanNode:
    attrs: dict[str, Any] = {"position": pos}
    if isinstance(step, RVertexStep):
        parts = []
        if step.label is not None:
            parts.append(f"{step.label.kind} {step.label.name}:")
        if step.is_variant:
            parts.append(
                f"[any of {len(step.types)} vertex types]"
                + _both_direction_est(ap, pos)
            )
        else:
            t = step.types[0] if step.types else "?"
            meta = catalog.vertices.get(t)
            card = meta.num_vertices if meta else "?"
            parts.append(f"vertex {t} ({card} instances)")
        if step.seed is not None:
            parts.append(f"seeded by subgraph {step.seed}")
        if step.label_ref is not None:
            parts.append(f"member of label {step.label_ref}")
        if step.cond is not None:
            distincts = (
                catalog.vertices[step.types[0]].distinct_counts
                if len(step.types) == 1 and step.types[0] in catalog.vertices
                else None
            )
            sel = estimate_selectivity(step.cond, distincts)
            parts.append(
                f"where {pretty_expr(step.cond)} (est. sel {sel:.3f})"
            )
            attrs["selectivity"] = sel
        attrs["types"] = list(step.types)
        return PlanNode("vertex-step", " ".join(parts), attrs)
    if isinstance(step, REdgeStep):
        arrow = "-->" if step.direction == "out" else "<--"
        names = ", ".join(step.names) if step.names else "[]"
        extras = ""
        if step.cond is not None:
            extras = f" where {pretty_expr(step.cond)}"
        attrs["names"] = list(step.names)
        attrs["direction"] = step.direction
        return PlanNode("edge-step", f"edge {arrow} {names}{extras}", attrs)
    assert isinstance(step, RRegex)
    op = {"star": "*", "plus": "+"}.get(step.op, f"{{{step.count}}}")
    attrs["op"] = step.op
    return PlanNode(
        "regex-step",
        f"regex group ({len(step.pairs)} pair(s)){op} [fixpoint closure]"
        + _both_direction_est(ap, pos),
        attrs,
    )


# ----------------------------------------------------------------------
# Script-level reports
# ----------------------------------------------------------------------

def explain_report(
    source: str,
    catalog: Catalog,
    params: Optional[Mapping[str, Any]] = None,
    hints=None,
) -> ExplainReport:
    """Plan every statement of a script, plus its dependence schedule."""
    import copy

    from repro.engine.scheduler import build_schedule
    from repro.graql.parser import parse_script
    from repro.graql.typecheck import _apply_ddl_to_catalog

    script = parse_script(source)
    schedule = build_schedule(script, catalog)
    scratch = copy.deepcopy(catalog)
    plans = []
    for i, stmt in enumerate(script.statements):
        wave = next(w for w, idx in enumerate(schedule.waves) if i in idx)
        root = plan_statement(stmt, scratch, params, hints)
        plans.append(StatementPlan(i, wave, root))
        if params:
            stmt = substitute_statement(stmt, params)
        _apply_ddl_to_catalog(stmt, scratch)
    return ExplainReport(
        "plan", tuple(plans), schedule.num_waves, schedule.max_parallelism
    )


def explain_script(
    source: str,
    catalog: Catalog,
    params: Optional[Mapping[str, Any]] = None,
    hints=None,
) -> ExplainReport:
    """Alias of :func:`explain_report` (kept for API continuity)."""
    return explain_report(source, catalog, params, hints)


def explain_analyze(
    database,
    source: str,
    params: Optional[Mapping[str, Any]] = None,
    options=None,
) -> ExplainReport:
    """EXPLAIN ANALYZE: the static plan, then the measured reality.

    Executes the script on the given :class:`~repro.engine.Database`
    (side effects included — DDL and ``into`` registrations happen) and
    attaches each statement's :class:`~repro.obs.QueryProfile` to its
    :class:`StatementPlan`, so estimated frontier sizes sit next to the
    cardinalities the executors actually produced.
    """
    from dataclasses import replace as dc_replace

    from repro.obs.options import DEFAULT_OPTIONS

    opts = options if options is not None else DEFAULT_OPTIONS
    report = explain_report(source, database.catalog, params, opts.hints)
    if not opts.profile:
        opts = dc_replace(opts, profile=True)
    results = database.execute(source, params, opts)
    profiled = tuple(
        dc_replace(sp, profile=r.profile)
        for sp, r in zip(report.statements, results)
    )
    return ExplainReport(
        "analyze", profiled, report.num_waves, report.max_parallelism
    )
