"""EXPLAIN: human-readable query plans.

Renders what the Section III-B machinery decided for a statement: the
chosen execution strategy, each atom's sweep direction with both cost
estimates, per-step candidate types with estimated cardinalities and
selectivities, and — for relational statements — the operator pipeline.

Exposed as ``Database.explain(graql)``; used by the planner ablation
benchmarks and handy when debugging query performance.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

from repro.catalog import Catalog, estimate_selectivity
from repro.graql.ast import (
    AggItem,
    AttrItem,
    CreateEdge,
    CreateTable,
    CreateVertex,
    GraphSelect,
    Ingest,
    StarItem,
    Statement,
    TableSelect,
)
from repro.graql.params import substitute_statement
from repro.graql.pretty import pretty_expr
from repro.graql.typecheck import (
    CheckedGraphSelect,
    RAtom,
    REdgeStep,
    RRegex,
    RVertexStep,
    check_statement,
)
from repro.query.planner import plan_graph_select


def explain_statement(
    stmt: Statement,
    catalog: Catalog,
    params: Optional[Mapping[str, Any]] = None,
) -> str:
    """One statement's plan as indented text."""
    if params:
        stmt = substitute_statement(stmt, params)
    if isinstance(stmt, CreateTable):
        return f"CREATE TABLE {stmt.name} ({len(stmt.schema)} columns)"
    if isinstance(stmt, CreateVertex):
        return (
            f"CREATE VERTEX {stmt.name} <- view over {stmt.table} "
            f"(key: {', '.join(stmt.key_cols)})"
        )
    if isinstance(stmt, CreateEdge):
        return (
            f"CREATE EDGE {stmt.name}: {stmt.source.type_name} -> "
            f"{stmt.target.type_name}"
            + (f" via {', '.join(stmt.from_tables)}" if stmt.from_tables else "")
        )
    if isinstance(stmt, Ingest):
        return f"INGEST {stmt.path} -> {stmt.table} (atomic view rebuild)"
    if isinstance(stmt, TableSelect):
        check_statement(stmt, catalog)  # surface static errors in explain
        return _explain_table_select(stmt, catalog)
    assert isinstance(stmt, GraphSelect)
    checked = check_statement(stmt, catalog)
    assert isinstance(checked, CheckedGraphSelect)
    return _explain_graph_select(checked, catalog)


def _explain_table_select(stmt: TableSelect, catalog: Catalog) -> str:
    lines = [f"TABLE SELECT from {stmt.source}"]
    meta = catalog.tables.get(stmt.source)
    if meta is not None:
        lines.append(f"  scan {stmt.source} ({meta.num_rows} rows)")
    if stmt.where is not None:
        sel = estimate_selectivity(stmt.where)
        lines.append(
            f"  filter {pretty_expr(stmt.where)} (est. selectivity {sel:.3f})"
        )
    if stmt.group_by or any(isinstance(i, AggItem) for i in stmt.items):
        aggs = [
            f"{i.func}({i.arg or '*'})"
            for i in stmt.items
            if isinstance(i, AggItem)
        ]
        keys = ", ".join(stmt.group_by) or "<all rows>"
        lines.append(f"  aggregate [{', '.join(aggs)}] group by {keys}")
    else:
        cols = [
            i.ref.name for i in stmt.items if isinstance(i, AttrItem)
        ] or ["*"]
        lines.append(f"  project [{', '.join(cols)}]")
    if stmt.distinct:
        lines.append("  distinct")
    if stmt.order_by:
        keys = ", ".join(
            f"{k.column} {'asc' if k.ascending else 'desc'}" for k in stmt.order_by
        )
        lines.append(f"  sort by {keys}")
    if stmt.top is not None:
        lines.append(f"  top {stmt.top}")
    if stmt.into is not None:
        lines.append(f"  -> into table {stmt.into.name}")
    return "\n".join(lines)


def _explain_graph_select(checked: CheckedGraphSelect, catalog: Catalog) -> str:
    stmt = checked.stmt
    plan = plan_graph_select(checked, catalog)
    lines = [f"GRAPH SELECT (strategy: {plan.strategy})"]
    if checked.pattern.needs_bindings:
        reasons = []
        if any(
            s.label is not None and s.label.kind == "foreach"
            for a in checked.pattern.atoms()
            for s in a.steps
            if isinstance(s, RVertexStep)
        ):
            reasons.append("foreach label")
        if any(
            s.cross_refs
            for a in checked.pattern.atoms()
            for s in a.steps
            if isinstance(s, RVertexStep)
        ):
            reasons.append("cross-step condition")
        if stmt.into is None or stmt.into.kind == "table":
            reasons.append("table output (row per path)")
        lines.append(f"  bindings needed: {', '.join(reasons)}")
    for n, atom in enumerate(checked.pattern.atoms()):
        ap = plan.plan_for(atom)
        forced = f", forced by {ap.forced}" if ap.forced else ""
        lines.append(
            f"  atom {n}: sweep {ap.direction} "
            f"(cost fwd={ap.cost_forward:.1f}, bwd={ap.cost_backward:.1f}"
            f"{forced})"
        )
        for pos, step in enumerate(atom.steps):
            lines.append("    " + _explain_step(step, catalog, ap, pos))
    if stmt.into is not None:
        lines.append(f"  -> into {stmt.into.kind} {stmt.into.name}")
    return "\n".join(lines)


def _both_direction_est(ap, pos) -> str:
    """Both directions' frontier estimates for one step position.

    Variant and regex steps have no single catalog cardinality to show,
    so the plan's own per-direction estimates are the only way to see
    what each sweep order would cost through them — show both, not just
    the winner's.
    """
    if ap is None or pos is None:
        return ""
    ef = ap.step_est_forward.get(pos)
    eb = ap.step_est_backward.get(pos)
    if ef is None and eb is None:
        return ""
    ef_txt = f"{ef:.1f}" if ef is not None else "?"
    eb_txt = f"{eb:.1f}" if eb is not None else "?"
    return f" (est fwd={ef_txt}, bwd={eb_txt})"


def _explain_step(step, catalog: Catalog, ap=None, pos=None) -> str:
    if isinstance(step, RVertexStep):
        parts = []
        if step.label is not None:
            parts.append(f"{step.label.kind} {step.label.name}:")
        if step.is_variant:
            parts.append(
                f"[any of {len(step.types)} vertex types]"
                + _both_direction_est(ap, pos)
            )
        else:
            t = step.types[0] if step.types else "?"
            meta = catalog.vertices.get(t)
            card = meta.num_vertices if meta else "?"
            parts.append(f"vertex {t} ({card} instances)")
        if step.seed is not None:
            parts.append(f"seeded by subgraph {step.seed}")
        if step.label_ref is not None:
            parts.append(f"member of label {step.label_ref}")
        if step.cond is not None:
            distincts = (
                catalog.vertices[step.types[0]].distinct_counts
                if len(step.types) == 1 and step.types[0] in catalog.vertices
                else None
            )
            sel = estimate_selectivity(step.cond, distincts)
            parts.append(
                f"where {pretty_expr(step.cond)} (est. sel {sel:.3f})"
            )
        return " ".join(parts)
    if isinstance(step, REdgeStep):
        arrow = "-->" if step.direction == "out" else "<--"
        names = ", ".join(step.names) if step.names else "[]"
        extras = ""
        if step.cond is not None:
            extras = f" where {pretty_expr(step.cond)}"
        return f"edge {arrow} {names}{extras}"
    assert isinstance(step, RRegex)
    op = {"star": "*", "plus": "+"}.get(step.op, f"{{{step.count}}}")
    return (
        f"regex group ({len(step.pairs)} pair(s)){op} [fixpoint closure]"
        + _both_direction_est(ap, pos)
    )


def explain_script(
    source: str,
    catalog: Catalog,
    params: Optional[Mapping[str, Any]] = None,
) -> str:
    """Explain every statement of a script, plus its dependence schedule."""
    import copy

    from repro.engine.scheduler import build_schedule
    from repro.graql.parser import parse_script
    from repro.graql.typecheck import _apply_ddl_to_catalog

    script = parse_script(source)
    schedule = build_schedule(script, catalog)
    scratch = copy.deepcopy(catalog)
    blocks = []
    for i, stmt in enumerate(script.statements):
        wave = next(w for w, idx in enumerate(schedule.waves) if i in idx)
        text = explain_statement(stmt, scratch, params)
        blocks.append(f"-- statement {i} (wave {wave}) " + "-" * 20 + f"\n{text}")
        if params:
            stmt = substitute_statement(stmt, params)
        _apply_ddl_to_catalog(stmt, scratch)
    blocks.append(
        f"-- schedule: {schedule.num_waves} wave(s), "
        f"max parallelism {schedule.max_parallelism}"
    )
    return "\n".join(blocks)


def explain_analyze(
    database,
    source: str,
    params: Optional[Mapping[str, Any]] = None,
    options=None,
) -> str:
    """EXPLAIN ANALYZE: the static plan, then the measured reality.

    Executes the script on the given :class:`~repro.engine.Database`
    (side effects included — DDL and ``into`` registrations happen) and
    appends each statement's :class:`~repro.obs.QueryProfile` rendering
    to the plan text, so estimated frontier sizes sit next to the
    cardinalities the executors actually produced.
    """
    from dataclasses import replace

    from repro.obs.options import DEFAULT_OPTIONS

    plan_text = explain_script(source, database.catalog, params)
    opts = options if options is not None else DEFAULT_OPTIONS
    if not opts.profile:
        opts = replace(opts, profile=True)
    results = database.execute(source, params, opts)
    blocks = [plan_text]
    for i, r in enumerate(results):
        blocks.append(f"-- analyze statement {i} " + "-" * 18)
        blocks.append(
            r.profile.render() if r.profile is not None else "(no profile)"
        )
    return "\n".join(blocks)
