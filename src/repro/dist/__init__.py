"""Simulated distributed in-memory backend (paper Sections I and III).

The paper targets "a cluster of high-performance servers with ample DRAM
... the database is primarily resident on the aggregated memory of the
compute nodes".  We cannot ship an InfiniBand cluster in a Python
package, so this subpackage simulates one faithfully enough to exercise
every distributed code path the paper's design implies:

* **partitioning** (:mod:`repro.dist.partition`) — vertices are hash
  partitioned per type; each edge type is sharded twice, by source owner
  (forward index shard) and by target owner (reverse index shard),
  mirroring GEMS's bidirectional edge indexes per node;
* **communication** (:mod:`repro.dist.comm`) — an explicit message layer
  with per-message byte accounting.  Execution is bulk-synchronous: in
  each superstep every worker expands its local frontier shard and the
  communicator routes remote candidates to their owners;
* **distributed queries** (:mod:`repro.dist.dist_query`) — the
  set-frontier path-query executor re-implemented over shards; its
  results are asserted identical to the single-node engine in the test
  suite;
* **distributed relational ops** (:mod:`repro.dist.dist_relops`) —
  partial aggregation + hash shuffle + merge for the Table I subset.

The simulation is sequential and deterministic; what it *measures* —
messages, bytes moved, per-worker work, load balance — is what the
paper's performance argument is about.
"""

from repro.dist.cluster import Cluster
from repro.dist.comm import CommStats, Communicator
from repro.dist.partition import Partitioner

__all__ = ["Cluster", "Communicator", "CommStats", "Partitioner"]
