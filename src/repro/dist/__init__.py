"""Simulated distributed in-memory backend (paper Sections I and III).

The paper targets "a cluster of high-performance servers with ample DRAM
... the database is primarily resident on the aggregated memory of the
compute nodes".  We cannot ship an InfiniBand cluster in a Python
package, so this subpackage simulates one faithfully enough to exercise
every distributed code path the paper's design implies:

* **partitioning** (:mod:`repro.dist.partition`) — vertices are hash
  partitioned per type; each edge type is sharded twice, by source owner
  (forward index shard) and by target owner (reverse index shard),
  mirroring GEMS's bidirectional edge indexes per node;
* **communication** (:mod:`repro.dist.comm`) — an explicit message layer
  with per-message byte accounting.  Execution is bulk-synchronous: in
  each superstep every worker expands its local frontier shard and the
  communicator routes remote candidates to their owners;
* **distributed queries** (:mod:`repro.dist.dist_query`) — the
  set-frontier path-query executor re-implemented over shards; its
  results are asserted identical to the single-node engine in the test
  suite;
* **distributed relational ops** (:mod:`repro.dist.dist_relops`) —
  partial aggregation + hash shuffle + merge for the Table I subset;
* **fault tolerance** (:mod:`repro.dist.faults`,
  :mod:`repro.dist.recovery`, docs/RELIABILITY.md) — seeded failure
  injection (fail-stop kills, message drop/corrupt/delay), k-replica
  shard placement with failover, checkpointed superstep retry, and a
  circuit breaker that degrades to single-node execution.

The simulation is sequential and deterministic; what it *measures* —
messages, bytes moved, per-worker work, load balance, injected faults
and recovery cost — is what the paper's performance argument is about.
"""

from repro.dist.cluster import Cluster
from repro.dist.comm import CommStats, Communicator
from repro.dist.faults import FaultInjector, FaultStats
from repro.dist.partition import Partitioner, Placement
from repro.dist.recovery import CircuitBreaker, RecoveryStats

__all__ = [
    "CircuitBreaker",
    "Cluster",
    "Communicator",
    "CommStats",
    "FaultInjector",
    "FaultStats",
    "Partitioner",
    "Placement",
    "RecoveryStats",
]
