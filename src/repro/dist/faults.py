"""Deterministic fault injection for the simulated cluster.

The GEMS design keeps the whole database "resident on the aggregated
memory of the compute nodes" (Section III), which makes node loss a
first-class event any real deployment must survive.  The simulation
models the classic fault classes of an MPI-style substrate:

* **fail-stop worker kills** — a worker dies at a superstep barrier and
  stays dead for the rest of the placement epoch (until
  :meth:`repro.dist.Cluster.heal`);
* **message drops** — a remote payload never arrives; detected at the
  barrier (missing ack) and surfaced as a retryable
  :class:`~repro.errors.CommFailure`;
* **message corruption** — the envelope checksum mismatches on arrival;
  also detected at the barrier, also retryable;
* **message delays** — the payload arrives late; semantics are unchanged
  (the BSP barrier absorbs the wait) but the latency is accounted in
  :class:`~repro.dist.comm.CommStats` as ``delay_ms``.

Everything is driven by one seeded ``random.Random`` stream, so a given
seed yields the same fault schedule, the same retries, and therefore the
same results — the determinism the property tests assert.  Kills can
also be pinned explicitly with ``kill_schedule`` (superstep -> workers),
which is what the recovery tests and benchmarks use.
"""

from __future__ import annotations

import random
from typing import Iterable, Optional, Sequence

#: message fates returned by :meth:`FaultInjector.message_fate`
DELIVER = "deliver"
DROP = "drop"
CORRUPT = "corrupt"


class FaultStats:
    """Running counters of injected faults (alongside byte accounting)."""

    def __init__(self) -> None:
        self.kills = 0
        self.drops = 0
        self.corruptions = 0
        self.delays = 0
        self.delay_ms = 0.0

    def snapshot(self) -> dict:
        return {
            "kills": self.kills,
            "drops": self.drops,
            "corruptions": self.corruptions,
            "delays": self.delays,
            "delay_ms": round(self.delay_ms, 3),
        }

    def __repr__(self) -> str:
        return (
            f"FaultStats(kills={self.kills}, drops={self.drops}, "
            f"corruptions={self.corruptions}, delays={self.delays})"
        )


class FaultInjector:
    """Seeded source of worker kills and message-level faults.

    Parameters
    ----------
    seed:
        Seeds the single RNG stream; identical seeds reproduce the exact
        fault schedule (and, through deterministic recovery, results).
    kill_schedule:
        Explicit ``{superstep: [worker, ...]}`` fail-stop schedule, keyed
        by the communicator's superstep counter at barrier entry.  Each
        scheduled kill fires at most once.
    kill_prob:
        Additional per-superstep probability of killing one random live
        worker (capped by ``max_kills``).
    drop_prob / corrupt_prob / delay_prob:
        Per-remote-message probabilities of the respective fault.
    delay_ms:
        ``(lo, hi)`` range a delayed message is late by.
    max_kills:
        Upper bound on probabilistic kills (scheduled kills always fire).
    """

    def __init__(
        self,
        seed: int = 0,
        kill_schedule: Optional[dict[int, Sequence[int]]] = None,
        kill_prob: float = 0.0,
        drop_prob: float = 0.0,
        corrupt_prob: float = 0.0,
        delay_prob: float = 0.0,
        delay_ms: tuple[float, float] = (1.0, 10.0),
        max_kills: Optional[int] = None,
    ) -> None:
        self.seed = seed
        self.rng = random.Random(seed)
        self.kill_schedule = {
            int(s): list(ws) for s, ws in (kill_schedule or {}).items()
        }
        self.kill_prob = kill_prob
        self.drop_prob = drop_prob
        self.corrupt_prob = corrupt_prob
        self.delay_prob = delay_prob
        self.delay_range = delay_ms
        self.max_kills = max_kills
        self.stats = FaultStats()
        self._prob_kills = 0

    # ------------------------------------------------------------------
    def poll_kill(self, superstep: int, live: Iterable[int]) -> Optional[int]:
        """One fail-stop kill due at this barrier, or ``None``.

        Scheduled kills for *superstep* fire first (one per call — a
        simultaneous multi-kill surfaces as consecutive barrier failures,
        each triggering its own failover).  Then the probabilistic draw.
        Dead workers cannot die twice.
        """
        live = set(live)
        pending = self.kill_schedule.get(superstep)
        while pending:
            w = pending.pop(0)
            if w in live:
                self.stats.kills += 1
                return w
        if self.kill_prob > 0 and live:
            if self.max_kills is None or self._prob_kills < self.max_kills:
                if self.rng.random() < self.kill_prob:
                    w = self.rng.choice(sorted(live))
                    self._prob_kills += 1
                    self.stats.kills += 1
                    return w
        return None

    def message_fate(self, src: int, dst: int) -> tuple[str, float]:
        """Fate of one remote message: ``(DELIVER|DROP|CORRUPT, delay_ms)``."""
        if self.drop_prob > 0 and self.rng.random() < self.drop_prob:
            self.stats.drops += 1
            return DROP, 0.0
        if self.corrupt_prob > 0 and self.rng.random() < self.corrupt_prob:
            self.stats.corruptions += 1
            return CORRUPT, 0.0
        delay = 0.0
        if self.delay_prob > 0 and self.rng.random() < self.delay_prob:
            delay = self.rng.uniform(*self.delay_range)
            self.stats.delays += 1
            self.stats.delay_ms += delay
        return DELIVER, delay

    @property
    def active(self) -> bool:
        """Whether any fault class can still fire."""
        return bool(
            self.kill_schedule
            or self.kill_prob
            or self.drop_prob
            or self.corrupt_prob
            or self.delay_prob
        )

    def reset(self, kill_schedule: Optional[dict[int, Sequence[int]]] = None) -> None:
        """Re-arm: fresh RNG stream from the original seed, fresh stats."""
        self.rng = random.Random(self.seed)
        self.stats = FaultStats()
        self._prob_kills = 0
        if kill_schedule is not None:
            self.kill_schedule = {
                int(s): list(ws) for s, ws in kill_schedule.items()
            }

    def __repr__(self) -> str:
        return (
            f"FaultInjector(seed={self.seed}, kills={self.stats.kills}, "
            f"drops={self.stats.drops})"
        )
