"""Distributed relational operators: partial aggregate + hash shuffle.

The Table I subset on the simulated cluster uses the textbook two-phase
plan: every worker aggregates its row slice locally, the partial results
are shuffled by group-key hash (accounted messages), and each worker
merges the partials it owns.  ``count``/``sum`` merge by addition,
``min``/``max`` by the corresponding reduction, and ``avg`` merges as
(sum, count) pairs — the classic decomposable-aggregate treatment.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.dist.comm import Communicator
from repro.errors import ExecutionError
from repro.storage import relops
from repro.storage.relops import AggSpec
from repro.storage.table import Table


def _row_slices(num_rows: int, num_workers: int) -> list[np.ndarray]:
    """Round-robin row partition (keeps slices balanced for any skew)."""
    rows = np.arange(num_rows, dtype=np.int64)
    return [rows[w::num_workers] for w in range(num_workers)]


def _decompose(aggs: Sequence[AggSpec]) -> tuple[list[AggSpec], list[tuple[str, str, str]]]:
    """Partial agg specs + merge rules (partial_alias, merge_op, final)."""
    partials: list[AggSpec] = []
    merges: list[tuple[str, str, str]] = []
    for a in aggs:
        if a.func == "count":
            partials.append(AggSpec("count", a.arg, f"__p_{a.alias}"))
            merges.append((f"__p_{a.alias}", "sum", a.alias))
        elif a.func == "sum":
            partials.append(AggSpec("sum", a.arg, f"__p_{a.alias}"))
            merges.append((f"__p_{a.alias}", "sum", a.alias))
        elif a.func in ("min", "max"):
            partials.append(AggSpec(a.func, a.arg, f"__p_{a.alias}"))
            merges.append((f"__p_{a.alias}", a.func, a.alias))
        elif a.func == "avg":
            partials.append(AggSpec("sum", a.arg, f"__ps_{a.alias}"))
            partials.append(AggSpec("count", a.arg, f"__pc_{a.alias}"))
            merges.append((f"__ps_{a.alias}", "avg", a.alias))
        else:  # pragma: no cover
            raise ExecutionError(f"unsupported distributed aggregate {a.func}")
    return partials, merges


def dist_group_by_aggregate(
    table: Table,
    group_cols: Sequence[str],
    aggs: Sequence[AggSpec],
    comm: Communicator,
    result_name: str = "result",
) -> Table:
    """Two-phase distributed group-by over *comm.num_workers* workers."""
    n = comm.num_workers
    slices = _row_slices(table.num_rows, n)
    partial_specs, merges = _decompose(aggs)
    # phase 1: local partial aggregation
    partial_tables = [
        relops.group_by_aggregate(table.take(s), list(group_cols), partial_specs)
        for s in slices
    ]
    # phase 2: shuffle partials by group-key hash.  Key codes must be
    # consistent across workers, so factorize over the concatenation and
    # split back per worker (a real system hashes the key values directly;
    # the routing outcome is identical).
    outboxes: list[list[object]] = [[None] * n for _ in range(n)]
    non_empty = [(w, pt) for w, pt in enumerate(partial_tables) if pt.num_rows]
    if non_empty:
        combined = relops.union_all([pt for _, pt in non_empty])
        codes, _ = relops.factorize(combined, list(group_cols))
        dest_all = codes % n if group_cols else np.zeros(len(codes), dtype=np.int64)
        offset = 0
        for w, pt in non_empty:
            dest = dest_all[offset : offset + pt.num_rows]
            offset += pt.num_rows
            for d in range(n):
                rows = np.flatnonzero(dest == d)
                if len(rows):
                    outboxes[w][d] = pt.take(rows)
    inboxes = comm.alltoall(
        [
            [
                tuple(c.data for c in p.columns) if isinstance(p, Table) else None
                for p in row
            ]
            for row in outboxes
        ]
    )
    # phase 3: merge per destination worker
    merged_parts: list[Table] = []
    for d in range(n):
        shards = [
            outboxes[w][d]
            for w in range(n)
            if isinstance(outboxes[w][d], Table)
        ]
        _ = inboxes  # routing already accounted
        if not shards:
            continue
        combined = relops.union_all(shards)
        merge_specs: list[AggSpec] = []
        for palias, op, final in merges:
            if op == "avg":
                merge_specs.append(AggSpec("sum", palias, f"__ms_{final}"))
                merge_specs.append(
                    AggSpec("sum", palias.replace("__ps_", "__pc_"), f"__mc_{final}")
                )
            else:
                merge_specs.append(AggSpec(op, palias, final))
        out = relops.group_by_aggregate(combined, list(group_cols), merge_specs)
        # finalize averages
        for palias, op, final in merges:
            if op == "avg":
                sums = out.column(f"__ms_{final}").data.astype(np.float64)
                counts = out.column(f"__mc_{final}").data.astype(np.float64)
                with np.errstate(invalid="ignore", divide="ignore"):
                    avg = np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)
                from repro.dtypes import FLOAT
                from repro.storage.column import Column
                from repro.storage.schema import ColumnDef

                out = out.with_column(ColumnDef(final, FLOAT), Column(FLOAT, avg))
        keep = list(group_cols) + [m[2] for m in merges]
        merged_parts.append(out.project(keep))
    if not merged_parts:
        # empty input: fall back to the single-node result (count() rows)
        return relops.group_by_aggregate(table, list(group_cols), list(aggs), result_name)
    result = relops.union_all(merged_parts, result_name)
    return Table(result_name, result.schema, result.columns)


def dist_filter_count(table: Table, condition, comm: Communicator) -> int:
    """Distributed selection cardinality (scan slices + gather counts)."""
    n = comm.num_workers
    counts = []
    for s in _row_slices(table.num_rows, n):
        shard = table.take(s)
        counts.append(np.int64(relops.filter_table(shard, condition).num_rows))
    comm.gather([np.asarray([c]) for c in counts])
    return int(sum(counts))
