"""Recovery bookkeeping and the cluster circuit breaker.

Two small pieces glue the fault model (:mod:`repro.dist.faults`) to the
degradation policy in :class:`repro.dist.Cluster`:

* :class:`RecoveryStats` — per-statement cost of surviving faults:
  superstep retries, worker failovers, simulated backoff, and the extra
  messages/bytes burned by failed superstep attempts.  Surfaced through
  ``StatementResult.recovery`` so callers (and the robustness benchmark)
  can see exactly what recovery cost relative to a failure-free run.

* :class:`CircuitBreaker` — the classic closed / open / half-open state
  machine over *fatal* distributed failures.  After ``failure_threshold``
  consecutive failures the breaker opens and the cluster routes
  statements straight to verified single-node execution (the paper's
  front-end "is free to choose where a query runs" — degradation is just
  that choice made under duress).  After ``reset_timeout_s`` the breaker
  half-opens and one probe statement is allowed through; success closes
  it, failure re-opens it.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class RecoveryStats:
    """Cost counters for one statement's fault recovery.

    Per-statement instances are single-threaded; the cluster-wide
    accumulator (``Cluster.recovery_totals``) is merged into from
    concurrent reader threads under the serving layer, so ``merge``
    takes a lock.
    """

    def __init__(self) -> None:
        self.retries = 0
        self.failovers = 0
        self.backoff_ms = 0.0
        self.extra_messages = 0
        self.extra_bytes = 0
        self._lock = threading.Lock()

    def merge(self, other: "RecoveryStats") -> None:
        with self._lock:
            self.retries += other.retries
            self.failovers += other.failovers
            self.backoff_ms += other.backoff_ms
            self.extra_messages += other.extra_messages
            self.extra_bytes += other.extra_bytes

    def snapshot(self) -> dict:
        return {
            "retries": self.retries,
            "failovers": self.failovers,
            "backoff_ms": round(self.backoff_ms, 3),
            "extra_messages": self.extra_messages,
            "extra_bytes": self.extra_bytes,
        }

    def __repr__(self) -> str:
        return (
            f"RecoveryStats(retries={self.retries}, "
            f"failovers={self.failovers}, extra_bytes={self.extra_bytes})"
        )


class CircuitBreaker:
    """Trip to single-node fallback after repeated cluster failures.

    ``clock`` is injectable so tests can drive the open -> half-open
    transition without sleeping.  The state machine is locked: the
    serving layer runs cluster-backed selects concurrently, so
    ``allow``/``record_*`` race without it.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_timeout_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self.clock = clock
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opened_at = 0.0
        self.trips = 0
        self._lock = threading.Lock()

    def allow(self) -> bool:
        """Whether a distributed attempt may proceed right now."""
        with self._lock:
            if self.state == OPEN:
                if self.clock() - self.opened_at >= self.reset_timeout_s:
                    self.state = HALF_OPEN
                    return True
                return False
            return True  # closed or half-open probe

    def record_success(self) -> None:
        with self._lock:
            self.consecutive_failures = 0
            self.state = CLOSED

    def record_failure(self) -> None:
        with self._lock:
            self.consecutive_failures += 1
            if (
                self.state == HALF_OPEN
                or self.consecutive_failures >= self.failure_threshold
            ):
                self.state = OPEN
                self.opened_at = self.clock()
                self.trips += 1

    def reset(self) -> None:
        with self._lock:
            self.state = CLOSED
            self.consecutive_failures = 0

    def snapshot(self) -> dict:
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "trips": self.trips,
        }

    def __repr__(self) -> str:
        return f"CircuitBreaker({self.state}, trips={self.trips})"
