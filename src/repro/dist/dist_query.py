"""Distributed set-frontier path queries (BSP over edge-index shards).

Each query step is one or two supersteps:

* **vertex step** — embarrassingly parallel: every worker filters the
  frontier vids it owns against the step's condition/seed/label sets
  (attributes of owned vertices are local by construction);
* **edge step** — every worker expands its local forward (or reverse)
  shard from its owned frontier slice, buckets the discovered endpoint
  vids by owner, and the communicator routes the buckets (the messages
  and bytes the benchmarks report).  Matched edge ids stay local to the
  expanding worker.

The backward cull mirrors the forward pass with the opposite shards.
Results are bit-identical to the single-node executor
(:class:`repro.query.frontier.FrontierExecutor`) — a property the test
suite asserts on randomized workloads.

**Fault tolerance** (docs/RELIABILITY.md): each communication superstep
is a natural checkpoint — its inputs (the ``forward[i]``/``culled[i]``
frontier state) are retained by ``run_atom``, so when a barrier fails
(a worker fail-stops, a message is dropped or corrupted) only the
affected superstep is re-run, with exponential backoff.  A fail-stopped
worker's partitions fail over to their replicas via the
:class:`~repro.dist.partition.Placement` before the retry; the retry
budget, backoff, and the failed attempts' extra traffic are tallied in
:class:`~repro.dist.recovery.RecoveryStats`.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Iterator, Optional

import numpy as np

from repro.errors import (
    BackendError,
    ExecutionError,
    QueryTimeout,
    WorkerFailed,
)
from repro.graph.graphdb import GraphDB
from repro.graql.ast import DIR_OUT
from repro.graql.typecheck import RAtom, REdgeStep, RRegex, RVertexStep
from repro.query.frontier import (
    AtomSets,
    SetDict,
    _in_sorted,
    _intersect_sorted,
    _union,
    reverse_steps,
    unroll_counted_regexes,
)
from repro.dist.comm import Communicator
from repro.dist.partition import EdgeShard, Partitioner, Placement
from repro.dist.recovery import RecoveryStats

_EMPTY = np.empty(0, dtype=np.int64)

# A distributed frontier: type name -> per-worker owned vid arrays
DistSets = dict[str, list[np.ndarray]]


def _dist_empty(num_workers: int) -> DistSets:
    return {}


def _gather(sets: DistSets) -> SetDict:
    """Collapse a distributed frontier into global per-type sets."""
    out: SetDict = {}
    for t, parts in sets.items():
        arrs = [p for p in parts if len(p)]
        if arrs:
            out[t] = np.unique(np.concatenate(arrs))
    return out


def _scatter(sets: SetDict, partitioner: Partitioner) -> DistSets:
    """Split global per-type sets into per-owner slices."""
    out: DistSets = {}
    for t, vids in sets.items():
        out[t] = partitioner.split_by_owner(vids)
    return out


def _dist_size(sets: DistSets) -> int:
    """Total frontier cardinality across workers and types."""
    return int(sum(len(p) for parts in sets.values() for p in parts))


class DistFrontierExecutor:
    """Distributed analogue of :class:`FrontierExecutor`."""

    def __init__(
        self,
        db: GraphDB,
        shards: list[dict[str, EdgeShard]],
        partitioner: Partitioner,
        comm: Communicator,
        label_env: Optional[dict[str, SetDict]] = None,
        placement: Optional[Placement] = None,
        recovery: Optional[RecoveryStats] = None,
        max_retries: int = 5,
        backoff_base_s: float = 0.001,
        deadline: Optional[float] = None,
        profile=None,
    ) -> None:
        self.db = db
        self.shards = shards
        self.partitioner = partitioner
        self.comm = comm
        self.label_env: dict[str, SetDict] = label_env if label_env is not None else {}
        self.pin_labels: dict[str, SetDict] = {}
        self.placement = placement
        self.recovery = recovery if recovery is not None else RecoveryStats()
        self.max_retries = max_retries
        self.backoff_base_s = backoff_base_s
        #: absolute time.monotonic() deadline for the whole statement
        self.deadline = deadline
        #: per-worker count of edges expanded (load-balance metric)
        self.work_per_worker = np.zeros(partitioner.num_workers, dtype=np.int64)
        #: optional QueryProfile; per-superstep frontier sizes, message
        #: and byte deltas, and retries are recorded into its dist block
        self.profile = profile

    # ------------------------------------------------------------------
    # Fault handling: checkpointed superstep retry with failover
    # ------------------------------------------------------------------
    def _phys(self, partition: int) -> int:
        """Physical worker currently serving a logical partition."""
        if self.placement is None:
            return partition
        return self.placement.serving(partition)

    def _check_deadline(self) -> None:
        if self.deadline is not None and time.monotonic() > self.deadline:
            raise QueryTimeout("statement exceeded its timeout budget")

    def _superstep(self, fn: Callable[[], object]) -> object:
        """Run one superstep, retrying retryable backend faults.

        The callable must be a pure function of already-checkpointed
        frontier state (everything in ``forward[]``/``culled[]``), which
        makes re-running it after a failure safe.  A fail-stopped worker
        is failed over to its replicas before the retry; the failed
        attempt's traffic is added to the recovery cost.  Retries back
        off exponentially; exhausting the budget escalates to a fatal
        :class:`WorkerFailed`, which the cluster's degradation policy
        turns into single-node fallback.
        """
        attempt = 0
        while True:
            self._check_deadline()
            msgs0 = self.comm.stats.messages
            bytes0 = self.comm.stats.bytes
            try:
                return fn()
            except BackendError as exc:
                self.recovery.extra_messages += self.comm.stats.messages - msgs0
                self.recovery.extra_bytes += self.comm.stats.bytes - bytes0
                if (
                    isinstance(exc, WorkerFailed)
                    and exc.retryable
                    and exc.worker is not None
                    and self.placement is not None
                ):
                    self.placement.fail(exc.worker)
                    self.recovery.failovers += 1
                if not exc.retryable:
                    raise
                attempt += 1
                if attempt > self.max_retries:
                    raise WorkerFailed(
                        f"superstep failed after {attempt} attempts: {exc}",
                        retryable=False,
                    ) from exc
                self.recovery.retries += 1
                backoff = self.backoff_base_s * (2 ** (attempt - 1))
                self.recovery.backoff_ms += backoff * 1000.0
                if backoff > 0:
                    time.sleep(backoff)

    @contextmanager
    def _profiled(self, phase: str) -> Iterator[Callable[[int], None]]:
        """Record one superstep's frontier/message/byte/retry deltas.

        Yields a ``done(frontier_size)`` callback the caller invokes once
        the post-barrier frontier is known; a no-op without a profile.
        """
        if self.profile is None:
            yield lambda size: None
            return
        msgs0 = self.comm.stats.messages
        bytes0 = self.comm.stats.bytes
        retr0 = self.recovery.retries
        size_box = [0]

        def done(size: int) -> None:
            size_box[0] = int(size)

        try:
            yield done
        finally:
            self.profile.record_superstep(
                phase,
                size_box[0],
                self.comm.stats.messages - msgs0,
                self.comm.stats.bytes - bytes0,
                self.recovery.retries - retr0,
            )

    # ------------------------------------------------------------------
    def _vertex_select(self, step: RVertexStep, incoming: Optional[DistSets]) -> DistSets:
        n = self.partitioner.num_workers
        out: DistSets = {}
        for t in step.types:
            vt = self.db.vertex_type(t)
            parts: list[np.ndarray] = []
            for w in range(n):
                if incoming is None:
                    cands = self.partitioner.local_vids(w, vt.num_vertices)
                else:
                    cands = incoming.get(t, [_EMPTY] * n)[w]
                if step.seed is not None and len(cands):
                    cands = _intersect_sorted(
                        cands, self.db.subgraph(step.seed).vertex_ids(t)
                    )
                if step.label_ref is not None and len(cands):
                    sets = self.label_env.get(step.label_ref, {})
                    cands = _intersect_sorted(cands, sets.get(t, _EMPTY))
                if (
                    step.label is not None
                    and step.label.name in self.pin_labels
                    and len(cands)
                ):
                    pin = self.pin_labels[step.label.name]
                    cands = _intersect_sorted(cands, pin.get(t, _EMPTY))
                if step.cond is not None and len(cands):
                    cands = vt.select(step.cond, cands)
                parts.append(np.unique(cands))
            if any(len(p) for p in parts):
                out[t] = parts
        return out

    def _edge_expand(
        self,
        step: REdgeStep,
        prev: DistSets,
        next_types: list[str],
        allowed_edges: Optional[SetDict] = None,
    ) -> tuple[DistSets, SetDict]:
        """One distributed edge step: local expand + alltoall exchange."""
        n = self.partitioner.num_workers
        # per (target type): outbox[src_worker][dst_worker] vid arrays
        frontier: DistSets = {}
        matched: SetDict = {}
        for ename in step.names:
            et = self.db.edge_type(ename)
            along = step.direction == DIR_OUT
            from_type = et.source.name if along else et.target.name
            to_type = et.target.name if along else et.source.name
            if to_type not in next_types or from_type not in prev:
                continue
            allowed = None
            if step.cond is not None:
                allowed = np.sort(et.select(step.cond))
            if allowed_edges is not None:
                extra = allowed_edges.get(ename, _EMPTY)
                allowed = extra if allowed is None else _intersect_sorted(allowed, extra)
            outboxes: list[list[Optional[np.ndarray]]] = [
                [None] * n for _ in range(n)
            ]
            local_eids: list[np.ndarray] = []
            for w in range(n):
                fr = prev[from_type][w]
                if len(fr) == 0:
                    local_eids.append(_EMPTY)
                    continue
                shard = self.shards[w][ename]
                index = shard.forward if along else shard.reverse
                _, tgts, eids = index.expand_restricted(fr, allowed)
                self.work_per_worker[self._phys(w)] += len(eids)
                if self.profile is not None:
                    self.profile.index_hits += 1
                    self.profile.edges_scanned += len(eids)
                local_eids.append(np.unique(eids))
                if len(tgts):
                    buckets = self.partitioner.split_by_owner(np.unique(tgts))
                    for dst in range(n):
                        if len(buckets[dst]):
                            outboxes[w][dst] = buckets[dst]
            inboxes = self.comm.alltoall(outboxes)
            parts: list[np.ndarray] = []
            for w in range(n):
                received = [p for p in inboxes[w] if p is not None and len(p)]
                parts.append(
                    np.unique(np.concatenate(received)) if received else _EMPTY
                )
            if any(len(p) for p in parts):
                prior = frontier.get(to_type)
                if prior is None:
                    frontier[to_type] = parts
                else:
                    frontier[to_type] = [
                        np.union1d(a, b) for a, b in zip(prior, parts)
                    ]
            eids_all = [e for e in local_eids if len(e)]
            if eids_all:
                matched = _union(matched, {ename: np.unique(np.concatenate(eids_all))})
        return frontier, matched

    # ------------------------------------------------------------------
    def run_atom(self, atom: RAtom, direction: str = "forward") -> AtomSets:
        tagged = unroll_counted_regexes(atom.steps)
        if direction == "backward":
            tagged = reverse_steps(tagged)
        steps = [s for s, _ in tagged]
        for s in steps:
            if isinstance(s, RRegex):
                raise ExecutionError(
                    "unbounded path regular expressions are not supported on "
                    "the distributed backend — run them single-node"
                )
        n_steps = len(steps)
        forward: list[DistSets | SetDict] = [dict() for _ in range(n_steps)]
        assert isinstance(steps[0], RVertexStep)
        forward[0] = self._vertex_select(steps[0], None)
        self._record_label(steps[0], forward[0])
        i = 1
        while i < n_steps:
            estep, vstep = steps[i], steps[i + 1]
            assert isinstance(estep, REdgeStep) and isinstance(vstep, RVertexStep)
            # the superstep reads only checkpointed frontier state
            # (forward[i-1]), so a barrier fault re-runs just this step
            with self._profiled("expand") as done:
                frontier, eids = self._superstep(
                    lambda e=estep, f=forward[i - 1], t=vstep.types: self._edge_expand(
                        e, f, t
                    )
                )
                forward[i] = eids  # SetDict (global eids)
                forward[i + 1] = self._vertex_select(vstep, frontier)
                done(_dist_size(forward[i + 1]))
            self._record_label(vstep, forward[i + 1])
            i += 2
        # ---- backward cull (distributed, same exchange pattern)
        culled: list[DistSets | SetDict] = [dict() for _ in range(n_steps)]
        culled[n_steps - 1] = forward[n_steps - 1]
        i = n_steps - 2
        while i > 0:
            estep = steps[i]
            assert isinstance(estep, REdgeStep)
            with self._profiled("cull") as done:
                prev, kept = self._superstep(
                    lambda e=estep, cn=culled[i + 1], fp=forward[i - 1], fe=forward[
                        i
                    ]: self._cull_edge(e, cn, fp, fe)
                )
                culled[i] = kept
                culled[i - 1] = prev
                done(_dist_size(prev))
            i -= 2
        result = AtomSets(len(atom.steps))
        for pos, (step, idx) in enumerate(tagged):
            if isinstance(step, RVertexStep):
                sets = _gather(culled[pos])
                prior = result.vertex_sets.get(idx, {})
                result.vertex_sets[idx] = _union(prior, sets) if prior else sets
            else:
                prior = result.edge_sets.get(idx, {})
                result.edge_sets[idx] = (
                    _union(prior, culled[pos]) if prior else culled[pos]
                )
        for pos, (step, _) in enumerate(tagged):
            if isinstance(step, RVertexStep):
                self._record_label_global(step, _gather(culled[pos]))
        return result

    def _cull_edge(
        self,
        estep: REdgeStep,
        culled_next: DistSets,
        forward_prev: DistSets,
        forward_edges: SetDict,
    ) -> tuple[DistSets, SetDict]:
        """Cull: expand from culled-next via opposite shards, keep edges
        landing in forward-prev, route survivors to their owners."""
        flipped = REdgeStep(
            list(estep.names),
            "in" if estep.direction == DIR_OUT else "out",
            estep.cond,
            estep.label,
            estep.is_variant,
            estep.label_ref,
        )
        prev_global = _gather(forward_prev)
        n = self.partitioner.num_workers
        kept: SetDict = {}
        culled_prev: DistSets = {}
        for ename in flipped.names:
            et = self.db.edge_type(ename)
            along = flipped.direction == DIR_OUT
            from_type = et.source.name if along else et.target.name
            to_type = et.target.name if along else et.source.name
            if from_type not in culled_next or to_type not in prev_global:
                continue
            allowed = np.sort(forward_edges.get(ename, _EMPTY))
            outboxes: list[list[Optional[np.ndarray]]] = [[None] * n for _ in range(n)]
            local_keep: list[np.ndarray] = []
            for w in range(n):
                fr = culled_next[from_type][w]
                if len(fr) == 0:
                    continue
                shard = self.shards[w][ename]
                index = shard.forward if along else shard.reverse
                _, tgts, eids = index.expand_restricted(fr, allowed)
                self.work_per_worker[self._phys(w)] += len(eids)
                if self.profile is not None:
                    self.profile.index_hits += 1
                    self.profile.edges_scanned += len(eids)
                mask = _in_sorted(tgts, prev_global.get(to_type, _EMPTY))
                if mask.any():
                    local_keep.append(np.unique(eids[mask]))
                    buckets = self.partitioner.split_by_owner(np.unique(tgts[mask]))
                    for dst in range(n):
                        if len(buckets[dst]):
                            outboxes[w][dst] = buckets[dst]
            inboxes = self.comm.alltoall(outboxes)
            parts: list[np.ndarray] = []
            for w in range(n):
                received = [p for p in inboxes[w] if p is not None and len(p)]
                parts.append(
                    np.unique(np.concatenate(received)) if received else _EMPTY
                )
            if any(len(p) for p in parts):
                prior = culled_prev.get(to_type)
                if prior is None:
                    culled_prev[to_type] = parts
                else:
                    culled_prev[to_type] = [
                        np.union1d(a, b) for a, b in zip(prior, parts)
                    ]
            if local_keep:
                kept = _union(kept, {ename: np.unique(np.concatenate(local_keep))})
        return culled_prev, kept

    def _record_label(self, step: RVertexStep, sets: DistSets) -> None:
        if step.label is not None:
            self.label_env[step.label.name] = _gather(sets)

    def _record_label_global(self, step: RVertexStep, sets: SetDict) -> None:
        if step.label is not None:
            self.label_env[step.label.name] = {t: v.copy() for t, v in sets.items()}
