"""Distributed set-frontier path queries (BSP over edge-index shards).

Each query step is one or two supersteps:

* **vertex step** — embarrassingly parallel: every worker filters the
  frontier vids it owns against the step's condition/seed/label sets
  (attributes of owned vertices are local by construction);
* **edge step** — every worker expands its local forward (or reverse)
  shard from its owned frontier slice, buckets the discovered endpoint
  vids by owner, and the communicator routes the buckets (the messages
  and bytes the benchmarks report).  Matched edge ids stay local to the
  expanding worker.

The backward cull mirrors the forward pass with the opposite shards.
Results are bit-identical to the single-node executor
(:class:`repro.query.frontier.FrontierExecutor`) — a property the test
suite asserts on randomized workloads.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ExecutionError
from repro.graph.graphdb import GraphDB
from repro.graql.ast import DIR_OUT
from repro.graql.typecheck import RAtom, REdgeStep, RRegex, RVertexStep
from repro.query.frontier import (
    AtomSets,
    SetDict,
    _in_sorted,
    _intersect_sorted,
    _union,
    reverse_steps,
    unroll_counted_regexes,
)
from repro.dist.comm import Communicator
from repro.dist.partition import EdgeShard, Partitioner

_EMPTY = np.empty(0, dtype=np.int64)

# A distributed frontier: type name -> per-worker owned vid arrays
DistSets = dict[str, list[np.ndarray]]


def _dist_empty(num_workers: int) -> DistSets:
    return {}


def _gather(sets: DistSets) -> SetDict:
    """Collapse a distributed frontier into global per-type sets."""
    out: SetDict = {}
    for t, parts in sets.items():
        arrs = [p for p in parts if len(p)]
        if arrs:
            out[t] = np.unique(np.concatenate(arrs))
    return out


def _scatter(sets: SetDict, partitioner: Partitioner) -> DistSets:
    """Split global per-type sets into per-owner slices."""
    out: DistSets = {}
    for t, vids in sets.items():
        out[t] = partitioner.split_by_owner(vids)
    return out


class DistFrontierExecutor:
    """Distributed analogue of :class:`FrontierExecutor`."""

    def __init__(
        self,
        db: GraphDB,
        shards: list[dict[str, EdgeShard]],
        partitioner: Partitioner,
        comm: Communicator,
        label_env: Optional[dict[str, SetDict]] = None,
    ) -> None:
        self.db = db
        self.shards = shards
        self.partitioner = partitioner
        self.comm = comm
        self.label_env: dict[str, SetDict] = label_env if label_env is not None else {}
        self.pin_labels: dict[str, SetDict] = {}
        #: per-worker count of edges expanded (load-balance metric)
        self.work_per_worker = np.zeros(partitioner.num_workers, dtype=np.int64)

    # ------------------------------------------------------------------
    def _vertex_select(self, step: RVertexStep, incoming: Optional[DistSets]) -> DistSets:
        n = self.partitioner.num_workers
        out: DistSets = {}
        for t in step.types:
            vt = self.db.vertex_type(t)
            parts: list[np.ndarray] = []
            for w in range(n):
                if incoming is None:
                    cands = self.partitioner.local_vids(w, vt.num_vertices)
                else:
                    cands = incoming.get(t, [_EMPTY] * n)[w]
                if step.seed is not None and len(cands):
                    cands = _intersect_sorted(
                        cands, self.db.subgraph(step.seed).vertex_ids(t)
                    )
                if step.label_ref is not None and len(cands):
                    sets = self.label_env.get(step.label_ref, {})
                    cands = _intersect_sorted(cands, sets.get(t, _EMPTY))
                if (
                    step.label is not None
                    and step.label.name in self.pin_labels
                    and len(cands)
                ):
                    pin = self.pin_labels[step.label.name]
                    cands = _intersect_sorted(cands, pin.get(t, _EMPTY))
                if step.cond is not None and len(cands):
                    cands = vt.select(step.cond, cands)
                parts.append(np.unique(cands))
            if any(len(p) for p in parts):
                out[t] = parts
        return out

    def _edge_expand(
        self,
        step: REdgeStep,
        prev: DistSets,
        next_types: list[str],
        allowed_edges: Optional[SetDict] = None,
    ) -> tuple[DistSets, SetDict]:
        """One distributed edge step: local expand + alltoall exchange."""
        n = self.partitioner.num_workers
        # per (target type): outbox[src_worker][dst_worker] vid arrays
        frontier: DistSets = {}
        matched: SetDict = {}
        for ename in step.names:
            et = self.db.edge_type(ename)
            along = step.direction == DIR_OUT
            from_type = et.source.name if along else et.target.name
            to_type = et.target.name if along else et.source.name
            if to_type not in next_types or from_type not in prev:
                continue
            allowed = None
            if step.cond is not None:
                allowed = np.sort(et.select(step.cond))
            if allowed_edges is not None:
                extra = allowed_edges.get(ename, _EMPTY)
                allowed = extra if allowed is None else _intersect_sorted(allowed, extra)
            outboxes: list[list[Optional[np.ndarray]]] = [
                [None] * n for _ in range(n)
            ]
            local_eids: list[np.ndarray] = []
            for w in range(n):
                fr = prev[from_type][w]
                if len(fr) == 0:
                    local_eids.append(_EMPTY)
                    continue
                shard = self.shards[w][ename]
                index = shard.forward if along else shard.reverse
                _, tgts, eids = index.expand_restricted(fr, allowed)
                self.work_per_worker[w] += len(eids)
                local_eids.append(np.unique(eids))
                if len(tgts):
                    buckets = self.partitioner.split_by_owner(np.unique(tgts))
                    for dst in range(n):
                        if len(buckets[dst]):
                            outboxes[w][dst] = buckets[dst]
            inboxes = self.comm.alltoall(outboxes)
            parts: list[np.ndarray] = []
            for w in range(n):
                received = [p for p in inboxes[w] if p is not None and len(p)]
                parts.append(
                    np.unique(np.concatenate(received)) if received else _EMPTY
                )
            if any(len(p) for p in parts):
                prior = frontier.get(to_type)
                if prior is None:
                    frontier[to_type] = parts
                else:
                    frontier[to_type] = [
                        np.union1d(a, b) for a, b in zip(prior, parts)
                    ]
            eids_all = [e for e in local_eids if len(e)]
            if eids_all:
                matched = _union(matched, {ename: np.unique(np.concatenate(eids_all))})
        return frontier, matched

    # ------------------------------------------------------------------
    def run_atom(self, atom: RAtom, direction: str = "forward") -> AtomSets:
        tagged = unroll_counted_regexes(atom.steps)
        if direction == "backward":
            tagged = reverse_steps(tagged)
        steps = [s for s, _ in tagged]
        for s in steps:
            if isinstance(s, RRegex):
                raise ExecutionError(
                    "unbounded path regular expressions are not supported on "
                    "the distributed backend — run them single-node"
                )
        n_steps = len(steps)
        forward: list[DistSets | SetDict] = [dict() for _ in range(n_steps)]
        assert isinstance(steps[0], RVertexStep)
        forward[0] = self._vertex_select(steps[0], None)
        self._record_label(steps[0], forward[0])
        i = 1
        while i < n_steps:
            estep, vstep = steps[i], steps[i + 1]
            assert isinstance(estep, REdgeStep) and isinstance(vstep, RVertexStep)
            frontier, eids = self._edge_expand(estep, forward[i - 1], vstep.types)
            forward[i] = eids  # SetDict (global eids)
            forward[i + 1] = self._vertex_select(vstep, frontier)
            self._record_label(vstep, forward[i + 1])
            i += 2
        # ---- backward cull (distributed, same exchange pattern)
        culled: list[DistSets | SetDict] = [dict() for _ in range(n_steps)]
        culled[n_steps - 1] = forward[n_steps - 1]
        i = n_steps - 2
        while i > 0:
            estep = steps[i]
            assert isinstance(estep, REdgeStep)
            prev, kept = self._cull_edge(
                estep, culled[i + 1], forward[i - 1], forward[i]
            )
            culled[i] = kept
            culled[i - 1] = prev
            i -= 2
        result = AtomSets(len(atom.steps))
        for pos, (step, idx) in enumerate(tagged):
            if isinstance(step, RVertexStep):
                sets = _gather(culled[pos])
                prior = result.vertex_sets.get(idx, {})
                result.vertex_sets[idx] = _union(prior, sets) if prior else sets
            else:
                prior = result.edge_sets.get(idx, {})
                result.edge_sets[idx] = (
                    _union(prior, culled[pos]) if prior else culled[pos]
                )
        for pos, (step, _) in enumerate(tagged):
            if isinstance(step, RVertexStep):
                self._record_label_global(step, _gather(culled[pos]))
        return result

    def _cull_edge(
        self,
        estep: REdgeStep,
        culled_next: DistSets,
        forward_prev: DistSets,
        forward_edges: SetDict,
    ) -> tuple[DistSets, SetDict]:
        """Cull: expand from culled-next via opposite shards, keep edges
        landing in forward-prev, route survivors to their owners."""
        flipped = REdgeStep(
            list(estep.names),
            "in" if estep.direction == DIR_OUT else "out",
            estep.cond,
            estep.label,
            estep.is_variant,
            estep.label_ref,
        )
        prev_global = _gather(forward_prev)
        n = self.partitioner.num_workers
        kept: SetDict = {}
        culled_prev: DistSets = {}
        for ename in flipped.names:
            et = self.db.edge_type(ename)
            along = flipped.direction == DIR_OUT
            from_type = et.source.name if along else et.target.name
            to_type = et.target.name if along else et.source.name
            if from_type not in culled_next or to_type not in prev_global:
                continue
            allowed = np.sort(forward_edges.get(ename, _EMPTY))
            outboxes: list[list[Optional[np.ndarray]]] = [[None] * n for _ in range(n)]
            local_keep: list[np.ndarray] = []
            for w in range(n):
                fr = culled_next[from_type][w]
                if len(fr) == 0:
                    continue
                shard = self.shards[w][ename]
                index = shard.forward if along else shard.reverse
                _, tgts, eids = index.expand_restricted(fr, allowed)
                self.work_per_worker[w] += len(eids)
                mask = _in_sorted(tgts, prev_global.get(to_type, _EMPTY))
                if mask.any():
                    local_keep.append(np.unique(eids[mask]))
                    buckets = self.partitioner.split_by_owner(np.unique(tgts[mask]))
                    for dst in range(n):
                        if len(buckets[dst]):
                            outboxes[w][dst] = buckets[dst]
            inboxes = self.comm.alltoall(outboxes)
            parts: list[np.ndarray] = []
            for w in range(n):
                received = [p for p in inboxes[w] if p is not None and len(p)]
                parts.append(
                    np.unique(np.concatenate(received)) if received else _EMPTY
                )
            if any(len(p) for p in parts):
                prior = culled_prev.get(to_type)
                if prior is None:
                    culled_prev[to_type] = parts
                else:
                    culled_prev[to_type] = [
                        np.union1d(a, b) for a, b in zip(prior, parts)
                    ]
            if local_keep:
                kept = _union(kept, {ename: np.unique(np.concatenate(local_keep))})
        return culled_prev, kept

    def _record_label(self, step: RVertexStep, sets: DistSets) -> None:
        if step.label is not None:
            self.label_env[step.label.name] = _gather(sets)

    def _record_label_global(self, step: RVertexStep, sets: SetDict) -> None:
        if step.label is not None:
            self.label_env[step.label.name] = {t: v.copy() for t, v in sets.items()}
