"""The simulated backend cluster.

    "the backend cluster supports the high-performance, massively
    parallel execution of graph and tabular queries over the database,
    which is primarily resident on the aggregated memory of the compute
    nodes." (Section III)

:class:`Cluster` wraps a fully-built :class:`~repro.graph.graphdb.GraphDB`
with *n* workers: hash-partitioned vertex ownership, per-worker
bidirectional edge-index shards, and a byte-accounting communicator.
``run_graph_select`` executes set-semantics path queries with the
distributed BSP executor; everything else transparently falls back to the
single-node engine (and says so), because the paper's design also keeps
the front-end free to choose where a query runs.

The cluster is fault-tolerant (docs/RELIABILITY.md): edge shards are
placed with *k*-replica chained declustering
(:class:`~repro.dist.partition.Placement`), a seeded
:class:`~repro.dist.faults.FaultInjector` can kill workers and
drop/corrupt/delay messages, failed supersteps are retried with
exponential backoff and replica failover, and a
:class:`~repro.dist.recovery.CircuitBreaker` degrades statements to
verified single-node execution when the cluster keeps failing — with
what-degraded-and-why surfaced on every ``StatementResult``.
"""

from __future__ import annotations

import time
from typing import Any, Mapping, Optional

import numpy as np

from repro.catalog import Catalog
from repro.dist.comm import Communicator
from repro.dist.dist_query import DistFrontierExecutor
from repro.dist.faults import FaultInjector
from repro.dist.partition import Partitioner, Placement, build_edge_shards
from repro.dist.recovery import CircuitBreaker, RecoveryStats
from repro.errors import BackendError, DegradedMode, ExecutionError
from repro.graph.graphdb import GraphDB
from repro.graql.ast import GraphSelect, INTO_SUBGRAPH, Statement
from repro.graql.parser import parse_script
from repro.graql.params import substitute_statement
from repro.graql.typecheck import CheckedGraphSelect, check_statement
from repro.obs.options import QueryOptions, resolve_options
from repro.obs.profile import QueryProfile
from repro.query.executor import (
    StatementResult,
    _atom_profile,
    _fill_set_actuals,
    _label_def_ref_pairs,
    _sizes,
    execute_statement,
)
from repro.query.planner import plan_graph_select
from repro.query.results import NameMap, subgraph_from_sets

MAX_REFINE_ROUNDS = 4


class Cluster:
    """A GraphDB partitioned over *num_workers* simulated nodes."""

    def __init__(
        self,
        db: GraphDB,
        num_workers: int,
        catalog: Optional[Catalog] = None,
        *,
        replication: int = 1,
        fault_injector: Optional[FaultInjector] = None,
        breaker: Optional[CircuitBreaker] = None,
        allow_degraded: bool = True,
        statement_timeout_s: Optional[float] = None,
        max_retries: int = 5,
        backoff_base_s: float = 0.001,
    ) -> None:
        self.db = db
        self.catalog = catalog or Catalog.from_db(db)
        self.partitioner = Partitioner(num_workers)
        self.placement = Placement(num_workers, replication)
        self.injector = fault_injector
        self.comm = Communicator(
            num_workers, placement=self.placement, injector=fault_injector
        )
        self.shards = build_edge_shards(db, self.partitioner)
        self.breaker = breaker or CircuitBreaker()
        self.allow_degraded = allow_degraded
        self.statement_timeout_s = statement_timeout_s
        self.max_retries = max_retries
        self.backoff_base_s = backoff_base_s
        #: statements that fell back to single-node because of faults
        self.degraded_statements = 0
        #: recovery cost accumulated across all statements
        self.recovery_totals = RecoveryStats()

    @property
    def num_workers(self) -> int:
        return self.partitioner.num_workers

    @property
    def replication(self) -> int:
        return self.placement.replication

    def rebuild(self) -> None:
        """Re-shard after ingest/DDL changed the graph."""
        self.shards = build_edge_shards(self.db, self.partitioner)
        self.catalog.refresh(self.db)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(
        self,
        graql: str,
        params: Optional[Mapping[str, Any]] = None,
        timeout_s: Optional[float] = None,
        options: Optional[QueryOptions] = None,
    ) -> list[StatementResult]:
        """Execute a script, running set-semantics graph selects
        distributed and everything else on the single-node engine."""
        results = []
        for stmt in parse_script(graql).statements:
            results.append(
                self.execute_statement(
                    stmt, params, timeout_s=timeout_s, options=options
                )
            )
        return results

    def execute_statement(
        self,
        stmt: Statement,
        params: Optional[Mapping[str, Any]] = None,
        timeout_s: Optional[float] = None,
        options: Optional[QueryOptions] = None,
    ) -> StatementResult:
        opts = resolve_options(options)
        if timeout_s is None:
            timeout_s = opts.timeout
        if params:
            stmt = substitute_statement(stmt, params)
        if isinstance(stmt, GraphSelect):
            checked = check_statement(stmt, self.catalog)
            assert isinstance(checked, CheckedGraphSelect)
            if (
                not checked.pattern.needs_bindings
                and not checked.pattern.has_regex
                and not checked.pattern.has_edge_labels
                and opts.strategy != "bindings"
            ):
                if stmt.into is None or stmt.into.kind == INTO_SUBGRAPH:
                    return self._run_distributed_or_degrade(
                        checked, stmt, timeout_s, opts
                    )
        result = execute_statement(self.db, self.catalog, stmt, options=opts)
        if stmt.__class__.__name__ in ("CreateTable", "CreateVertex", "CreateEdge", "Ingest"):
            self.rebuild()
        return result

    # ------------------------------------------------------------------
    # Degradation policy: breaker-gated distributed attempt, verified
    # single-node fallback ("the server is free to choose where a query
    # runs" — under faults, it chooses the node that still works)
    # ------------------------------------------------------------------
    def _run_distributed_or_degrade(
        self,
        checked: CheckedGraphSelect,
        stmt: GraphSelect,
        timeout_s: Optional[float],
        options: Optional[QueryOptions] = None,
    ) -> StatementResult:
        opts = resolve_options(options)
        if self.breaker.allow():
            try:
                result = self.run_graph_select(
                    checked, timeout_s=timeout_s, options=opts
                )
                self.breaker.record_success()
                return result
            except BackendError as exc:
                self.breaker.record_failure()
                reason = f"{type(exc).__name__}: {exc}"
        else:
            reason = "circuit breaker open"
        if not self.allow_degraded:
            raise DegradedMode(
                f"distributed execution unavailable ({reason}) and degraded "
                "single-node fallback is disabled"
            )
        self.degraded_statements += 1
        result = execute_statement(self.db, self.catalog, stmt, options=opts)
        result.degraded = True
        result.degraded_reason = reason
        return result

    def run_graph_select(
        self,
        checked: CheckedGraphSelect,
        timeout_s: Optional[float] = None,
        options: Optional[QueryOptions] = None,
    ) -> StatementResult:
        """Distributed set-semantics execution of a graph select."""
        opts = resolve_options(options)
        stmt = checked.stmt
        profile = QueryProfile(kind="subgraph") if opts.profile else None
        t_plan = time.perf_counter()
        plan = plan_graph_select(
            checked, self.catalog, opts.direction, force_strategy="set"
        )
        atoms = checked.pattern.atoms()
        ordinals = {id(a): i for i, a in enumerate(atoms)}
        if profile is not None:
            profile.add_stage("plan", (time.perf_counter() - t_plan) * 1000.0)
            profile.strategy = plan.strategy
            profile.atoms = [
                _atom_profile(i, a, plan.plan_for(a)) for i, a in enumerate(atoms)
            ]
        name_map = NameMap()
        for i, a in enumerate(atoms):
            name_map.add_atom(i, a)
        budget = timeout_s if timeout_s is not None else self.statement_timeout_s
        deadline = time.monotonic() + budget if budget is not None else None
        recovery = RecoveryStats()
        faults0 = self.fault_stats()
        fx = DistFrontierExecutor(
            self.db,
            self.shards,
            self.partitioner,
            self.comm,
            placement=self.placement,
            recovery=recovery,
            max_retries=self.max_retries,
            backoff_base_s=self.backoff_base_s,
            deadline=deadline,
            profile=profile,
        )
        results: dict[int, object] = {}
        t_exec = time.perf_counter()

        def run_all():
            for a in atoms:
                results[ordinals[id(a)]] = fx.run_atom(a, plan.plan_for(a).direction)

        run_all()
        pairs = _label_def_ref_pairs(atoms, ordinals)
        for _ in range(MAX_REFINE_ROUNDS):
            changed = False
            for label, (d_ord, d_pos), refs in pairs:
                def_sets = results[d_ord].vertex_sets.get(d_pos, {})
                refined = def_sets
                for r_ord, r_pos in refs:
                    ref_sets = results[r_ord].vertex_sets.get(r_pos, {})
                    refined = {
                        t: np.intersect1d(
                            v, ref_sets.get(t, np.empty(0, dtype=np.int64))
                        )
                        for t, v in refined.items()
                    }
                refined = {t: v for t, v in refined.items() if len(v)}
                if _sizes(refined) != _sizes(def_sets):
                    fx.pin_labels[label] = refined
                    changed = True
            if not changed:
                break
            fx.label_env.clear()
            run_all()
        if profile is not None:
            profile.add_stage("execute", (time.perf_counter() - t_exec) * 1000.0)
            _fill_set_actuals(profile, atoms, results)
        result_name = stmt.into.name if stmt.into is not None else "result"
        t_mat = time.perf_counter()
        subgraph = subgraph_from_sets(
            stmt,
            [(a, results[i]) for i, a in enumerate(atoms)],
            name_map,
            result_name,
        )
        if stmt.into is not None:
            self.db.register_subgraph(subgraph)
            self.catalog.register_subgraph(
                subgraph.name, {k: len(v) for k, v in subgraph.vertices.items()}
            )
        self.recovery_totals.merge(recovery)
        if profile is not None:
            profile.add_stage("materialize", (time.perf_counter() - t_mat) * 1000.0)
            profile.rows_out = subgraph.num_vertices
            d = profile.ensure_dist()
            rec = recovery.snapshot()
            d["failovers"] += rec.get("failovers", 0)
            d["backoff_ms"] += rec.get("backoff_ms", 0.0)
            d["extra_messages"] += rec.get("extra_messages", 0)
            d["extra_bytes"] += rec.get("extra_bytes", 0)
            faults1 = self.fault_stats()
            d["faults"] = {
                k: v - faults0.get(k, 0)
                for k, v in faults1.items()
                if isinstance(v, (int, float)) and v - faults0.get(k, 0)
            }
        return StatementResult(
            "subgraph",
            subgraph=subgraph,
            count=subgraph.num_vertices,
            plan=plan,
            recovery=recovery.snapshot(),
            profile=profile,
        )

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def comm_stats(self) -> dict:
        return self.comm.stats.snapshot()

    def fault_stats(self) -> dict:
        """Injected-fault counters (empty when no injector is attached)."""
        return self.injector.stats.snapshot() if self.injector is not None else {}

    def reliability_stats(self) -> dict:
        """One roll-up of the whole fault story: placement, breaker,
        degradation counts, cumulative recovery cost, injected faults."""
        return {
            "replication": self.replication,
            "live_workers": len(self.placement.live),
            "failed_workers": self.placement.num_failed,
            "degraded_statements": self.degraded_statements,
            "breaker": self.breaker.snapshot(),
            "recovery": self.recovery_totals.snapshot(),
            "faults": self.fault_stats(),
        }

    def heal(self) -> None:
        """Start a fresh placement epoch: revive every worker, close the
        breaker.  (The injector keeps its stats; re-arm via its own
        ``reset``.)"""
        self.placement.restore_all()
        self.breaker.reset()

    def reset_stats(self) -> None:
        self.comm.reset()
        self.recovery_totals = RecoveryStats()
        self.degraded_statements = 0

    def edge_balance(self) -> dict:
        """Per-worker forward-edge counts and the max/mean imbalance."""
        counts = np.zeros(self.num_workers, dtype=np.int64)
        for w in range(self.num_workers):
            counts[w] = sum(s.num_forward_edges for s in self.shards[w].values())
        mean = counts.mean() if len(counts) else 0.0
        return {
            "per_worker": counts.tolist(),
            "imbalance": float(counts.max() / mean) if mean > 0 else 1.0,
        }

    def memory_per_worker(self, payload_only: bool = False) -> list[int]:
        """Bytes of edge-shard storage per worker (aggregated DRAM).

        The *payload* (neighbor/eid arrays) partitions with the edges and
        shrinks ~linearly with workers.  The CSR ``indptr`` arrays span
        the global vid range and are a fixed per-worker overhead of this
        shard layout; ``payload_only=True`` excludes them to expose the
        partitionable fraction (the aggregated-memory scaling argument).

        With ``replication=k`` each worker stores its primary shard plus
        copies of the k-1 partitions it replicates, so per-worker memory
        is ~k times the unreplicated cost — the price of surviving
        fail-stop without data loss.
        """
        out = []
        for w in range(self.num_workers):
            total = 0
            for p in self.placement.partitions_stored_by(w):
                for s in self.shards[p].values():
                    total += s.forward.neighbors.nbytes + s.forward.eids.nbytes
                    total += s.reverse.neighbors.nbytes + s.reverse.eids.nbytes
                    if not payload_only:
                        total += s.forward.indptr.nbytes + s.reverse.indptr.nbytes
            out.append(int(total))
        return out

    def __repr__(self) -> str:
        return f"Cluster(workers={self.num_workers}, {self.db!r})"
