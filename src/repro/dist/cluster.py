"""The simulated backend cluster.

    "the backend cluster supports the high-performance, massively
    parallel execution of graph and tabular queries over the database,
    which is primarily resident on the aggregated memory of the compute
    nodes." (Section III)

:class:`Cluster` wraps a fully-built :class:`~repro.graph.graphdb.GraphDB`
with *n* workers: hash-partitioned vertex ownership, per-worker
bidirectional edge-index shards, and a byte-accounting communicator.
``run_graph_select`` executes set-semantics path queries with the
distributed BSP executor; everything else transparently falls back to the
single-node engine (and says so), because the paper's design also keeps
the front-end free to choose where a query runs.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

import numpy as np

from repro.catalog import Catalog
from repro.dist.comm import Communicator
from repro.dist.dist_query import DistFrontierExecutor
from repro.dist.partition import Partitioner, build_edge_shards
from repro.errors import ExecutionError
from repro.graph.graphdb import GraphDB
from repro.graql.ast import GraphSelect, INTO_SUBGRAPH, Statement
from repro.graql.parser import parse_script
from repro.graql.params import substitute_statement
from repro.graql.typecheck import CheckedGraphSelect, check_statement
from repro.query.executor import (
    StatementResult,
    _label_def_ref_pairs,
    _sizes,
    execute_statement,
)
from repro.query.planner import plan_graph_select
from repro.query.results import NameMap, subgraph_from_sets

MAX_REFINE_ROUNDS = 4


class Cluster:
    """A GraphDB partitioned over *num_workers* simulated nodes."""

    def __init__(self, db: GraphDB, num_workers: int, catalog: Optional[Catalog] = None) -> None:
        self.db = db
        self.catalog = catalog or Catalog.from_db(db)
        self.partitioner = Partitioner(num_workers)
        self.comm = Communicator(num_workers)
        self.shards = build_edge_shards(db, self.partitioner)

    @property
    def num_workers(self) -> int:
        return self.partitioner.num_workers

    def rebuild(self) -> None:
        """Re-shard after ingest/DDL changed the graph."""
        self.shards = build_edge_shards(self.db, self.partitioner)
        self.catalog.refresh(self.db)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(
        self,
        graql: str,
        params: Optional[Mapping[str, Any]] = None,
    ) -> list[StatementResult]:
        """Execute a script, running set-semantics graph selects
        distributed and everything else on the single-node engine."""
        results = []
        for stmt in parse_script(graql).statements:
            results.append(self.execute_statement(stmt, params))
        return results

    def execute_statement(
        self,
        stmt: Statement,
        params: Optional[Mapping[str, Any]] = None,
    ) -> StatementResult:
        if params:
            stmt = substitute_statement(stmt, params)
        if isinstance(stmt, GraphSelect):
            checked = check_statement(stmt, self.catalog)
            assert isinstance(checked, CheckedGraphSelect)
            if (
                not checked.pattern.needs_bindings
                and not checked.pattern.has_regex
                and not checked.pattern.has_edge_labels
            ):
                if stmt.into is None or stmt.into.kind == INTO_SUBGRAPH:
                    return self.run_graph_select(checked)
        result = execute_statement(self.db, self.catalog, stmt)
        if stmt.__class__.__name__ in ("CreateTable", "CreateVertex", "CreateEdge", "Ingest"):
            self.rebuild()
        return result

    def run_graph_select(self, checked: CheckedGraphSelect) -> StatementResult:
        """Distributed set-semantics execution of a graph select."""
        stmt = checked.stmt
        plan = plan_graph_select(checked, self.catalog, force_strategy="set")
        atoms = checked.pattern.atoms()
        ordinals = {id(a): i for i, a in enumerate(atoms)}
        name_map = NameMap()
        for i, a in enumerate(atoms):
            name_map.add_atom(i, a)
        fx = DistFrontierExecutor(self.db, self.shards, self.partitioner, self.comm)
        results: dict[int, object] = {}

        def run_all():
            for a in atoms:
                results[ordinals[id(a)]] = fx.run_atom(a, plan.plan_for(a).direction)

        run_all()
        pairs = _label_def_ref_pairs(atoms, ordinals)
        for _ in range(MAX_REFINE_ROUNDS):
            changed = False
            for label, (d_ord, d_pos), refs in pairs:
                def_sets = results[d_ord].vertex_sets.get(d_pos, {})
                refined = def_sets
                for r_ord, r_pos in refs:
                    ref_sets = results[r_ord].vertex_sets.get(r_pos, {})
                    refined = {
                        t: np.intersect1d(
                            v, ref_sets.get(t, np.empty(0, dtype=np.int64))
                        )
                        for t, v in refined.items()
                    }
                refined = {t: v for t, v in refined.items() if len(v)}
                if _sizes(refined) != _sizes(def_sets):
                    fx.pin_labels[label] = refined
                    changed = True
            if not changed:
                break
            fx.label_env.clear()
            run_all()
        result_name = stmt.into.name if stmt.into is not None else "result"
        subgraph = subgraph_from_sets(
            stmt,
            [(a, results[i]) for i, a in enumerate(atoms)],
            name_map,
            result_name,
        )
        if stmt.into is not None:
            self.db.register_subgraph(subgraph)
            self.catalog.subgraphs[subgraph.name] = {
                k: len(v) for k, v in subgraph.vertices.items()
            }
        return StatementResult(
            "subgraph", subgraph=subgraph, count=subgraph.num_vertices, plan=plan
        )

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def comm_stats(self) -> dict:
        return self.comm.stats.snapshot()

    def reset_stats(self) -> None:
        self.comm.reset()

    def edge_balance(self) -> dict:
        """Per-worker forward-edge counts and the max/mean imbalance."""
        counts = np.zeros(self.num_workers, dtype=np.int64)
        for w in range(self.num_workers):
            counts[w] = sum(s.num_forward_edges for s in self.shards[w].values())
        mean = counts.mean() if len(counts) else 0.0
        return {
            "per_worker": counts.tolist(),
            "imbalance": float(counts.max() / mean) if mean > 0 else 1.0,
        }

    def memory_per_worker(self, payload_only: bool = False) -> list[int]:
        """Bytes of edge-shard storage per worker (aggregated DRAM).

        The *payload* (neighbor/eid arrays) partitions with the edges and
        shrinks ~linearly with workers.  The CSR ``indptr`` arrays span
        the global vid range and are a fixed per-worker overhead of this
        shard layout; ``payload_only=True`` excludes them to expose the
        partitionable fraction (the aggregated-memory scaling argument).
        """
        out = []
        for w in range(self.num_workers):
            total = 0
            for s in self.shards[w].values():
                total += s.forward.neighbors.nbytes + s.forward.eids.nbytes
                total += s.reverse.neighbors.nbytes + s.reverse.eids.nbytes
                if not payload_only:
                    total += s.forward.indptr.nbytes + s.reverse.indptr.nbytes
            out.append(int(total))
        return out

    def __repr__(self) -> str:
        return f"Cluster(workers={self.num_workers}, {self.db!r})"
