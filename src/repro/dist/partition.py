"""Hash partitioning of the attributed graph across workers.

    "These challenges include the difficulty of partitioning graphs
    across nodes on a cluster ..." (Section I)

The baseline GEMS answer is hash partitioning: vertex *v* of any type is
owned by worker ``v % n``.  Each edge type is sharded twice — once by
source owner (that worker serves forward expansions) and once by target
owner (reverse expansions) — which is exactly the distributed realization
of the bidirectional edge index of Section III-B.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkerFailed
from repro.graph.edge_index import EdgeIndex
from repro.graph.graphdb import GraphDB


class Partitioner:
    """Maps vertex ids to owning workers (per type, hash by id)."""

    def __init__(self, num_workers: int) -> None:
        if num_workers < 1:
            raise ValueError("need at least one worker")
        self.num_workers = num_workers

    def owner_of(self, vids: np.ndarray) -> np.ndarray:
        """Owning worker of each vid (vectorized)."""
        return vids % self.num_workers

    def local_vids(self, worker: int, num_vertices: int) -> np.ndarray:
        """All vids of a type owned by *worker*."""
        return np.arange(worker, num_vertices, self.num_workers, dtype=np.int64)

    def split_by_owner(self, vids: np.ndarray) -> list[np.ndarray]:
        """Partition an id array into per-owner buckets (sorted, unique)."""
        owners = self.owner_of(vids)
        return [
            np.unique(vids[owners == w]) for w in range(self.num_workers)
        ]


class Placement:
    """k-replica placement of logical partitions onto physical workers.

    Partition *p* (the ``vid % n`` bucket) is primarily served by worker
    *p*; its shard is additionally replicated on the next ``k - 1``
    workers ring-wise (chained declustering).  When a worker fail-stops,
    :meth:`serving` routes its partitions to the first live replica — no
    reshard, no rebuild — and messages between partitions that now share
    a physical worker become local (free) in the communicator.

    With ``replication=1`` (the default) this is the identity mapping and
    any worker loss makes its partitions unrecoverable (fatal
    :class:`~repro.errors.WorkerFailed` — the data lived only in that
    worker's DRAM).
    """

    def __init__(self, num_partitions: int, replication: int = 1) -> None:
        if num_partitions < 1:
            raise ValueError("need at least one partition")
        if not 1 <= replication <= num_partitions:
            raise ValueError(
                f"replication must be in [1, {num_partitions}], got {replication}"
            )
        self.num_partitions = num_partitions
        self.replication = replication
        self.replica_map = [
            [(p + i) % num_partitions for i in range(replication)]
            for p in range(num_partitions)
        ]
        self.live: set[int] = set(range(num_partitions))

    def serving(self, partition: int) -> int:
        """Physical worker currently serving *partition* (first live replica)."""
        for w in self.replica_map[partition]:
            if w in self.live:
                return w
        raise WorkerFailed(
            f"partition {partition} lost: all {self.replication} replica(s) dead",
            partition=partition,
            retryable=False,
        )

    def fail(self, worker: int) -> None:
        """Mark *worker* fail-stopped; its partitions fail over on next use."""
        self.live.discard(worker)

    def is_live(self, worker: int) -> bool:
        return worker in self.live

    @property
    def num_failed(self) -> int:
        return self.num_partitions - len(self.live)

    def partitions_stored_by(self, worker: int) -> list[int]:
        """Partitions whose shard *worker* holds a copy of (primary or replica)."""
        return [
            p for p in range(self.num_partitions) if worker in self.replica_map[p]
        ]

    def restore_all(self) -> None:
        """Bring every worker back (a fresh placement epoch)."""
        self.live = set(range(self.num_partitions))

    def __repr__(self) -> str:
        return (
            f"Placement(partitions={self.num_partitions}, "
            f"k={self.replication}, live={len(self.live)})"
        )


class EdgeShard:
    """One worker's slice of one edge type, in both directions."""

    def __init__(
        self,
        edge_type_name: str,
        forward: EdgeIndex,
        reverse: EdgeIndex,
        forward_eids_local: np.ndarray,
        reverse_eids_local: np.ndarray,
    ) -> None:
        self.edge_type_name = edge_type_name
        #: CSR over *all* source vids but containing only locally-owned
        #: source rows' edges (other rows are empty)
        self.forward = forward
        self.reverse = reverse
        self.forward_eids_local = forward_eids_local
        self.reverse_eids_local = reverse_eids_local

    @property
    def num_forward_edges(self) -> int:
        return self.forward.num_edges

    def __repr__(self) -> str:
        return (
            f"EdgeShard({self.edge_type_name!r}, fwd={self.forward.num_edges}, "
            f"rev={self.reverse.num_edges})"
        )


def build_edge_shards(db: GraphDB, partitioner: Partitioner) -> list[dict[str, EdgeShard]]:
    """Shard every edge type across workers.

    Returns ``shards[worker][edge_type_name]``.  The forward shard of a
    worker holds edges whose *source* it owns; the reverse shard edges
    whose *target* it owns.  Shard CSRs are indexed by global vid, which
    keeps frontier arrays directly usable without translation.
    """
    n = partitioner.num_workers
    shards: list[dict[str, EdgeShard]] = [dict() for _ in range(n)]
    for name, et in db.edge_types.items():
        src_owner = partitioner.owner_of(et.src_vids)
        tgt_owner = partitioner.owner_of(et.tgt_vids)
        all_eids = np.arange(et.num_edges, dtype=np.int64)
        for w in range(n):
            fmask = src_owner == w
            rmask = tgt_owner == w
            forward = EdgeIndex(
                et.source.num_vertices,
                et.src_vids[fmask],
                et.tgt_vids[fmask],
                all_eids[fmask],
            )
            reverse = EdgeIndex(
                et.target.num_vertices,
                et.tgt_vids[rmask],
                et.src_vids[rmask],
                all_eids[rmask],
            )
            shards[w][name] = EdgeShard(
                name, forward, reverse, all_eids[fmask], all_eids[rmask]
            )
    return shards
