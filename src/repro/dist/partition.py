"""Hash partitioning of the attributed graph across workers.

    "These challenges include the difficulty of partitioning graphs
    across nodes on a cluster ..." (Section I)

The baseline GEMS answer is hash partitioning: vertex *v* of any type is
owned by worker ``v % n``.  Each edge type is sharded twice — once by
source owner (that worker serves forward expansions) and once by target
owner (reverse expansions) — which is exactly the distributed realization
of the bidirectional edge index of Section III-B.
"""

from __future__ import annotations

import numpy as np

from repro.graph.edge_index import EdgeIndex
from repro.graph.graphdb import GraphDB


class Partitioner:
    """Maps vertex ids to owning workers (per type, hash by id)."""

    def __init__(self, num_workers: int) -> None:
        if num_workers < 1:
            raise ValueError("need at least one worker")
        self.num_workers = num_workers

    def owner_of(self, vids: np.ndarray) -> np.ndarray:
        """Owning worker of each vid (vectorized)."""
        return vids % self.num_workers

    def local_vids(self, worker: int, num_vertices: int) -> np.ndarray:
        """All vids of a type owned by *worker*."""
        return np.arange(worker, num_vertices, self.num_workers, dtype=np.int64)

    def split_by_owner(self, vids: np.ndarray) -> list[np.ndarray]:
        """Partition an id array into per-owner buckets (sorted, unique)."""
        owners = self.owner_of(vids)
        return [
            np.unique(vids[owners == w]) for w in range(self.num_workers)
        ]


class EdgeShard:
    """One worker's slice of one edge type, in both directions."""

    def __init__(
        self,
        edge_type_name: str,
        forward: EdgeIndex,
        reverse: EdgeIndex,
        forward_eids_local: np.ndarray,
        reverse_eids_local: np.ndarray,
    ) -> None:
        self.edge_type_name = edge_type_name
        #: CSR over *all* source vids but containing only locally-owned
        #: source rows' edges (other rows are empty)
        self.forward = forward
        self.reverse = reverse
        self.forward_eids_local = forward_eids_local
        self.reverse_eids_local = reverse_eids_local

    @property
    def num_forward_edges(self) -> int:
        return self.forward.num_edges

    def __repr__(self) -> str:
        return (
            f"EdgeShard({self.edge_type_name!r}, fwd={self.forward.num_edges}, "
            f"rev={self.reverse.num_edges})"
        )


def build_edge_shards(db: GraphDB, partitioner: Partitioner) -> list[dict[str, EdgeShard]]:
    """Shard every edge type across workers.

    Returns ``shards[worker][edge_type_name]``.  The forward shard of a
    worker holds edges whose *source* it owns; the reverse shard edges
    whose *target* it owns.  Shard CSRs are indexed by global vid, which
    keeps frontier arrays directly usable without translation.
    """
    n = partitioner.num_workers
    shards: list[dict[str, EdgeShard]] = [dict() for _ in range(n)]
    for name, et in db.edge_types.items():
        src_owner = partitioner.owner_of(et.src_vids)
        tgt_owner = partitioner.owner_of(et.tgt_vids)
        all_eids = np.arange(et.num_edges, dtype=np.int64)
        for w in range(n):
            fmask = src_owner == w
            rmask = tgt_owner == w
            forward = EdgeIndex(
                et.source.num_vertices,
                et.src_vids[fmask],
                et.tgt_vids[fmask],
                all_eids[fmask],
            )
            reverse = EdgeIndex(
                et.target.num_vertices,
                et.tgt_vids[rmask],
                et.src_vids[rmask],
                all_eids[rmask],
            )
            shards[w][name] = EdgeShard(
                name, forward, reverse, all_eids[fmask], all_eids[rmask]
            )
    return shards
