"""Explicit message-passing layer with byte and fault accounting.

Models the mpi4py-style alltoall exchange the GEMS backend performs each
superstep: every worker contributes one payload per destination, the
communicator "routes" them (a deterministic in-process shuffle), and the
per-message byte volume is tallied so benchmarks can report communication
cost alongside wall-clock time.

Payloads are NumPy arrays (or tuples of arrays); their ``nbytes`` plus a
fixed per-message envelope is the accounted size — the same first-order
cost model MPI messages have (size + latency envelope).  Every remote
non-``None`` delivery pays the envelope, including zero-byte payloads:
an empty array on the wire is still a message with a header and a
latency hit.

Two optional collaborators make the layer fault-aware
(docs/RELIABILITY.md):

* a :class:`~repro.dist.partition.Placement` maps logical partitions to
  the physical workers currently serving them, so traffic between
  partitions that failed over onto the same worker is local (free) and a
  lost partition raises a fatal :class:`~repro.errors.WorkerFailed`;
* a :class:`~repro.dist.faults.FaultInjector` can fail-stop workers at
  barrier entry (retryable :class:`~repro.errors.WorkerFailed`) and
  drop, corrupt, or delay individual remote messages.  Drops and
  corruption are detected at the barrier (missing ack / checksum
  mismatch) and raised as retryable :class:`~repro.errors.CommFailure`
  *after* the whole exchange is accounted — the failed attempt's traffic
  is real and shows up as recovery overhead.
"""

from __future__ import annotations

import threading
from typing import Optional, Sequence

import numpy as np

from repro.errors import CommFailure, WorkerFailed
from repro.dist.faults import CORRUPT, DELIVER, DROP, FaultInjector
from repro.dist.partition import Placement
from repro.obs.metrics import SIZE_BUCKETS, MetricsRegistry

#: accounted fixed cost per message (header/latency envelope), in bytes
ENVELOPE_BYTES = 64


class CommStats:
    """Running communication counters.

    Mutators self-lock: one communicator may be driven by concurrent
    cluster-backed selects under the serving layer's read lock.
    """

    def __init__(self) -> None:
        self.messages = 0
        self.bytes = 0
        self.supersteps = 0
        self.delay_ms = 0.0
        self._lock = threading.Lock()

    def record(self, payload_bytes: int) -> None:
        with self._lock:
            self.messages += 1
            self.bytes += payload_bytes + ENVELOPE_BYTES

    def bump_superstep(self) -> None:
        with self._lock:
            self.supersteps += 1

    def add_delay(self, delay_ms: float) -> None:
        with self._lock:
            self.delay_ms += delay_ms

    def snapshot(self) -> dict:
        return {
            "messages": self.messages,
            "bytes": self.bytes,
            "supersteps": self.supersteps,
            "delay_ms": round(self.delay_ms, 3),
        }

    def __repr__(self) -> str:
        return (
            f"CommStats(messages={self.messages}, bytes={self.bytes}, "
            f"supersteps={self.supersteps})"
        )


def _payload_nbytes(payload) -> int:
    if payload is None:
        return 0
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, (tuple, list)):
        return sum(_payload_nbytes(p) for p in payload)
    if isinstance(payload, dict):
        return sum(_payload_nbytes(v) for v in payload.values())
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    return 8  # scalar


class Communicator:
    """All-to-all exchange between *n* workers with cost accounting."""

    def __init__(
        self,
        num_workers: int,
        placement: Optional[Placement] = None,
        injector: Optional[FaultInjector] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.num_workers = num_workers
        self.placement = placement
        self.injector = injector
        self.stats = CommStats()
        #: optional live registry; every exchange folds its deltas in
        self.metrics = metrics

    def _record_metrics(self, messages: int, nbytes: int) -> None:
        if self.metrics is None:
            return
        self.metrics.counter(
            "graql_comm_supersteps_total", "communicator barriers"
        ).inc()
        if messages:
            self.metrics.counter(
                "graql_comm_messages_total", "remote message envelopes"
            ).inc(messages)
        if nbytes:
            self.metrics.counter(
                "graql_comm_bytes_total", "payload+envelope bytes shipped"
            ).inc(nbytes)
            self.metrics.histogram(
                "graql_comm_exchange_bytes",
                "bytes shipped per exchange",
                buckets=SIZE_BUCKETS,
            ).observe(float(nbytes))

    # ------------------------------------------------------------------
    def _serving(self, partition: int) -> int:
        """Physical worker serving a logical partition (identity w/o placement)."""
        if self.placement is None:
            return partition
        return self.placement.serving(partition)

    def alltoall(self, outboxes: Sequence[Sequence[object]]) -> list[list[object]]:
        """Route ``outboxes[src][dst]`` to ``inboxes[dst][src]``.

        Indices are *logical partitions*; with a placement attached they
        are mapped to the physical workers currently serving them.
        Deliveries between partitions on the same physical worker are
        free — the data already lives in that worker's memory; remote
        deliveries are accounted (payload + envelope, even when empty).

        Fail-stop kills due at this barrier raise a retryable
        :class:`WorkerFailed` before any routing; dropped/corrupted
        messages raise :class:`CommFailure` after the exchange has been
        fully accounted.
        """
        n = self.num_workers
        assert len(outboxes) == n and all(len(o) == n for o in outboxes)
        msgs0, bytes0 = self.stats.messages, self.stats.bytes
        if self.injector is not None:
            live = (
                self.placement.live if self.placement is not None else range(n)
            )
            victim = self.injector.poll_kill(self.stats.supersteps, live)
            if victim is not None:
                self.stats.bump_superstep()
                raise WorkerFailed(
                    f"worker {victim} fail-stopped at superstep "
                    f"{self.stats.supersteps - 1}",
                    worker=victim,
                )
        # physical route of every partition; raises fatal WorkerFailed if
        # any partition has no live replica left (its DRAM slice is gone)
        phys = [self._serving(p) for p in range(n)]
        inboxes: list[list[object]] = [[None] * n for _ in range(n)]
        lost = 0
        for src in range(n):
            for dst in range(n):
                payload = outboxes[src][dst]
                if payload is None:
                    continue
                if phys[src] == phys[dst]:
                    inboxes[dst][src] = payload
                    continue
                delivered = True
                if self.injector is not None:
                    fate, delay = self.injector.message_fate(phys[src], phys[dst])
                    if fate in (DROP, CORRUPT):
                        delivered = False
                        lost += 1
                    elif delay:
                        self.stats.add_delay(delay)
                    assert fate in (DELIVER, DROP, CORRUPT)
                # the attempt's traffic is real even when it fails
                self.stats.record(_payload_nbytes(payload))
                if delivered:
                    inboxes[dst][src] = payload
        self.stats.bump_superstep()
        self._record_metrics(
            self.stats.messages - msgs0, self.stats.bytes - bytes0
        )
        if lost:
            raise CommFailure(
                f"{lost} message(s) lost or corrupted at superstep "
                f"{self.stats.supersteps - 1}; superstep must be retried"
            )
        return inboxes

    def broadcast(self, root: int, payload: object) -> None:
        """Account a broadcast from *root* to every other worker."""
        msgs0, bytes0 = self.stats.messages, self.stats.bytes
        size = _payload_nbytes(payload)
        for dst in range(self.num_workers):
            if dst != root:
                self.stats.record(size)
        self.stats.bump_superstep()
        self._record_metrics(
            self.stats.messages - msgs0, self.stats.bytes - bytes0
        )

    def gather(self, payloads: Sequence[object], root: int = 0) -> list[object]:
        """Account a gather of per-worker payloads to *root*."""
        msgs0, bytes0 = self.stats.messages, self.stats.bytes
        for src, p in enumerate(payloads):
            if src != root and p is not None:
                self.stats.record(_payload_nbytes(p))
        self.stats.bump_superstep()
        self._record_metrics(
            self.stats.messages - msgs0, self.stats.bytes - bytes0
        )
        return list(payloads)

    def reset(self) -> None:
        self.stats = CommStats()
