"""Explicit message-passing layer with byte accounting.

Models the mpi4py-style alltoall exchange the GEMS backend performs each
superstep: every worker contributes one payload per destination, the
communicator "routes" them (a deterministic in-process shuffle), and the
per-message byte volume is tallied so benchmarks can report communication
cost alongside wall-clock time.

Payloads are NumPy arrays (or tuples of arrays); their ``nbytes`` plus a
fixed per-message envelope is the accounted size — the same first-order
cost model MPI messages have (size + latency envelope).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

#: accounted fixed cost per message (header/latency envelope), in bytes
ENVELOPE_BYTES = 64


class CommStats:
    """Running communication counters."""

    def __init__(self) -> None:
        self.messages = 0
        self.bytes = 0
        self.supersteps = 0

    def record(self, payload_bytes: int) -> None:
        self.messages += 1
        self.bytes += payload_bytes + ENVELOPE_BYTES

    def snapshot(self) -> dict:
        return {
            "messages": self.messages,
            "bytes": self.bytes,
            "supersteps": self.supersteps,
        }

    def __repr__(self) -> str:
        return (
            f"CommStats(messages={self.messages}, bytes={self.bytes}, "
            f"supersteps={self.supersteps})"
        )


def _payload_nbytes(payload) -> int:
    if payload is None:
        return 0
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, (tuple, list)):
        return sum(_payload_nbytes(p) for p in payload)
    if isinstance(payload, dict):
        return sum(_payload_nbytes(v) for v in payload.values())
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    return 8  # scalar


class Communicator:
    """All-to-all exchange between *n* workers with cost accounting."""

    def __init__(self, num_workers: int) -> None:
        self.num_workers = num_workers
        self.stats = CommStats()

    def alltoall(self, outboxes: Sequence[Sequence[object]]) -> list[list[object]]:
        """Route ``outboxes[src][dst]`` to ``inboxes[dst][src]``.

        Local deliveries (src == dst) are free — data already lives in the
        worker's memory; remote deliveries are accounted.
        """
        n = self.num_workers
        assert len(outboxes) == n and all(len(o) == n for o in outboxes)
        inboxes: list[list[object]] = [[None] * n for _ in range(n)]
        for src in range(n):
            for dst in range(n):
                payload = outboxes[src][dst]
                inboxes[dst][src] = payload
                if src != dst and payload is not None and _payload_nbytes(payload) > 0:
                    self.stats.record(_payload_nbytes(payload))
        self.stats.supersteps += 1
        return inboxes

    def broadcast(self, root: int, payload: object) -> None:
        """Account a broadcast from *root* to every other worker."""
        size = _payload_nbytes(payload)
        for dst in range(self.num_workers):
            if dst != root:
                self.stats.record(size)
        self.stats.supersteps += 1

    def gather(self, payloads: Sequence[object], root: int = 0) -> list[object]:
        """Account a gather of per-worker payloads to *root*."""
        for src, p in enumerate(payloads):
            if src != root and _payload_nbytes(p) > 0:
                self.stats.record(_payload_nbytes(p))
        self.stats.supersteps += 1
        return list(payloads)

    def reset(self) -> None:
        self.stats = CommStats()
