"""The plan/statement cache.

Repeated dashboard-style queries pay the front-end pipeline (parse ->
substitute -> typecheck -> plan resolution) on every submission even
though nothing about them changed.  The cache keeps the *resolution* —
the substituted statement plus its
:class:`~repro.graql.typecheck.CheckedGraphSelect` — keyed on:

* the canonical script text (whitespace-collapsed, so formatting
  differences don't defeat the cache),
* the parameter signature (name/value pairs — substitution bakes values
  into the statement, so different values are different plans),
* the catalog epoch it was checked against.

The epoch in the key is the invalidation mechanism: DDL and ingest bump
:attr:`~repro.catalog.Catalog.epoch`, so every entry compiled before the
change misses from then on and ages out of the LRU.  Only pure-read
programs (no DDL/ingest/``into``) are cached — anything with effects
must re-execute its effects anyway.
"""

from __future__ import annotations

import re
import threading
from collections import OrderedDict
from typing import Any, Mapping, Optional

from repro.obs.metrics import MetricsRegistry

_WS = re.compile(r"\s+")

#: cache key: (canonical script, params signature, catalog epoch)
CacheKey = "tuple[str, tuple, int]"


def canonical_script(source: str) -> str:
    """Collapse insignificant whitespace so reformatted scripts share a key.

    GraQL has no significant whitespace outside quoted strings; quoted
    strings are left intact by splitting on them first.
    """
    parts = re.split(r"('(?:[^'\\]|\\.)*')", source)
    out = []
    for i, part in enumerate(parts):
        if i % 2:  # quoted string: verbatim
            out.append(part)
        else:
            out.append(_WS.sub(" ", part))
    return "".join(out).strip()


def params_signature(params: Optional[Mapping[str, Any]]) -> tuple:
    """A hashable, order-insensitive signature of the parameter binding."""
    if not params:
        return ()
    return tuple(sorted(params.items()))


class CacheEntry:
    """One cached program resolution."""

    __slots__ = ("checked", "epoch")

    def __init__(self, checked: list, epoch: int) -> None:
        #: per-statement resolution, ready for
        #: :func:`repro.query.executor.execute_checked`
        self.checked = checked
        self.epoch = epoch


class PlanCache:
    """Thread-safe LRU over compiled statement resolutions."""

    def __init__(
        self,
        capacity: int = 128,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"cache capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.metrics = metrics
        self._lock = threading.Lock()
        self._entries: "OrderedDict[tuple, CacheEntry]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def key(
        self, source: str, params: Optional[Mapping[str, Any]], epoch: int
    ) -> tuple:
        return (canonical_script(source), params_signature(params), epoch)

    def lookup(self, key: tuple) -> Optional[CacheEntry]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                self._count("misses")
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            self._count("hits")
            return entry

    def store(self, key: tuple, checked: list) -> None:
        with self._lock:
            self._entries[key] = CacheEntry(checked, key[2])
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def invalidate(self) -> None:
        """Drop everything (DDL/ingest already invalidates via the epoch
        key; this additionally frees the memory of the stale entries)."""
        with self._lock:
            self._entries.clear()

    def drop_stale(self, current_epoch: int) -> int:
        """Evict entries checked against an older catalog epoch."""
        with self._lock:
            stale = [k for k, e in self._entries.items() if e.epoch != current_epoch]
            for k in stale:
                del self._entries[k]
            return len(stale)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def _count(self, which: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(
                f"graql_plan_cache_{which}_total", f"plan cache {which}"
            ).inc()

    def __repr__(self) -> str:
        return (
            f"PlanCache(entries={len(self._entries)}, hits={self.hits}, "
            f"misses={self.misses})"
        )
