"""The concurrent serving layer (docs/API.md).

The paper's GEMS server is *shared*: many analysts submit scripts against
one catalog + backend.  This package provides the pieces that make that
safe and fast in-process:

* :func:`connect` / :class:`Connection` / :class:`Cursor` — the client
  API.  ``prepare()`` returns a :class:`PreparedStatement` that parses,
  type-checks and IR-encodes a script once and binds parameters per
  execution; cursors stream result rows in batches instead of
  materializing them eagerly.  :func:`connect` is transport-agnostic:
  a ``graql://host:port`` URL dials a :class:`~repro.net.GraqlServer`
  over TCP, a filesystem path opens a durable store, and a
  :class:`~repro.engine.session.Database` / engine ``Server`` wraps
  in-process — all returning the same :class:`Connection` ABC.
* :class:`ServingEngine` — the shared-server concurrency core: a
  writer-preferring reader-writer catalog lock (selects run in
  parallel, DDL/ingest serialize), a ``ThreadPoolExecutor`` worker
  pool, and an admission controller with a bounded queue and per-user
  in-flight limits (:class:`~repro.errors.ServerBusy` on overload).
* :class:`PlanCache` — statement cache keyed on (canonical script,
  parameter signature, catalog epoch); DDL/ingest bump the epoch, so
  stale plans can never execute.
"""

from repro.serve.admission import AdmissionController
from repro.serve.cache import PlanCache, canonical_script
from repro.serve.connection import (
    BasePreparedStatement,
    Connection,
    Cursor,
    CursorExec,
    DEFAULT_BATCH_ROWS,
    LocalConnection,
    PreparedStatement,
    connect,
)
from repro.serve.engine import ServingEngine, statement_is_write
from repro.serve.locks import RWLock

__all__ = [
    "connect",
    "Connection",
    "LocalConnection",
    "Cursor",
    "CursorExec",
    "PreparedStatement",
    "BasePreparedStatement",
    "DEFAULT_BATCH_ROWS",
    "ServingEngine",
    "AdmissionController",
    "PlanCache",
    "RWLock",
    "canonical_script",
    "statement_is_write",
]
