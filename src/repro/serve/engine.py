"""The shared-server execution core.

One :class:`ServingEngine` sits between every client connection and the
server's catalog + backend, and enforces the concurrency contract:

* **Admission** — a bounded number of submissions may be in flight
  (running + queued); the rest are rejected with
  :class:`~repro.errors.ServerBusy` before consuming any resources.
* **Scheduling** — synchronous submissions execute on the caller's
  thread (clients bring their own concurrency); asynchronous ones
  (:meth:`submit`, :meth:`submit_work`) run on a lazily-created
  ``ThreadPoolExecutor`` worker pool and return futures.  Both paths
  pass the same admission gate, so total in-flight work is bounded
  either way.
* **Isolation** — a writer-preferring :class:`~repro.serve.locks.RWLock`
  over the catalog+backend: scripts containing only reads (selects
  without ``into``) execute concurrently under the read lock; anything
  with effects (DDL, ingest, ``into`` results) holds the write lock
  exclusively.  Catalog epochs make the boundary observable: a reader
  sees either the catalog from before a concurrent DDL or after it,
  never a torn mix.
* **Caching** — pure-read submissions consult the
  :class:`~repro.serve.cache.PlanCache`; a hit skips the whole front-end
  pipeline and executes the cached resolution directly
  (:func:`repro.query.executor.execute_checked`), marked ``cache: hit``
  in the profile.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Callable, Mapping, Optional

from repro.graql.ast import (
    CreateEdge,
    CreateIndex,
    CreateTable,
    CreateVertex,
    DropIndex,
    GraphSelect,
    Ingest,
    Script,
    Statement,
    TableSelect,
)
from repro.errors import ClosedError, NotPrimary
from repro.graql.parser import parse_script
from repro.obs.options import QueryOptions, resolve_options
from repro.obs.profile import record_profile_metrics
from repro.query.executor import StatementResult, execute_checked
from repro.serve.admission import AdmissionController
from repro.serve.cache import PlanCache
from repro.serve.locks import RWLock

#: defaults for the serving layer; overridable per Server via
#: ``serving_opts``
DEFAULT_MAX_WORKERS = 8
DEFAULT_MAX_QUEUE = 32
DEFAULT_CACHE_CAPACITY = 128

#: a runner performs the transport-specific compile+execute work for a
#: parsed script and returns ``(results, cacheable_resolutions)``;
#: resolutions are ``None`` when the program must not be cached
Runner = Callable[[Script, QueryOptions, float], tuple]


def statement_is_write(stmt: Statement) -> bool:
    """True if *stmt* mutates the database or catalog.

    DDL and ingest obviously; selects ``into`` a table/subgraph also
    register durable result objects, so they serialize with writers.
    """
    if isinstance(
        stmt,
        (CreateTable, CreateVertex, CreateEdge, CreateIndex, DropIndex, Ingest),
    ):
        return True
    return (
        isinstance(stmt, (GraphSelect, TableSelect)) and stmt.into is not None
    )


def script_is_write(script: Script) -> bool:
    return any(statement_is_write(s) for s in script.statements)


class ServingEngine:
    """Admission + worker pool + RW catalog lock + plan cache.

    The engine is transport-agnostic: a *runner* callback does the
    actual compile-and-execute work (the Server's IR pipeline, or the
    in-process Database's parse-and-execute path) while the engine
    wraps it in admission, locking and caching.
    """

    def __init__(
        self,
        catalog,
        backend,
        metrics,
        *,
        max_workers: int = DEFAULT_MAX_WORKERS,
        max_queue: int = DEFAULT_MAX_QUEUE,
        per_user_limit: Optional[int] = None,
        cache_capacity: int = DEFAULT_CACHE_CAPACITY,
    ) -> None:
        self.catalog = catalog
        self.backend = backend
        self.metrics = metrics
        self.max_workers = max_workers
        self.lock = RWLock()
        self.admission = AdmissionController(
            max_in_flight=max_workers + max_queue,
            per_user_limit=per_user_limit,
            metrics=metrics,
        )
        self.cache = PlanCache(capacity=cache_capacity, metrics=metrics)
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_lock = threading.Lock()
        self._closed = False
        #: replica mode (docs/REPLICATION.md): writes are rejected with
        #: :class:`~repro.errors.NotPrimary` carrying the primary's URL
        self.read_only = False
        self.primary_url: Optional[str] = None

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------------
    # Replica mode
    # ------------------------------------------------------------------
    def set_read_only(self, primary_url: Optional[str] = None) -> None:
        """Reject write submissions from now on (streaming replica).

        The replication applier bypasses this by taking ``self.lock``
        directly — only *client* writes are fenced."""
        self._check_open()
        self.read_only = True
        self.primary_url = primary_url

    def set_writable(self) -> None:
        """Lift replica mode (promotion)."""
        self._check_open()
        self.read_only = False
        self.primary_url = None

    def _reject_write(self) -> None:
        raise NotPrimary(
            "this node is a read-only replica; retry the write on the primary",
            primary=self.primary_url,
        )

    def _check_open(self) -> None:
        if self._closed:
            raise ClosedError(
                "serving engine is closed; no further statements accepted"
            )

    @property
    def pool(self) -> ThreadPoolExecutor:
        """The worker pool, created on first asynchronous submission
        (keeps short-lived in-process databases from spawning threads).

        Raises :class:`~repro.errors.ClosedError` once the engine is
        closed — recreating the pool after :meth:`close` drained it
        would leak a zombie executor no one shuts down.
        """
        self._check_open()
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix="graql-serve",
                )
            return self._pool

    # ------------------------------------------------------------------
    # Script submissions
    # ------------------------------------------------------------------
    def run(
        self,
        user: str,
        source: str,
        params: Optional[Mapping[str, Any]],
        options: Optional[QueryOptions],
        runner: Runner,
    ) -> list[StatementResult]:
        """Admit and execute one script submission on this thread."""
        self._check_open()
        ticket = self.admission.admit(user)
        try:
            return self._process(source, params, options, runner)
        finally:
            self.admission.release(ticket)

    def submit(
        self,
        user: str,
        source: str,
        params: Optional[Mapping[str, Any]],
        options: Optional[QueryOptions],
        runner: Runner,
    ) -> "Future[list[StatementResult]]":
        """Asynchronous :meth:`run`: admit now, execute on the pool."""
        self._check_open()
        ticket = self.admission.admit(user)

        def job() -> list[StatementResult]:
            try:
                return self._process(source, params, options, runner)
            finally:
                self.admission.release(ticket)

        try:
            return self.pool.submit(job)
        except BaseException:
            self.admission.release(ticket)
            raise

    def _process(
        self,
        source: str,
        params: Optional[Mapping[str, Any]],
        options: Optional[QueryOptions],
        runner: Runner,
    ) -> list[StatementResult]:
        opts = resolve_options(options)
        t0 = time.perf_counter()
        script = parse_script(source)  # pure; classification needs the AST
        parse_ms = (time.perf_counter() - t0) * 1000.0
        if script_is_write(script):
            if self.read_only:
                self._reject_write()
            with self.lock.write_locked():
                results, _ = runner(script, opts, parse_ms)
            # effects bumped the catalog epoch; old entries are
            # unreachable by key — free their memory too
            self.cache.invalidate()
            return results
        with self.lock.read_locked():
            key = self.cache.key(source, params, self.catalog.epoch)
            entry = self.cache.lookup(key)
            if entry is not None:
                return self._execute_cached(entry, opts, parse_ms)
            results, resolutions = runner(script, opts, parse_ms)
            if resolutions is not None:
                self.cache.store(key, resolutions)
            return results

    def _execute_cached(
        self, entry, opts: QueryOptions, parse_ms: float
    ) -> list[StatementResult]:
        results = []
        for checked in entry.checked:
            result = execute_checked(self.backend, self.catalog, checked, opts)
            if result.profile is not None:
                # the cache lookup replaced the whole front-end pipeline;
                # the parse needed for classification is all that remains
                result.profile.cache_hit = True
                result.profile.stages.insert(0, ("cache", parse_ms))
                record_profile_metrics(self.metrics, result.profile)
                self.metrics.counter(
                    "graql_statements_cached_total",
                    "statements answered from the plan cache",
                ).inc()
            results.append(result)
        return results

    # ------------------------------------------------------------------
    # Pre-classified work (prepared statements, direct ingest)
    # ------------------------------------------------------------------
    def run_work(self, user: str, write: bool, fn: Callable[[], Any]) -> Any:
        """Admit and run *fn* under the read or write lock, this thread."""
        self._check_open()
        ticket = self.admission.admit(user)
        try:
            return self._locked(write, fn)
        finally:
            self.admission.release(ticket)

    def submit_work(
        self, user: str, write: bool, fn: Callable[[], Any]
    ) -> "Future[Any]":
        self._check_open()
        ticket = self.admission.admit(user)

        def job() -> Any:
            try:
                return self._locked(write, fn)
            finally:
                self.admission.release(ticket)

        try:
            return self.pool.submit(job)
        except BaseException:
            self.admission.release(ticket)
            raise

    def _locked(self, write: bool, fn: Callable[[], Any]) -> Any:
        if write:
            if self.read_only:
                self._reject_write()
            with self.lock.write_locked():
                out = fn()
            self.cache.invalidate()
            return out
        with self.lock.read_locked():
            return fn()

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop accepting submissions and drain the worker pool.

        In-flight work completes; afterwards every ``run``/``submit``/
        ``run_work``/``submit_work`` raises
        :class:`~repro.errors.ClosedError` instead of deadlocking on a
        shut-down pool.  Idempotent.
        """
        self._closed = True
        # swap the pool out under the lock, drain it outside: shutdown
        # blocks on in-flight work, and nothing that long may run under
        # _pool_lock (a concurrent pool-property access would stall
        # behind the whole drain)
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __repr__(self) -> str:
        return f"ServingEngine({self.admission!r}, {self.cache!r})"
