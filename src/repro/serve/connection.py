"""The client API: connections, cursors, prepared statements.

One driver-style surface, three transports (docs/API.md, docs/NETWORK.md)::

    from repro import connect

    conn = connect(server)                    # in-process, shared engine
    conn = connect("/path/to/shop.db")        # open a durable store
    conn = connect("graql://127.0.0.1:7687")  # dial a GraqlServer over TCP

    with conn.cursor() as cur:
        cur.execute("select name from People where age > %MinAge%",
                    params={"MinAge": 30})
        for row in cur:                 # streamed in batches
            print(row.name)

    ps = conn.prepare("select name from People where age > %MinAge%")
    ps.execute({"MinAge": 30})          # parse/typecheck/IR paid once

Every form returns the same :class:`Connection` ABC; cursors, prepared
statements and :class:`~repro.storage.table.Row` behave identically —
the only observable difference is where the statements execute.

In-process, two transports exist:

* ``"ir"`` (the default for servers) — the paper's front-end pipeline:
  access control, static analysis, binary IR shipped to the backend,
  ``compile_ir``/``decode_ir`` stages in every profile.
* ``"local"`` — the in-process fast path used by
  :class:`~repro.engine.session.Database`: parse + per-statement
  typecheck/execute, no IR round-trip.

Both run through the shared :class:`~repro.serve.engine.ServingEngine`
(admission control, reader-writer catalog lock, plan cache).  The
network transport (:class:`repro.net.RemoteConnection`) ships the same
requests over a checksummed binary wire protocol to a
:class:`repro.net.GraqlServer`, which runs them through the identical
engine on the other side of the socket.
"""

from __future__ import annotations

import abc
import time
from typing import Any, Callable, Iterator, Mapping, Optional

from repro.errors import ClosedError, TypeCheckError
from repro.graql.ast import Script
from repro.graql.ir import decode_statement, encode_statement
from repro.graql.params import substitute_statement, unbound_params
from repro.graql.parser import parse_script
from repro.graql.typecheck import check_statement
from repro.obs.options import QueryOptions
from repro.obs.profile import record_profile_metrics
from repro.query.executor import (
    StatementKind,
    StatementResult,
    execute_checked,
    execute_statement,
)
from repro.serve.engine import script_is_write
from repro.storage.expr import deferred_params
from repro.storage.table import Row, Table

TRANSPORT_IR = "ir"
TRANSPORT_LOCAL = "local"

#: the one batch-size constant the whole driver shares: the default
#: ``Cursor.arraysize`` (``fetchmany`` size and local row-production
#: granularity) *and* the network server's result-stream batch size —
#: a remote cursor's batches line up with a local cursor's by
#: construction (docs/NETWORK.md).
DEFAULT_BATCH_ROWS = 1024

#: scheme prefix that makes :func:`connect` dial TCP
URL_SCHEME = "graql://"


def connect(target: Any = None, user: str = "admin", *,
            transport: Optional[str] = None, **kwargs: Any) -> "Connection":
    """Open a :class:`Connection` onto *target*, whatever it is.

    * ``connect("graql://host:port")`` — dial a running
      :class:`~repro.net.GraqlServer` over TCP and return a
      :class:`~repro.net.RemoteConnection`.  Extra kwargs
      (``connect_timeout``, ``request_timeout``, ``batch_rows``) go to
      the remote connection.
    * ``connect("/path/to.db")`` — open (creating/recovering if needed)
      the durable store at that path and return an in-process
      connection that **owns** the database: closing the connection
      closes the store and flushes its WAL.  Extra kwargs go to
      :meth:`~repro.engine.session.Database.open` (``fsync``, ...).
    * ``connect(db)`` — a new connection onto a
      :class:`~repro.engine.session.Database`'s shared engine.
    * ``connect(server)`` — a new connection onto a shared
      :class:`~repro.engine.server.Server` (the historical form).

    ``transport`` selects the in-process pipeline (``"ir"`` runs the
    paper's front-end IR round-trip, ``"local"`` skips it); the default
    is ``"ir"`` for servers and ``"local"`` for databases.  It is
    ignored for TCP targets — the wire *is* the transport.
    """
    if isinstance(target, str):
        if target.startswith(URL_SCHEME):
            from repro.net.client import RemoteConnection

            return RemoteConnection(target, user=user, **kwargs)
        from repro.engine.session import Database

        db = Database.open(target, **kwargs)
        return LocalConnection(
            db.server, user, transport=transport or TRANSPORT_LOCAL, owned_db=db
        )
    if kwargs:
        raise TypeError(
            f"unexpected keyword arguments for an in-process connection: "
            f"{', '.join(sorted(kwargs))}"
        )
    from repro.engine.session import Database

    if isinstance(target, Database):
        return LocalConnection(
            target.server, user, transport=transport or TRANSPORT_LOCAL
        )
    if target is None:
        raise TypeError(
            "connect() needs a target: a graql:// URL, a database path, "
            "a Database, or a Server"
        )
    return LocalConnection(target, user, transport=transport or TRANSPORT_IR)


class CursorExec:
    """What one execution hands a :class:`Cursor` to stream from.

    ``batches`` yields lists of :class:`~repro.storage.table.Row`;
    ``table`` is the streamed result's :class:`Table` — present
    immediately for in-process execution, patched in by the network
    client once the stream has fully drained.  ``finish`` (optional)
    is called by :meth:`Cursor.close` to release transport resources
    (a remote cursor drains its pending frames so the connection stays
    usable).
    """

    __slots__ = ("results", "table", "rowcount", "description", "batches", "finish")

    def __init__(
        self,
        results: list[StatementResult],
        table: Optional[Table],
        rowcount: int,
        description: Optional[list[tuple]],
        batches: Optional[Iterator[list[Row]]],
        finish: Optional[Callable[[], None]] = None,
    ) -> None:
        self.results = results
        self.table = table
        self.rowcount = rowcount
        self.description = description
        self.batches = batches
        self.finish = finish

    @classmethod
    def from_results(
        cls, results: list[StatementResult], batch_size: int
    ) -> "CursorExec":
        """Stream the last table result of an in-process execution."""
        for r in reversed(results):
            if r.kind == StatementKind.TABLE and r.table is not None:
                return cls(
                    results,
                    r.table,
                    r.table.num_rows,
                    [(c.name, c.dtype.ddl()) for c in r.table.schema],
                    r.table.iter_batches(batch_size),
                )
        return cls(results, None, -1, None, None)


class Connection(abc.ABC):
    """A client's handle on a GraQL engine — local or remote.

    The ABC pins the driver surface every transport implements:
    :meth:`execute`, :meth:`prepare`, :meth:`cursor`, idempotent
    :meth:`close`, and context-manager use.  Concrete transports:
    :class:`LocalConnection` (in-process) and
    :class:`~repro.net.RemoteConnection` (TCP).
    """

    user: str

    def __init__(self, user: str) -> None:
        self.user = user
        self._closed = False

    # ------------------------------------------------------------------
    # Execution surface
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def execute(
        self,
        source: str,
        params: Optional[Mapping[str, Any]] = None,
        options: Optional[QueryOptions] = None,
        timeout_s: Optional[float] = None,
    ) -> list[StatementResult]:
        """Execute a GraQL script; one :class:`StatementResult` per
        statement, in order."""

    @abc.abstractmethod
    def prepare(self, source: str) -> "BasePreparedStatement":
        """Parse/typecheck/compile *source* once; bind values per
        execution."""

    def cursor(self, batch_size: int = DEFAULT_BATCH_ROWS) -> "Cursor":
        self._check_open()
        return Cursor(self, batch_size=batch_size)

    def _cursor_run(
        self,
        source: str,
        params: Optional[Mapping[str, Any]],
        options: Optional[QueryOptions],
        batch_size: int,
    ) -> CursorExec:
        """Execute for a cursor.  The default materializes via
        :meth:`execute`; the network transport overrides this to stream
        result batches straight off the socket."""
        return CursorExec.from_results(
            self.execute(source, params, options), batch_size
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the connection.  Idempotent on every transport."""
        if self._closed:
            return
        self._closed = True
        self._do_close()

    def _do_close(self) -> None:
        """Transport-specific teardown; runs at most once."""

    @property
    def closed(self) -> bool:
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise ClosedError("connection is closed")

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class LocalConnection(Connection):
    """An in-process handle on a shared server."""

    def __init__(
        self,
        server,
        user: str,
        transport: str = TRANSPORT_IR,
        *,
        owned_db=None,
    ) -> None:
        if transport not in (TRANSPORT_IR, TRANSPORT_LOCAL):
            raise ValueError(f"unknown transport {transport!r}")
        # surface unknown users at connect time, not first query
        server._require(user, "reader")
        super().__init__(user)
        self.server = server
        self.transport = transport
        #: a Database this connection opened (connect(path)) and must
        #: close — None when the engine is shared with other owners
        self._owned_db = owned_db

    # ------------------------------------------------------------------
    @property
    def engine(self):
        return self.server.serving

    @property
    def catalog(self):
        return self.server.catalog

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(
        self,
        source: str,
        params: Optional[Mapping[str, Any]] = None,
        options: Optional[QueryOptions] = None,
        timeout_s: Optional[float] = None,
    ) -> list[StatementResult]:
        self._check_open()
        if self.transport == TRANSPORT_IR:
            return self.server.submit(
                self.user, source, params, timeout_s=timeout_s, options=options
            )
        return self.engine.run(
            self.user, source, params, options, self._local_runner(params)
        )

    def prepare(self, source: str) -> "PreparedStatement":
        """Parse, access-check, typecheck and IR-encode *source* once.

        Unbound ``%Param%`` placeholders are allowed (they typecheck as
        the deferred wildcard type); each :meth:`PreparedStatement.execute`
        binds a fresh set of values.
        """
        self._check_open()
        return PreparedStatement(self, source)

    # ------------------------------------------------------------------
    # Local transport
    # ------------------------------------------------------------------
    def _local_runner(self, params: Optional[Mapping[str, Any]]):
        server = self.server

        def run(script: Script, opts: QueryOptions, parse_ms: float) -> tuple:
            results: list[StatementResult] = []
            resolutions: list = []
            for i, stmt in enumerate(script.statements):
                sub = stmt
                sub_ms = chk_ms = None
                if params:
                    t0 = time.perf_counter()
                    sub = substitute_statement(stmt, params)
                    sub_ms = (time.perf_counter() - t0) * 1000.0
                t0 = time.perf_counter()
                checked = check_statement(sub, server.catalog)
                chk_ms = (time.perf_counter() - t0) * 1000.0
                r = execute_checked(server.backend, server.catalog, checked, opts)
                if r.profile is not None:
                    # reproduce execute_statement's stage order:
                    # [parse] [substitute] typecheck plan execute ...
                    r.profile.stages.insert(0, ("typecheck", chk_ms))
                    if sub_ms is not None:
                        r.profile.stages.insert(0, ("substitute", sub_ms))
                    if i == 0:
                        # script-level parse belongs to the first statement
                        r.profile.stages.insert(0, ("parse", parse_ms))
                    record_profile_metrics(server.metrics, r.profile)
                resolutions.append(checked)
                results.append(r)
            return results, resolutions

        return run

    # ------------------------------------------------------------------
    def _do_close(self) -> None:
        if self._owned_db is not None:
            self._owned_db.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"LocalConnection(user={self.user!r}, transport={self.transport}, {state})"


class BasePreparedStatement(abc.ABC):
    """A statement compiled once, executed many times with fresh bindings.

    The ABC is the cross-transport contract: ``param_names`` lists the
    ``%Param%`` placeholders that must be bound, :meth:`execute` runs
    with one binding, :meth:`cursor` streams the result.  Locally the
    compiled form lives in this process; remotely it lives in the
    server's session and is addressed by id — either way a missing
    parameter raises :class:`~repro.errors.TypeCheckError` before
    anything executes.
    """

    connection: Connection
    source: str
    #: parameter names the script needs bound at execution
    param_names: tuple

    def _require_params(self, params: Optional[Mapping[str, Any]]) -> None:
        missing = [p for p in self.param_names if p not in (params or {})]
        if missing:
            raise TypeCheckError(
                f"prepared statement is missing parameters: {', '.join(missing)}"
            )

    @abc.abstractmethod
    def execute(
        self,
        params: Optional[Mapping[str, Any]] = None,
        options: Optional[QueryOptions] = None,
    ) -> list[StatementResult]:
        """Bind *params* and execute; returns one result per statement."""

    def _cursor_exec(
        self,
        params: Optional[Mapping[str, Any]],
        options: Optional[QueryOptions],
        batch_size: int,
    ) -> CursorExec:
        return CursorExec.from_results(self.execute(params, options), batch_size)

    def cursor(
        self,
        params: Optional[Mapping[str, Any]] = None,
        options: Optional[QueryOptions] = None,
        batch_size: int = DEFAULT_BATCH_ROWS,
    ) -> "Cursor":
        """Execute with *params* and return a cursor over the results."""
        cur = Cursor(self.connection, batch_size=batch_size)
        cur._adopt(self._cursor_exec(params, options, batch_size))
        return cur


class PreparedStatement(BasePreparedStatement):
    """A script parsed, access-checked, typechecked and IR-encoded once.

    Execution binds a parameter mapping, substitutes it into the decoded
    statements and runs them — the per-execution cost is substitution +
    the concrete typecheck the executor performs with values in hand
    (which is what validates the binding's types).
    """

    def __init__(self, connection: LocalConnection, source: str) -> None:
        self.connection = connection
        self.source = source
        self.script = parse_script(source)
        self.is_write = script_is_write(self.script)
        server = connection.server
        for stmt in self.script.statements:
            server._check_rights(connection.user, stmt)
        self.param_names = tuple(
            sorted({p for s in self.script.statements for p in unbound_params(s)})
        )

        def check() -> int:
            with deferred_params():
                for stmt in self.script.statements:
                    check_statement(stmt, server.catalog)
            return server.catalog.epoch

        #: catalog epoch the static checks ran against
        self.epoch = connection.engine.run_work(connection.user, False, check)
        #: binary IR per statement (Param nodes encode as-is)
        self.ir: tuple = tuple(
            encode_statement(s) for s in self.script.statements
        )

    @property
    def ir_size(self) -> int:
        return sum(len(b) for b in self.ir)

    def execute(
        self,
        params: Optional[Mapping[str, Any]] = None,
        options: Optional[QueryOptions] = None,
    ) -> list[StatementResult]:
        self.connection._check_open()
        self._require_params(params)
        conn = self.connection
        server = conn.server

        def work() -> list[StatementResult]:
            results = []
            for ir in self.ir:
                stmt = decode_statement(ir)
                r = execute_statement(
                    server.backend, server.catalog, stmt, params, options
                )
                if r.profile is not None:
                    record_profile_metrics(server.metrics, r.profile)
                results.append(r)
            return results

        return conn.engine.run_work(conn.user, self.is_write, work)

    def __repr__(self) -> str:
        return (
            f"PreparedStatement({len(self.script.statements)} stmts, "
            f"params={list(self.param_names)}, ir={self.ir_size}B)"
        )


class Cursor:
    """Streaming consumption of a script's last table result.

    Rows are produced in batches as the consumer advances — ``fetchone``
    / ``fetchmany`` / iteration never materialize the full row list up
    front.  In-process, batches come from
    :meth:`~repro.storage.table.Table.iter_batches`; over TCP they are
    the server's streamed result frames, consumed off the socket on
    demand.  ``results`` exposes every statement's
    :class:`~repro.query.executor.StatementResult` for non-tabular needs
    (DDL messages, subgraphs, profiles).
    """

    def __init__(self, connection: Connection, batch_size: int = DEFAULT_BATCH_ROWS) -> None:
        self.connection = connection
        #: default fetchmany size and row-production batch size
        self.arraysize = batch_size
        self.results: Optional[list[StatementResult]] = None
        self._exec: Optional[CursorExec] = None
        self._batches: Optional[Iterator[list[Row]]] = None
        self._buffer: list[Row] = []
        self._pos = 0

    # ------------------------------------------------------------------
    def execute(
        self,
        source: "str | BasePreparedStatement",
        params: Optional[Mapping[str, Any]] = None,
        options: Optional[QueryOptions] = None,
    ) -> "Cursor":
        """Run a script (or a prepared statement) and point the cursor at
        its last table result.  Returns ``self`` for chaining."""
        if isinstance(source, BasePreparedStatement):
            self._adopt(source._cursor_exec(params, options, self.arraysize))
        else:
            self._adopt(
                self.connection._cursor_run(
                    source, params, options, self.arraysize
                )
            )
        return self

    def _adopt(self, ex: CursorExec) -> None:
        self._exec = ex
        self.results = ex.results
        self._batches = ex.batches
        self._buffer = []
        self._pos = 0

    def _install(self, results: list[StatementResult]) -> None:
        """Point the cursor at already-materialized results (the
        in-process prepared-statement path and tests use this)."""
        self._adopt(CursorExec.from_results(results, self.arraysize))

    # ------------------------------------------------------------------
    # Result-set metadata
    # ------------------------------------------------------------------
    @property
    def description(self) -> Optional[list[tuple]]:
        """Per-column ``(name, type_ddl)`` of the current result set."""
        return self._exec.description if self._exec is not None else None

    @property
    def table(self) -> Optional[Table]:
        """The table the cursor is streaming (None without a table
        result).  A remote cursor's table materializes once its stream
        has fully drained; metadata (:attr:`description`,
        :attr:`rowcount`) is available immediately."""
        return self._exec.table if self._exec is not None else None

    @property
    def rowcount(self) -> int:
        return -1 if self._exec is None else self._exec.rowcount

    # ------------------------------------------------------------------
    # Streaming fetch API
    # ------------------------------------------------------------------
    def fetchone(self) -> Optional[Row]:
        """The next row, or ``None`` when the result set is exhausted."""
        if not self._fill():
            return None
        row = self._buffer[self._pos]
        self._pos += 1
        return row

    def fetchmany(self, size: Optional[int] = None) -> list[Row]:
        """Up to *size* rows (default ``arraysize``); ``[]`` at the end."""
        n = self.arraysize if size is None else size
        out: list[Row] = []
        while len(out) < n:
            if not self._fill():
                break
            take = min(n - len(out), len(self._buffer) - self._pos)
            out.extend(self._buffer[self._pos : self._pos + take])
            self._pos += take
        return out

    def fetchall(self) -> list[Row]:
        out: list[Row] = []
        while True:
            batch = self.fetchmany(self.arraysize)
            if not batch:
                return out
            out.extend(batch)

    def __iter__(self) -> Iterator[Row]:
        while True:
            row = self.fetchone()
            if row is None:
                return
            yield row

    def _fill(self) -> bool:
        """Ensure the buffer has an unread row; False when exhausted."""
        if self._pos < len(self._buffer):
            return True
        if self._batches is None:
            if self.results is None:
                raise ClosedError("no query has been executed on this cursor")
            return False  # script produced no table result
        try:
            self._buffer = next(self._batches)
            self._pos = 0
            return bool(self._buffer)
        except StopIteration:
            self._batches = None
            self._buffer = []
            self._pos = 0
            return False

    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._exec is not None and self._exec.finish is not None:
            self._exec.finish()
        self.results = None
        self._exec = None
        self._batches = None
        self._buffer = []
        self._pos = 0

    def __enter__(self) -> "Cursor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        n = self.rowcount
        return f"Cursor(rows={'?' if n < 0 else n}, arraysize={self.arraysize})"
