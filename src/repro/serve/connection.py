"""The client API: connections, cursors, prepared statements.

The driver-style surface over a :class:`~repro.engine.server.Server`::

    from repro import connect, Server

    server = Server()
    conn = connect(server, user="admin")
    with conn.cursor() as cur:
        cur.execute("select name from People where age > %MinAge%",
                    params={"MinAge": 30})
        for row in cur:                 # streamed in batches
            print(row.name)

    ps = conn.prepare("select name from People where age > %MinAge%")
    ps.execute({"MinAge": 30})          # parse/typecheck/IR paid once

Two transports exist:

* ``"ir"`` (the default for :func:`connect`) — the paper's front-end
  pipeline: access control, static analysis, binary IR shipped to the
  backend, ``compile_ir``/``decode_ir`` stages in every profile.
* ``"local"`` — the in-process fast path used by
  :class:`~repro.engine.session.Database`: parse + per-statement
  typecheck/execute, no IR round-trip, a ``parse`` stage on the first
  statement.

Both run through the shared :class:`~repro.serve.engine.ServingEngine`
(admission control, reader-writer catalog lock, plan cache).
"""

from __future__ import annotations

import time
from typing import Any, Iterator, Mapping, Optional

from repro.errors import ExecutionError, TypeCheckError
from repro.graql.ast import Script
from repro.graql.ir import decode_statement, encode_statement
from repro.graql.params import substitute_statement, unbound_params
from repro.graql.parser import parse_script
from repro.graql.typecheck import check_statement
from repro.obs.options import QueryOptions
from repro.obs.profile import record_profile_metrics
from repro.query.executor import (
    StatementKind,
    StatementResult,
    execute_checked,
    execute_statement,
)
from repro.serve.engine import script_is_write
from repro.storage.expr import deferred_params
from repro.storage.table import Row, Table

TRANSPORT_IR = "ir"
TRANSPORT_LOCAL = "local"


def connect(server, user: str = "admin", *, transport: str = TRANSPORT_IR) -> "Connection":
    """Open a :class:`Connection` to *server* as *user*.

    The server is shared — any number of connections (and threads) may
    be open against it; the serving engine serializes what must be
    serialized and runs the rest concurrently.
    """
    return Connection(server, user, transport=transport)


class Connection:
    """A client's handle on a shared server."""

    def __init__(self, server, user: str, transport: str = TRANSPORT_IR) -> None:
        if transport not in (TRANSPORT_IR, TRANSPORT_LOCAL):
            raise ValueError(f"unknown transport {transport!r}")
        # surface unknown users at connect time, not first query
        server._require(user, "reader")
        self.server = server
        self.user = user
        self.transport = transport
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def engine(self):
        return self.server.serving

    @property
    def catalog(self):
        return self.server.catalog

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(
        self,
        source: str,
        params: Optional[Mapping[str, Any]] = None,
        options: Optional[QueryOptions] = None,
        timeout_s: Optional[float] = None,
    ) -> list[StatementResult]:
        """Execute a GraQL script; one :class:`StatementResult` per
        statement, in order."""
        self._check_open()
        if self.transport == TRANSPORT_IR:
            return self.server.submit(
                self.user, source, params, timeout_s=timeout_s, options=options
            )
        return self.engine.run(
            self.user, source, params, options, self._local_runner(params)
        )

    def cursor(self, batch_size: int = 1024) -> "Cursor":
        self._check_open()
        return Cursor(self, batch_size=batch_size)

    def prepare(self, source: str) -> "PreparedStatement":
        """Parse, access-check, typecheck and IR-encode *source* once.

        Unbound ``%Param%`` placeholders are allowed (they typecheck as
        the deferred wildcard type); each :meth:`PreparedStatement.execute`
        binds a fresh set of values.
        """
        self._check_open()
        return PreparedStatement(self, source)

    # ------------------------------------------------------------------
    # Local transport
    # ------------------------------------------------------------------
    def _local_runner(self, params: Optional[Mapping[str, Any]]):
        server = self.server

        def run(script: Script, opts: QueryOptions, parse_ms: float) -> tuple:
            results: list[StatementResult] = []
            resolutions: list = []
            for i, stmt in enumerate(script.statements):
                sub = stmt
                sub_ms = chk_ms = None
                if params:
                    t0 = time.perf_counter()
                    sub = substitute_statement(stmt, params)
                    sub_ms = (time.perf_counter() - t0) * 1000.0
                t0 = time.perf_counter()
                checked = check_statement(sub, server.catalog)
                chk_ms = (time.perf_counter() - t0) * 1000.0
                r = execute_checked(server.backend, server.catalog, checked, opts)
                if r.profile is not None:
                    # reproduce execute_statement's stage order:
                    # [parse] [substitute] typecheck plan execute ...
                    r.profile.stages.insert(0, ("typecheck", chk_ms))
                    if sub_ms is not None:
                        r.profile.stages.insert(0, ("substitute", sub_ms))
                    if i == 0:
                        # script-level parse belongs to the first statement
                        r.profile.stages.insert(0, ("parse", parse_ms))
                    record_profile_metrics(server.metrics, r.profile)
                resolutions.append(checked)
                results.append(r)
            return results, resolutions

        return run

    # ------------------------------------------------------------------
    def close(self) -> None:
        self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise ExecutionError("connection is closed")

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"Connection(user={self.user!r}, transport={self.transport}, {state})"


class PreparedStatement:
    """A script parsed, access-checked, typechecked and IR-encoded once.

    Execution binds a parameter mapping, substitutes it into the decoded
    statements and runs them — the per-execution cost is substitution +
    the concrete typecheck the executor performs with values in hand
    (which is what validates the binding's types).
    """

    def __init__(self, connection: Connection, source: str) -> None:
        self.connection = connection
        self.source = source
        self.script = parse_script(source)
        self.is_write = script_is_write(self.script)
        server = connection.server
        for stmt in self.script.statements:
            server._check_rights(connection.user, stmt)
        #: parameter names the script needs bound at execution
        self.param_names: tuple = tuple(
            sorted({p for s in self.script.statements for p in unbound_params(s)})
        )

        def check() -> int:
            with deferred_params():
                for stmt in self.script.statements:
                    check_statement(stmt, server.catalog)
            return server.catalog.epoch

        #: catalog epoch the static checks ran against
        self.epoch = connection.engine.run_work(connection.user, False, check)
        #: binary IR per statement (Param nodes encode as-is)
        self.ir: tuple = tuple(
            encode_statement(s) for s in self.script.statements
        )

    @property
    def ir_size(self) -> int:
        return sum(len(b) for b in self.ir)

    def execute(
        self,
        params: Optional[Mapping[str, Any]] = None,
        options: Optional[QueryOptions] = None,
    ) -> list[StatementResult]:
        """Bind *params* and execute; returns one result per statement."""
        self.connection._check_open()
        missing = [p for p in self.param_names if p not in (params or {})]
        if missing:
            raise TypeCheckError(
                f"prepared statement is missing parameters: {', '.join(missing)}"
            )
        conn = self.connection
        server = conn.server

        def work() -> list[StatementResult]:
            results = []
            for ir in self.ir:
                stmt = decode_statement(ir)
                r = execute_statement(
                    server.backend, server.catalog, stmt, params, options
                )
                if r.profile is not None:
                    record_profile_metrics(server.metrics, r.profile)
                results.append(r)
            return results

        return conn.engine.run_work(conn.user, self.is_write, work)

    def cursor(
        self,
        params: Optional[Mapping[str, Any]] = None,
        options: Optional[QueryOptions] = None,
        batch_size: int = 1024,
    ) -> "Cursor":
        """Execute with *params* and return a cursor over the results."""
        cur = Cursor(self.connection, batch_size=batch_size)
        cur._install(self.execute(params, options))
        return cur

    def __repr__(self) -> str:
        return (
            f"PreparedStatement({len(self.script.statements)} stmts, "
            f"params={list(self.param_names)}, ir={self.ir_size}B)"
        )


class Cursor:
    """Streaming consumption of a script's last table result.

    Rows are produced in batches (:meth:`~repro.storage.table.Table.iter_batches`)
    as the consumer advances — ``fetchone`` / ``fetchmany`` / iteration
    never materialize the full row list up front.  ``results`` exposes
    every statement's :class:`~repro.query.executor.StatementResult` for
    non-tabular needs (DDL messages, subgraphs, profiles).
    """

    def __init__(self, connection: Connection, batch_size: int = 1024) -> None:
        self.connection = connection
        #: default fetchmany size and row-production batch size
        self.arraysize = batch_size
        self.results: Optional[list[StatementResult]] = None
        self._table: Optional[Table] = None
        self._batches: Optional[Iterator[list[Row]]] = None
        self._buffer: list[Row] = []
        self._pos = 0

    # ------------------------------------------------------------------
    def execute(
        self,
        source: "str | PreparedStatement",
        params: Optional[Mapping[str, Any]] = None,
        options: Optional[QueryOptions] = None,
    ) -> "Cursor":
        """Run a script (or a prepared statement) and point the cursor at
        its last table result.  Returns ``self`` for chaining."""
        if isinstance(source, PreparedStatement):
            self._install(source.execute(params, options))
        else:
            self._install(self.connection.execute(source, params, options))
        return self

    def _install(self, results: list[StatementResult]) -> None:
        self.results = results
        self._table = None
        self._batches = None
        self._buffer = []
        self._pos = 0
        for r in reversed(results):
            if r.kind == StatementKind.TABLE and r.table is not None:
                self._table = r.table
                self._batches = r.table.iter_batches(self.arraysize)
                break

    # ------------------------------------------------------------------
    # Result-set metadata
    # ------------------------------------------------------------------
    @property
    def description(self) -> Optional[list[tuple]]:
        """Per-column ``(name, type_ddl)`` of the current result set."""
        if self._table is None:
            return None
        return [(c.name, c.dtype.ddl()) for c in self._table.schema]

    @property
    def table(self) -> Optional[Table]:
        """The table the cursor is streaming (None without a table
        result); gives access to the schema for value formatting."""
        return self._table

    @property
    def rowcount(self) -> int:
        return -1 if self._table is None else self._table.num_rows

    # ------------------------------------------------------------------
    # Streaming fetch API
    # ------------------------------------------------------------------
    def fetchone(self) -> Optional[Row]:
        """The next row, or ``None`` when the result set is exhausted."""
        if not self._fill():
            return None
        row = self._buffer[self._pos]
        self._pos += 1
        return row

    def fetchmany(self, size: Optional[int] = None) -> list[Row]:
        """Up to *size* rows (default ``arraysize``); ``[]`` at the end."""
        n = self.arraysize if size is None else size
        out: list[Row] = []
        while len(out) < n:
            if not self._fill():
                break
            take = min(n - len(out), len(self._buffer) - self._pos)
            out.extend(self._buffer[self._pos : self._pos + take])
            self._pos += take
        return out

    def fetchall(self) -> list[Row]:
        out: list[Row] = []
        while True:
            batch = self.fetchmany(self.arraysize)
            if not batch:
                return out
            out.extend(batch)

    def __iter__(self) -> Iterator[Row]:
        while True:
            row = self.fetchone()
            if row is None:
                return
            yield row

    def _fill(self) -> bool:
        """Ensure the buffer has an unread row; False when exhausted."""
        if self._pos < len(self._buffer):
            return True
        if self._batches is None:
            if self.results is None:
                raise ExecutionError("no query has been executed on this cursor")
            return False  # script produced no table result
        try:
            self._buffer = next(self._batches)
            self._pos = 0
            return bool(self._buffer)
        except StopIteration:
            self._batches = None
            self._buffer = []
            self._pos = 0
            return False

    # ------------------------------------------------------------------
    def close(self) -> None:
        self.results = None
        self._table = None
        self._batches = None
        self._buffer = []
        self._pos = 0

    def __enter__(self) -> "Cursor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        n = self.rowcount
        return f"Cursor(rows={'?' if n < 0 else n}, arraysize={self.arraysize})"
