"""Admission control for the shared server.

Load shedding happens *before* work enters the pool: a submission is
admitted only if (a) total in-flight work — running plus queued — is
under ``max_workers + max_queue``, and (b) the submitting user is under
their per-user in-flight limit.  Otherwise :class:`~repro.errors.ServerBusy`
is raised immediately (backpressure the client can retry on), and the
rejection is counted in the metrics registry.

Tickets are explicit so a submission can be admitted on the caller's
thread and released on the worker thread that finishes it.
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.errors import ServerBusy
from repro.obs.metrics import MetricsRegistry


class AdmissionTicket:
    """Proof of admission; hand it back via :meth:`AdmissionController.release`."""

    __slots__ = ("user", "_released")

    def __init__(self, user: str) -> None:
        self.user = user
        self._released = False


class AdmissionController:
    """Bounded-queue + per-user in-flight admission.

    ``max_in_flight`` bounds running + queued submissions server-wide
    (the worker pool runs at most ``max_workers`` of them; the rest wait
    in the pool's queue).  ``per_user_limit`` bounds one user's in-flight
    submissions so a single chatty client cannot monopolize the queue.
    """

    def __init__(
        self,
        max_in_flight: int,
        per_user_limit: Optional[int] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if max_in_flight <= 0:
            raise ValueError(f"max_in_flight must be positive, got {max_in_flight}")
        self.max_in_flight = max_in_flight
        self.per_user_limit = per_user_limit
        self.metrics = metrics
        self._lock = threading.Lock()
        self._in_flight = 0
        self._per_user: dict[str, int] = {}

    # ------------------------------------------------------------------
    def admit(self, user: str) -> AdmissionTicket:
        """Admit one submission or raise :class:`ServerBusy`."""
        with self._lock:
            if self._in_flight >= self.max_in_flight:
                self._count_rejection("queue_full")
                raise ServerBusy(
                    f"server at capacity ({self._in_flight} in flight, "
                    f"limit {self.max_in_flight}); retry later",
                    reason="queue_full",
                )
            held = self._per_user.get(user, 0)
            if self.per_user_limit is not None and held >= self.per_user_limit:
                self._count_rejection("user_limit")
                raise ServerBusy(
                    f"user {user!r} already has {held} submissions in flight "
                    f"(limit {self.per_user_limit}); retry later",
                    reason="user_limit",
                )
            self._in_flight += 1
            self._per_user[user] = held + 1
            if self.metrics is not None:
                self.metrics.gauge(
                    "graql_inflight_submissions",
                    "submissions admitted and not yet finished",
                ).set(self._in_flight)
        return AdmissionTicket(user)

    def release(self, ticket: AdmissionTicket) -> None:
        with self._lock:
            if ticket._released:
                return
            ticket._released = True
            self._in_flight -= 1
            left = self._per_user.get(ticket.user, 1) - 1
            if left <= 0:
                self._per_user.pop(ticket.user, None)
            else:
                self._per_user[ticket.user] = left
            if self.metrics is not None:
                self.metrics.gauge(
                    "graql_inflight_submissions",
                    "submissions admitted and not yet finished",
                ).set(self._in_flight)

    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    def _count_rejection(self, reason: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(
                f"graql_admission_rejections_{reason}_total",
                f"submissions rejected with ServerBusy({reason})",
            ).inc()

    def __repr__(self) -> str:
        return (
            f"AdmissionController(in_flight={self._in_flight}, "
            f"max={self.max_in_flight}, per_user={self.per_user_limit})"
        )
