"""A writer-preferring reader-writer lock.

The serving layer's concurrency contract (docs/API.md): any number of
selects share the catalog+backend concurrently (read side), while DDL
and ingest — which rebuild views, indexes and catalog statistics — hold
the database exclusively (write side).  Writer preference keeps a steady
stream of cheap selects from starving a schema change: once a writer is
waiting, new readers queue behind it.

Reentrancy is deliberately *not* supported — a thread that tries to
upgrade a read hold into a write hold would deadlock against itself.
Rather than letting that happen silently, the lock tracks which threads
hold it and **rejects reentrant acquisition with** :class:`RuntimeError`:
a loud, immediate failure at the nesting site instead of a hung server.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator, Optional


class RWLock:
    """Condition-based shared/exclusive lock, writer-preferring."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0
        # hold tracking for reentrancy rejection: the writer's thread id
        # and the id of every thread with a read hold.  Only successful
        # acquisitions register (a timed-out attempt leaves no trace).
        self._writer_thread: Optional[int] = None
        self._reader_threads: set[int] = set()

    def _reject_reentrant(self, me: int, side: str) -> None:
        if self._writer_thread == me:
            raise RuntimeError(
                f"reentrant RWLock {side} acquisition: this thread already "
                f"holds the write side; nesting would self-deadlock"
            )
        if me in self._reader_threads:
            raise RuntimeError(
                f"reentrant RWLock {side} acquisition: this thread already "
                f"holds a read hold; nesting would self-deadlock under "
                f"writer preference"
            )

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------
    def acquire_read(self, timeout: Optional[float] = None) -> bool:
        me = threading.get_ident()
        with self._cond:
            self._reject_reentrant(me, "read")
            # writer preference: park behind any waiting writer
            if not self._cond.wait_for(
                lambda: not self._writer_active and self._writers_waiting == 0,
                timeout,
            ):
                return False
            self._readers += 1
            self._reader_threads.add(me)
            return True

    def release_read(self) -> None:
        with self._cond:
            assert self._readers > 0, "release_read without a read hold"
            self._readers -= 1
            self._reader_threads.discard(threading.get_ident())
            if self._readers == 0:
                self._cond.notify_all()

    # ------------------------------------------------------------------
    # Write side
    # ------------------------------------------------------------------
    def acquire_write(self, timeout: Optional[float] = None) -> bool:
        me = threading.get_ident()
        with self._cond:
            self._reject_reentrant(me, "write")
            self._writers_waiting += 1
            try:
                if not self._cond.wait_for(
                    lambda: not self._writer_active and self._readers == 0,
                    timeout,
                ):
                    return False
                self._writer_active = True
                self._writer_thread = me
                return True
            finally:
                self._writers_waiting -= 1

    def release_write(self) -> None:
        with self._cond:
            assert self._writer_active, "release_write without the write hold"
            self._writer_active = False
            self._writer_thread = None
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # Context managers
    # ------------------------------------------------------------------
    @contextmanager
    def read_locked(self) -> Iterator[None]:
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    def __repr__(self) -> str:
        return (
            f"RWLock(readers={self._readers}, writer={self._writer_active}, "
            f"waiting_writers={self._writers_waiting})"
        )
