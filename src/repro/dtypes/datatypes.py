"""Data types for GraQL attributes.

The DDL of Appendix A uses four scalar types — ``varchar(n)``, ``integer``,
``float`` and ``date`` — and the paper's design principles require every
attribute to be strongly typed.  A :class:`DataType` instance knows:

* its DDL spelling (``ddl()``),
* the NumPy representation used by the columnar store (``numpy_dtype`` and
  ``kind``),
* how to parse a CSV field into a stored value (``parse``) and render one
  back (``format``),
* which *comparability class* it belongs to, used by static analysis
  (Section III-A) to reject e.g. ``date = 3.14``.

Types are value objects: two ``VarChar(10)`` instances compare equal.
"""

from __future__ import annotations

import re
from typing import Any

import numpy as np

from repro.dtypes.values import (
    BOOL_NULL,
    DATE_NULL,
    INT_NULL,
    format_date,
    parse_date,
)

# Comparability classes (Section III-A static checks).
KIND_STRING = "string"
KIND_NUMERIC = "numeric"
KIND_DATE = "date"
KIND_BOOL = "bool"
#: the wildcard class of an unbound query parameter (prepared-statement
#: typechecking): comparable with every other class, bound to a concrete
#: type when the parameter value arrives at execution
KIND_PARAM = "param"


class DataType:
    """Abstract base for GraQL scalar types."""

    #: comparability class; subclasses override
    kind: str = ""
    #: numpy dtype used for columnar storage
    numpy_dtype: np.dtype = np.dtype(object)
    #: in-band NULL sentinel for this type's storage
    null_value: Any = None

    def ddl(self) -> str:
        """The DDL spelling of this type (e.g. ``varchar(10)``)."""
        raise NotImplementedError

    def parse(self, text: str) -> Any:
        """Parse a CSV field into the stored representation.

        An empty field parses to this type's NULL sentinel.
        Raises ``ValueError`` on malformed input.
        """
        raise NotImplementedError

    def format(self, value: Any) -> str:
        """Render a stored value back to text (inverse of :meth:`parse`)."""
        raise NotImplementedError

    def validate(self, value: Any) -> bool:
        """True if *value* is a legal stored value for this type."""
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.__dict__ == other.__dict__

    def __hash__(self) -> int:
        return hash((type(self).__name__, tuple(sorted(self.__dict__.items()))))

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.ddl()!r})"


class VarChar(DataType):
    """Variable-length string, capped at *length* characters.

    Following common SQL practice, over-long CSV fields are rejected at
    ingest rather than silently truncated; the length is part of the type
    identity (``varchar(10) != varchar(255)``) but does not affect
    comparability.
    """

    kind = KIND_STRING
    numpy_dtype = np.dtype(object)
    null_value = None

    def __init__(self, length: int) -> None:
        if length <= 0:
            raise ValueError(f"varchar length must be positive, got {length}")
        self.length = int(length)

    def ddl(self) -> str:
        return f"varchar({self.length})"

    def parse(self, text: str) -> Any:
        if text == "":
            return None
        if len(text) > self.length:
            raise ValueError(
                f"string of length {len(text)} exceeds varchar({self.length})"
            )
        return text

    def format(self, value: Any) -> str:
        return "" if value is None else str(value)

    def validate(self, value: Any) -> bool:
        return value is None or (isinstance(value, str) and len(value) <= self.length)


class Integer(DataType):
    """64-bit signed integer."""

    kind = KIND_NUMERIC
    numpy_dtype = np.dtype(np.int64)
    null_value = INT_NULL

    def ddl(self) -> str:
        return "integer"

    def parse(self, text: str) -> Any:
        if text == "":
            return INT_NULL
        return int(text)

    def format(self, value: Any) -> str:
        return "" if int(value) == INT_NULL else str(int(value))

    def validate(self, value: Any) -> bool:
        return isinstance(value, (int, np.integer)) and not isinstance(value, bool)


class Float(DataType):
    """64-bit IEEE-754 float; NULL is NaN."""

    kind = KIND_NUMERIC
    numpy_dtype = np.dtype(np.float64)
    null_value = float("nan")

    def ddl(self) -> str:
        return "float"

    def parse(self, text: str) -> Any:
        if text == "":
            return float("nan")
        return float(text)

    def format(self, value: Any) -> str:
        v = float(value)
        return "" if v != v else repr(v)

    def validate(self, value: Any) -> bool:
        return isinstance(value, (float, int, np.floating, np.integer)) and not isinstance(
            value, bool
        )


class Date(DataType):
    """Calendar date, stored as a proleptic Gregorian ordinal (int64)."""

    kind = KIND_DATE
    numpy_dtype = np.dtype(np.int64)
    null_value = DATE_NULL

    def ddl(self) -> str:
        return "date"

    def parse(self, text: str) -> Any:
        if text == "":
            return DATE_NULL
        return parse_date(text)

    def format(self, value: Any) -> str:
        return "" if int(value) == DATE_NULL else format_date(int(value))

    def validate(self, value: Any) -> bool:
        return isinstance(value, (int, np.integer)) and not isinstance(value, bool)


class Boolean(DataType):
    """Boolean stored as int8 (0 / 1, NULL = -1).

    Not in the paper's Appendix-A DDL, but needed internally for derived
    predicate columns and exposed as a convenience extension.
    """

    kind = KIND_BOOL
    numpy_dtype = np.dtype(np.int8)
    null_value = BOOL_NULL

    def ddl(self) -> str:
        return "boolean"

    def parse(self, text: str) -> Any:
        if text == "":
            return BOOL_NULL
        low = text.strip().lower()
        if low in ("true", "t", "1", "yes"):
            return 1
        if low in ("false", "f", "0", "no"):
            return 0
        raise ValueError(f"invalid boolean literal: {text!r}")

    def format(self, value: Any) -> str:
        v = int(value)
        if v == BOOL_NULL:
            return ""
        return "true" if v else "false"

    def validate(self, value: Any) -> bool:
        return value in (0, 1, BOOL_NULL, True, False)


class ParamPlaceholder(DataType):
    """The static type of an unbound ``%Param%`` placeholder.

    Only exists during prepared-statement typechecking
    (:func:`repro.storage.expr.deferred_params`): it unifies with every
    comparability class, deferring the concrete check to execution time
    when the parameter is bound.  Never stored in a column.
    """

    kind = KIND_PARAM
    numpy_dtype = np.dtype(object)
    null_value = None

    def ddl(self) -> str:
        return "param"

    def parse(self, text: str) -> Any:
        raise TypeError("parameter placeholders cannot be stored")

    def format(self, value: Any) -> str:
        raise TypeError("parameter placeholders cannot be stored")

    def validate(self, value: Any) -> bool:
        return False


# Singletons for the parameterless types.
INTEGER = Integer()
FLOAT = Float()
DATE = Date()
BOOLEAN = Boolean()
PARAM = ParamPlaceholder()

_VARCHAR_RE = re.compile(r"^varchar\s*\(\s*(\d+)\s*\)$", re.IGNORECASE)


def parse_type_name(text: str) -> DataType:
    """Parse a DDL type spelling into a :class:`DataType`.

    >>> parse_type_name("varchar(10)")
    VarChar('varchar(10)')
    >>> parse_type_name("integer") is INTEGER
    True
    """
    t = text.strip().lower()
    if t == "integer" or t == "int":
        return INTEGER
    if t == "float" or t == "double":
        return FLOAT
    if t == "date":
        return DATE
    if t == "boolean" or t == "bool":
        return BOOLEAN
    m = _VARCHAR_RE.match(text.strip())
    if m:
        return VarChar(int(m.group(1)))
    raise ValueError(f"unknown type name: {text!r}")


def comparable(a: DataType, b: DataType) -> bool:
    """True if values of types *a* and *b* may be compared (III-A check).

    A :class:`ParamPlaceholder` (deferred prepared-statement parameter)
    compares with anything; the concrete check happens when the
    parameter is bound.
    """
    if a.kind == KIND_PARAM or b.kind == KIND_PARAM:
        return True
    return a.kind == b.kind


def common_type(a: DataType, b: DataType) -> DataType:
    """The wider of two comparable types (used for expression results).

    Numeric widening: integer + float -> float.  Strings widen to the longer
    varchar.  Raises ``ValueError`` for incomparable kinds.
    """
    if not comparable(a, b):
        raise ValueError(f"incomparable types: {a.ddl()} vs {b.ddl()}")
    if a.kind == KIND_PARAM:
        return b
    if b.kind == KIND_PARAM:
        return a
    if a.kind == KIND_NUMERIC:
        if isinstance(a, Float) or isinstance(b, Float):
            return FLOAT
        return INTEGER
    if a.kind == KIND_STRING:
        assert isinstance(a, VarChar) and isinstance(b, VarChar)
        return a if a.length >= b.length else b
    return a
