"""Scalar value conventions: NULL sentinels, date encoding, parsing.

The columnar store (``repro.storage.column``) keeps each attribute in a
NumPy array.  NULLs are represented in-band with per-kind sentinels so that
vectorized kernels never need a separate validity bitmap on the hot path:

===========  =====================  =========================
kind         numpy dtype            NULL sentinel
===========  =====================  =========================
integer      int64                  ``INT_NULL`` (int64 min)
float        float64                ``nan``
date         int64 (proleptic       ``DATE_NULL`` (int64 min)
             Gregorian ordinal)
string       object                 ``None``
boolean      int8 (0/1)             ``-1``
===========  =====================  =========================

Dates are stored as ``datetime.date.toordinal()`` integers, which makes
date comparison, sorting, and grouping plain int64 operations — the same
trick GEMS uses to keep attribute data in flat typed arrays on the cluster.
"""

from __future__ import annotations

import datetime as _dt
import math

import numpy as np

INT_NULL: int = np.iinfo(np.int64).min
DATE_NULL: int = np.iinfo(np.int64).min
BOOL_NULL: int = -1

_EPOCH = _dt.date(1970, 1, 1)

# Accepted textual date layouts for CSV ingest, tried in order.
_DATE_FORMATS = ("%Y-%m-%d", "%Y/%m/%d", "%m/%d/%Y")


def parse_date(text: str) -> int:
    """Parse a textual date into its stored ordinal form.

    Accepts ISO ``YYYY-MM-DD`` (primary), ``YYYY/MM/DD`` and ``MM/DD/YYYY``.
    Raises ``ValueError`` for anything else.
    """
    text = text.strip()
    for fmt in _DATE_FORMATS:
        try:
            return _dt.datetime.strptime(text, fmt).date().toordinal()
        except ValueError:
            continue
    raise ValueError(f"invalid date literal: {text!r}")


def format_date(ordinal: int) -> str:
    """Format a stored date ordinal back to ISO ``YYYY-MM-DD``."""
    if ordinal == DATE_NULL:
        return "NULL"
    return _dt.date.fromordinal(int(ordinal)).isoformat()


def date_to_ordinal(d: _dt.date) -> int:
    """Encode a ``datetime.date`` for storage."""
    return d.toordinal()


def ordinal_to_date(ordinal: int) -> _dt.date:
    """Decode a stored date ordinal to a ``datetime.date``."""
    return _dt.date.fromordinal(int(ordinal))


def is_null(value: object) -> bool:
    """True if *value* is the NULL representation of any kind."""
    if value is None:
        return True
    if isinstance(value, float):
        return math.isnan(value)
    if isinstance(value, (int, np.integer)):
        return int(value) == INT_NULL
    return False
