"""Strongly-typed attribute system for the GraQL data model.

The paper's third design principle is that *all database elements are
strongly typed* (Section I).  Every table column ("attribute"), and hence
every vertex/edge attribute, carries one of the scalar types declared in the
DDL: ``varchar(n)``, ``integer``, ``float``, ``date`` (Appendix A), plus
``boolean`` as a convenience extension used by derived tables.

This package provides the type objects themselves, value parsing and
formatting (used by CSV ingest), NULL handling conventions for the columnar
store, and the comparability rules consumed by static query analysis
(Section III-A).
"""

from repro.dtypes.datatypes import (
    BOOLEAN,
    DATE,
    FLOAT,
    INTEGER,
    PARAM,
    Boolean,
    DataType,
    Date,
    Float,
    Integer,
    ParamPlaceholder,
    VarChar,
    comparable,
    common_type,
    parse_type_name,
)
from repro.dtypes.values import (
    DATE_NULL,
    INT_NULL,
    date_to_ordinal,
    format_date,
    is_null,
    ordinal_to_date,
    parse_date,
)

__all__ = [
    "DataType",
    "VarChar",
    "Integer",
    "Float",
    "Date",
    "Boolean",
    "INTEGER",
    "FLOAT",
    "DATE",
    "BOOLEAN",
    "PARAM",
    "ParamPlaceholder",
    "parse_type_name",
    "comparable",
    "common_type",
    "INT_NULL",
    "DATE_NULL",
    "is_null",
    "parse_date",
    "format_date",
    "date_to_ordinal",
    "ordinal_to_date",
]
