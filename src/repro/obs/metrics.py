"""Metrics registry: counters, gauges, histograms + Prometheus text export.

A :class:`MetricsRegistry` is a process-local, dependency-free metrics
store in the Prometheus data model: instruments are identified by a
metric *name* plus an optional immutable *label set*, and the registry
renders the classic text exposition format so the numbers can be pasted
into any Prometheus-compatible tooling (or just diffed in tests).

Design constraints (docs/OBSERVABILITY.md):

* **Cheap when idle** — instruments are plain attribute bumps; nothing
  allocates on the hot path once an instrument exists.
* **Resettable** — ``reset()`` zeroes every instrument without dropping
  registrations, so per-query deltas are easy to take in tests and the
  ``graql profile`` CLI.
* **Deterministic rendering** — output is sorted by (name, labels) so
  golden tests and diffs are stable.
* **Thread-safe** — the serving layer feeds one registry from many
  worker threads, so registration and every instrument mutation take a
  lock (per-instrument for the hot bump path, registry-wide for
  get-or-create / reset / render).

Metric names used by the engine are documented in docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import re
import threading
from typing import Mapping, Optional, Sequence

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: default histogram buckets, in seconds (latency-shaped, Prometheus-style)
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

#: size-shaped buckets (bytes, frontier sizes, row counts)
SIZE_BUCKETS: tuple[float, ...] = (
    1.0,
    10.0,
    100.0,
    1_000.0,
    10_000.0,
    100_000.0,
    1_000_000.0,
    10_000_000.0,
)

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: Optional[Mapping[str, str]]) -> LabelKey:
    if not labels:
        return ()
    for k in labels:
        if not _LABEL_RE.match(k):
            raise ValueError(f"invalid label name {k!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _render_labels(key: LabelKey) -> str:
    if not key:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in key)
    return "{" + inner + "}"


def _fmt(value: float) -> str:
    """Render a sample value: integral floats without the trailing .0."""
    if value == int(value):
        return str(int(value))
    return repr(float(value))


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        with self._lock:
            self.value += amount

    def reset(self) -> None:
        with self._lock:
            self.value = 0.0


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount

    def reset(self) -> None:
        with self._lock:
            self.value = 0.0


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics).

    ``buckets`` are the upper bounds of the finite buckets; an implicit
    ``+Inf`` bucket always exists.  ``bucket_counts[i]`` counts samples
    ``<= buckets[i]`` *non*-cumulatively here; rendering accumulates.
    """

    __slots__ = (
        "buckets", "bucket_counts", "inf_count", "sum", "count", "_lock"
    )

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bs = tuple(float(b) for b in buckets)
        if not bs:
            raise ValueError("histogram needs at least one bucket bound")
        if list(bs) != sorted(bs):
            raise ValueError("histogram buckets must be sorted ascending")
        self.buckets = bs
        self.bucket_counts = [0] * len(bs)
        self.inf_count = 0
        self.sum = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.sum += value
            self.count += 1
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    self.bucket_counts[i] += 1
                    return
            self.inf_count += 1

    def cumulative_counts(self) -> list[int]:
        """Counts for ``le=bound`` lines, cumulative, +Inf last."""
        out = []
        running = 0
        for c in self.bucket_counts:
            running += c
            out.append(running)
        out.append(running + self.inf_count)
        return out

    def reset(self) -> None:
        with self._lock:
            self.bucket_counts = [0] * len(self.buckets)
            self.inf_count = 0
            self.sum = 0.0
            self.count = 0


class MetricsRegistry:
    """Named instruments with label sets and a text exposition."""

    def __init__(self) -> None:
        # name -> (kind, help, {label_key: instrument})
        self._metrics: dict[str, tuple[str, str, dict[LabelKey, object]]] = {}
        # guards registration and iteration; instruments self-lock bumps
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Instrument factories (get-or-create)
    # ------------------------------------------------------------------
    def _get(
        self,
        kind: str,
        name: str,
        help_text: str,
        labels: Optional[Mapping[str, str]],
        factory,
    ):
        key = _label_key(labels)
        with self._lock:
            if name not in self._metrics:
                if not _NAME_RE.match(name):
                    raise ValueError(f"invalid metric name {name!r}")
                self._metrics[name] = (kind, help_text, {})
            existing_kind, _, series = self._metrics[name]
            if existing_kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {existing_kind}, "
                    f"not {kind}"
                )
            inst = series.get(key)
            if inst is None:
                inst = factory()
                series[key] = inst
            return inst

    def counter(
        self,
        name: str,
        help_text: str = "",
        labels: Optional[Mapping[str, str]] = None,
    ) -> Counter:
        return self._get("counter", name, help_text, labels, Counter)

    def gauge(
        self,
        name: str,
        help_text: str = "",
        labels: Optional[Mapping[str, str]] = None,
    ) -> Gauge:
        return self._get("gauge", name, help_text, labels, Gauge)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Optional[Mapping[str, str]] = None,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get(
            "histogram", name, help_text, labels, lambda: Histogram(buckets)
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Zero every instrument, keeping registrations and label sets."""
        with self._lock:
            for _, _, series in self._metrics.values():
                for inst in series.values():
                    inst.reset()  # type: ignore[attr-defined]

    def clear(self) -> None:
        """Drop every registration entirely."""
        with self._lock:
            self._metrics.clear()

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    # ------------------------------------------------------------------
    # Introspection / export
    # ------------------------------------------------------------------
    def value(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> float:
        """Current value of a counter/gauge (KeyError if absent)."""
        kind, _, series = self._metrics[name]
        inst = series[_label_key(labels)]
        if kind == "histogram":
            raise ValueError("use get_histogram() for histograms")
        return inst.value  # type: ignore[attr-defined]

    def get_histogram(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> Histogram:
        kind, _, series = self._metrics[name]
        if kind != "histogram":
            raise ValueError(f"metric {name!r} is a {kind}")
        return series[_label_key(labels)]  # type: ignore[return-value]

    def _items(self):
        """Stable (name, kind, help, [(key, inst)]) view for rendering."""
        with self._lock:
            return [
                (name, kind, help_text, sorted(series.items()))
                for name, (kind, help_text, series) in sorted(
                    self._metrics.items()
                )
            ]

    def snapshot(self) -> dict:
        """Plain-dict view (counters/gauges: value; histograms: sum/count)."""
        out: dict = {}
        for name, kind, _, items in self._items():
            for key, inst in items:
                label_txt = _render_labels(key)
                if kind == "histogram":
                    out[name + label_txt] = {
                        "sum": inst.sum,  # type: ignore[attr-defined]
                        "count": inst.count,  # type: ignore[attr-defined]
                    }
                else:
                    out[name + label_txt] = inst.value  # type: ignore[attr-defined]
        return out

    def render_prometheus(self) -> str:
        """The classic text exposition format, deterministically ordered."""
        lines: list[str] = []
        for name, kind, help_text, items in self._items():
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            for key, inst in items:
                if kind == "histogram":
                    cum = inst.cumulative_counts()  # type: ignore[attr-defined]
                    bounds = [
                        _fmt(b) for b in inst.buckets  # type: ignore[attr-defined]
                    ] + ["+Inf"]
                    for bound, c in zip(bounds, cum):
                        bkey = key + (("le", bound),)
                        lines.append(
                            f"{name}_bucket{_render_labels(bkey)} {c}"
                        )
                    lines.append(
                        f"{name}_sum{_render_labels(key)} "
                        f"{_fmt(inst.sum)}"  # type: ignore[attr-defined]
                    )
                    lines.append(
                        f"{name}_count{_render_labels(key)} "
                        f"{inst.count}"  # type: ignore[attr-defined]
                    )
                else:
                    lines.append(
                        f"{name}{_render_labels(key)} "
                        f"{_fmt(inst.value)}"  # type: ignore[attr-defined]
                    )
        return "\n".join(lines) + ("\n" if lines else "")
