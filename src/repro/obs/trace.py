"""Span-based tracing for query execution.

A :class:`Tracer` records a tree of timed :class:`Span`\\ s — one per
pipeline stage, atom, superstep, or whatever the instrumented code opens
via ``tracer.span(...)``.  It is deliberately tiny: spans nest through a
stack, times come from ``time.perf_counter``, and the finished tree
renders as an indented text profile or a list of dicts.

Tracing is **opt-in** (``QueryOptions(trace=True)``).  Instrumented code
holds ``tracer = None`` when tracing is off and guards every call site
with ``if tracer is not None`` — the off path costs one attribute test,
which is how the <5% overhead budget in benchmarks/bench_obs_overhead.py
is met.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Iterator, Optional


class Span:
    """One timed operation, possibly with children."""

    __slots__ = ("name", "attrs", "start_s", "end_s", "children")

    def __init__(self, name: str, attrs: Optional[dict[str, Any]] = None) -> None:
        self.name = name
        self.attrs: dict[str, Any] = attrs or {}
        self.start_s = time.perf_counter()
        self.end_s: Optional[float] = None
        self.children: list["Span"] = []

    def finish(self) -> None:
        if self.end_s is None:
            self.end_s = time.perf_counter()

    @property
    def duration_ms(self) -> float:
        end = self.end_s if self.end_s is not None else time.perf_counter()
        return (end - self.start_s) * 1000.0

    def set(self, **attrs: Any) -> None:
        self.attrs.update(attrs)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "duration_ms": round(self.duration_ms, 3),
            "attrs": dict(self.attrs),
            "children": [c.to_dict() for c in self.children],
        }

    def render(self, indent: int = 0) -> str:
        pad = "  " * indent
        attrs = (
            " " + " ".join(f"{k}={v}" for k, v in sorted(self.attrs.items()))
            if self.attrs
            else ""
        )
        lines = [f"{pad}{self.name}: {self.duration_ms:.3f}ms{attrs}"]
        for c in self.children:
            lines.append(c.render(indent + 1))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Span({self.name!r}, {self.duration_ms:.3f}ms, children={len(self.children)})"


class Tracer:
    """Builds a span tree; one tracer per traced statement."""

    def __init__(self) -> None:
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        s = Span(name, attrs or None)
        if self._stack:
            self._stack[-1].children.append(s)
        else:
            self.roots.append(s)
        self._stack.append(s)
        try:
            yield s
        finally:
            s.finish()
            self._stack.pop()

    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    def render(self) -> str:
        return "\n".join(r.render() for r in self.roots)

    def to_dicts(self) -> list[dict]:
        return [r.to_dict() for r in self.roots]

    def __repr__(self) -> str:
        return f"Tracer(roots={len(self.roots)})"
