"""The typed execution-options API.

:class:`QueryOptions` replaces the ad-hoc ``force_direction`` /
``force_strategy`` string kwargs that used to be threaded through
:class:`~repro.engine.session.Database`, ``Server.submit`` and
:func:`~repro.query.executor.execute_statement`.  One frozen dataclass
rides the whole pipeline — session -> server -> executor -> cluster —
so planner pins, timeout budgets and observability switches compose
instead of growing one kwarg per layer.

The legacy kwargs were deprecated for one release (with a
``DeprecationWarning`` shim) and are now **removed**: passing them to
any execution entry point raises :class:`TypeError` pointing at
``QueryOptions`` (policy: docs/OBSERVABILITY.md, migration table:
docs/API.md).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Mapping, Optional, Union

_DIRECTIONS = (None, "forward", "backward")


def _name_tuple(value: Union[None, str, tuple, list], field: str) -> tuple[str, ...]:
    """Normalize a hint field to a tuple of index names."""
    if value is None:
        return ()
    if isinstance(value, str):
        return (value,)
    if isinstance(value, (tuple, list)) and all(isinstance(v, str) for v in value):
        return tuple(value)
    raise ValueError(
        f"{field} must be an index name or a sequence of index names, "
        f"got {value!r}"
    )


@dataclass(frozen=True)
class Hints:
    """Planner hints: pin or forbid secondary-index access paths.

    ``use_index`` forces the named indexes to be used for any anchor step
    they are applicable to, overriding the cost model; ``no_index``
    forbids them (an empty tuple forbids nothing — pass every index name,
    or use :data:`NO_INDEXES`, to force full scans).  Index names are
    validated when the query is planned: an unknown name raises
    :class:`~repro.errors.PlanError` listing the indexes that do exist.
    """

    use_index: tuple[str, ...] = ()
    no_index: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "use_index", _name_tuple(self.use_index, "use_index")
        )
        object.__setattr__(
            self, "no_index", _name_tuple(self.no_index, "no_index")
        )
        overlap = set(self.use_index) & set(self.no_index)
        if overlap:
            raise ValueError(
                f"index name(s) in both use_index and no_index: "
                f"{', '.join(sorted(overlap))}"
            )

    def names(self) -> tuple[str, ...]:
        """Every index name the hints mention (for plan-time validation)."""
        return self.use_index + self.no_index

    def to_payload(self) -> dict[str, list[str]]:
        """Wire form (see :mod:`repro.net.protocol`)."""
        out: dict[str, list[str]] = {}
        if self.use_index:
            out["use_index"] = list(self.use_index)
        if self.no_index:
            out["no_index"] = list(self.no_index)
        return out
_STRATEGIES = (None, "set", "bindings")
_EXPLAIN_MODES = (False, True, "plan", "analyze")

#: the kwargs removed after their PR 2 deprecation cycle
REMOVED_KWARGS = ("force_direction", "force_strategy")

#: message used when a removed legacy kwarg is passed (the analyzer's
#: GQW140 lint points at the same migration)
REMOVED_MSG = (
    "the force_direction/force_strategy keyword arguments were removed; "
    "pass options=QueryOptions(direction=..., strategy=...) instead "
    "(docs/API.md)"
)


@dataclass(frozen=True)
class QueryOptions:
    """Execution options for one statement (or a whole script).

    Attributes
    ----------
    direction:
        Pin every atom's sweep direction (``"forward"`` / ``"backward"``)
        instead of letting the planner pick the cheaper one.  Used by the
        S3B ablation benchmarks.
    strategy:
        Pin the execution strategy (``"set"`` / ``"bindings"``) instead
        of the planner's choice.
    timeout:
        Per-statement wall-clock budget in seconds for the distributed
        backend; a statement that blows it degrades to single-node
        execution (see docs/RELIABILITY.md).
    trace:
        Capture a span tree of the execution
        (``StatementResult.profile.trace``).
    explain:
        ``"analyze"`` asks result renderers (``Database.explain_analyze``,
        the ``graql profile`` CLI) for profile-annotated plan output;
        ``"plan"``/``True`` for plan-only.  Execution itself always runs.
    profile:
        Attach a :class:`~repro.obs.profile.QueryProfile` to every
        ``StatementResult`` (stage timings, estimated vs. actual
        cardinalities, index hits, dist counters).  On by default; turn
        off to shave the last few microseconds from a hot loop.
    hints:
        Planner :class:`Hints` pinning or forbidding secondary-index
        access paths (validated at plan time).
    """

    direction: Optional[str] = None
    strategy: Optional[str] = None
    timeout: Optional[float] = None
    trace: bool = False
    explain: Union[bool, str] = False
    profile: bool = True
    hints: Optional[Hints] = None

    def __post_init__(self) -> None:
        if self.hints is not None and not isinstance(self.hints, Hints):
            raise ValueError(
                f"hints must be a Hints instance, got {type(self.hints).__name__}"
            )
        if self.direction not in _DIRECTIONS:
            raise ValueError(
                f"direction must be one of {_DIRECTIONS[1:]}, got "
                f"{self.direction!r}"
            )
        if self.strategy not in _STRATEGIES:
            raise ValueError(
                f"strategy must be one of {_STRATEGIES[1:]}, got "
                f"{self.strategy!r}"
            )
        if self.explain not in _EXPLAIN_MODES:
            raise ValueError(
                f"explain must be one of {_EXPLAIN_MODES}, got {self.explain!r}"
            )
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive (seconds)")

    # ------------------------------------------------------------------
    def with_timeout(self, timeout: Optional[float]) -> "QueryOptions":
        """This options set with a (possibly inherited) timeout filled in."""
        if timeout is None or self.timeout is not None:
            return self
        return replace(self, timeout=timeout)

    @property
    def wants_analyze(self) -> bool:
        return self.explain == "analyze"


#: the all-defaults instance reused on unconfigured calls (avoids one
#: allocation per statement on the hot path)
DEFAULT_OPTIONS = QueryOptions()


def resolve_options(options: Optional[QueryOptions] = None) -> QueryOptions:
    """Normalize an optional ``options`` argument.

    Plain calls (``options=None``) return the shared default instance so
    the hot path allocates nothing.  The legacy ``force_*`` merging
    branch is gone — see :func:`reject_legacy_kwargs`.
    """
    return options if options is not None else DEFAULT_OPTIONS


def reject_legacy_kwargs(kwargs: Mapping[str, Any], where: str) -> None:
    """Raise ``TypeError`` for any unexpected ``**kwargs``.

    The removed ``force_direction``/``force_strategy`` kwargs get a
    migration pointer at :class:`QueryOptions`; anything else gets the
    ordinary unexpected-keyword message.  No-op on empty kwargs, so
    entry points can accept ``**legacy`` at zero cost.
    """
    if not kwargs:
        return
    for name in kwargs:
        if name in REMOVED_KWARGS:
            raise TypeError(f"{where}: {REMOVED_MSG}")
    name = next(iter(kwargs))
    raise TypeError(f"{where}() got an unexpected keyword argument {name!r}")
