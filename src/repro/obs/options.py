"""The typed execution-options API.

:class:`QueryOptions` replaces the ad-hoc ``force_direction`` /
``force_strategy`` string kwargs that used to be threaded through
:class:`~repro.engine.session.Database`, ``Server.submit`` and
:func:`~repro.query.executor.execute_statement`.  One frozen dataclass
now rides the whole pipeline — session -> server -> executor -> cluster —
so planner pins, timeout budgets and observability switches compose
instead of growing one kwarg per layer.

The legacy kwargs still work for one release via
:func:`resolve_options`, which merges them into a ``QueryOptions`` and
emits a :class:`DeprecationWarning` (policy: docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace
from typing import Optional, Union

_DIRECTIONS = (None, "forward", "backward")
_STRATEGIES = (None, "set", "bindings")
_EXPLAIN_MODES = (False, True, "plan", "analyze")

#: message prefix used by the deprecation shim — the CI deprecation job
#: filters on it to keep intentional shim exercises out of -W error runs
DEPRECATION_MSG = (
    "force_direction/force_strategy keyword arguments are deprecated; "
    "pass options=QueryOptions(direction=..., strategy=...) instead"
)


@dataclass(frozen=True)
class QueryOptions:
    """Execution options for one statement (or a whole script).

    Attributes
    ----------
    direction:
        Pin every atom's sweep direction (``"forward"`` / ``"backward"``)
        instead of letting the planner pick the cheaper one.  Used by the
        S3B ablation benchmarks.
    strategy:
        Pin the execution strategy (``"set"`` / ``"bindings"``) instead
        of the planner's choice.
    timeout:
        Per-statement wall-clock budget in seconds for the distributed
        backend; a statement that blows it degrades to single-node
        execution (see docs/RELIABILITY.md).
    trace:
        Capture a span tree of the execution
        (``StatementResult.profile.trace``).
    explain:
        ``"analyze"`` asks result renderers (``Database.explain_analyze``,
        the ``graql profile`` CLI) for profile-annotated plan output;
        ``"plan"``/``True`` for plan-only.  Execution itself always runs.
    profile:
        Attach a :class:`~repro.obs.profile.QueryProfile` to every
        ``StatementResult`` (stage timings, estimated vs. actual
        cardinalities, index hits, dist counters).  On by default; turn
        off to shave the last few microseconds from a hot loop.
    """

    direction: Optional[str] = None
    strategy: Optional[str] = None
    timeout: Optional[float] = None
    trace: bool = False
    explain: Union[bool, str] = False
    profile: bool = True

    def __post_init__(self) -> None:
        if self.direction not in _DIRECTIONS:
            raise ValueError(
                f"direction must be one of {_DIRECTIONS[1:]}, got "
                f"{self.direction!r}"
            )
        if self.strategy not in _STRATEGIES:
            raise ValueError(
                f"strategy must be one of {_STRATEGIES[1:]}, got "
                f"{self.strategy!r}"
            )
        if self.explain not in _EXPLAIN_MODES:
            raise ValueError(
                f"explain must be one of {_EXPLAIN_MODES}, got {self.explain!r}"
            )
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive (seconds)")

    # ------------------------------------------------------------------
    def with_timeout(self, timeout: Optional[float]) -> "QueryOptions":
        """This options set with a (possibly inherited) timeout filled in."""
        if timeout is None or self.timeout is not None:
            return self
        return replace(self, timeout=timeout)

    @property
    def wants_analyze(self) -> bool:
        return self.explain == "analyze"


#: the all-defaults instance reused on unconfigured calls (avoids one
#: allocation per statement on the hot path)
DEFAULT_OPTIONS = QueryOptions()


def resolve_options(
    options: Optional[QueryOptions] = None,
    *,
    force_direction: Optional[str] = None,
    force_strategy: Optional[str] = None,
    _stacklevel: int = 3,
) -> QueryOptions:
    """Merge the deprecated ``force_*`` kwargs into a ``QueryOptions``.

    The legacy kwargs warn (``DeprecationWarning``) and only fill fields
    the explicit ``options`` left unset — an explicit ``options`` always
    wins.  Plain calls (no options, no legacy kwargs) return the shared
    default instance.
    """
    if force_direction is None and force_strategy is None:
        return options if options is not None else DEFAULT_OPTIONS
    warnings.warn(DEPRECATION_MSG, DeprecationWarning, stacklevel=_stacklevel)
    base = options if options is not None else DEFAULT_OPTIONS
    return replace(
        base,
        direction=base.direction if base.direction is not None else force_direction,
        strategy=base.strategy if base.strategy is not None else force_strategy,
    )
