"""Query observability: options, tracing, metrics, profiles.

The pieces (docs/OBSERVABILITY.md):

* :class:`QueryOptions` — the typed execution API
  (``direction`` / ``strategy`` / ``timeout`` / ``trace`` / ``explain``)
  that replaced the deprecated ``force_*`` kwargs;
* :class:`Tracer` / :class:`Span` — opt-in span trees over the
  parse -> typecheck -> plan -> execute pipeline;
* :class:`MetricsRegistry` — counters / gauges / histograms with a
  Prometheus text exposition;
* :class:`QueryProfile` — the per-statement record (stage timings,
  estimated vs. actual cardinalities, index hits, dist superstep
  counters) carried by every ``StatementResult``.
"""

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.options import (
    DEFAULT_OPTIONS,
    REMOVED_MSG,
    Hints,
    QueryOptions,
    reject_legacy_kwargs,
    resolve_options,
)
from repro.obs.profile import (
    AtomProfile,
    QueryProfile,
    StepProfile,
    record_profile_metrics,
)
from repro.obs.replication import ReplicationMetrics
from repro.obs.trace import Span, Tracer

__all__ = [
    "QueryOptions",
    "Hints",
    "resolve_options",
    "reject_legacy_kwargs",
    "DEFAULT_OPTIONS",
    "REMOVED_MSG",
    "Tracer",
    "Span",
    "MetricsRegistry",
    "ReplicationMetrics",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_BUCKETS",
    "SIZE_BUCKETS",
    "QueryProfile",
    "AtomProfile",
    "StepProfile",
    "record_profile_metrics",
]
