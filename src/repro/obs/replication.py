"""Replication observability: lag gauges, apply rates, failover spans.

One :class:`ReplicationMetrics` wraps a
:class:`~repro.obs.metrics.MetricsRegistry` with the replication metric
family (docs/REPLICATION.md, docs/OBSERVABILITY.md):

* ``graql_repl_lag_records{peer=...}`` — primary-side: records the
  primary has committed that the peer has not yet acknowledged.
* ``graql_repl_lag_bytes{peer=...}`` — primary-side: WAL bytes written
  past the peer's stream position.
* ``graql_repl_lag_seconds{peer=...}`` — primary-side: seconds since
  the peer's last acknowledgment (0 while fully caught up).
* ``graql_repl_records_streamed_total`` / ``graql_repl_acks_total`` /
  ``graql_repl_snapshots_sent_total`` — primary-side counters.
* ``graql_repl_records_applied_total`` /
  ``graql_repl_bytes_applied_total`` /
  ``graql_repl_snapshots_installed_total`` — replica-side apply rates.
* ``graql_repl_connected`` — replica-side: 1 while subscribed.
* ``graql_repl_promotions_total`` — bumped on promotion; the promotion
  itself is also recorded as a ``replication.promote`` span on the
  serving node's span ring.

Lag is reported in all three units deliberately: records answer "how
far behind", bytes answer "how much data is in flight", and seconds
answer "is the replica making progress at all" — a wedged applier
shows a flat record lag but a climbing seconds lag.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:
    from repro.obs.metrics import MetricsRegistry


class ReplicationMetrics:
    """The replication metric family over one registry."""

    def __init__(self, registry: "MetricsRegistry") -> None:
        self.registry = registry

    # ------------------------------------------------------------------
    # Primary side
    # ------------------------------------------------------------------
    def streamed(self, records: int = 1) -> None:
        self.registry.counter(
            "graql_repl_records_streamed_total",
            "WAL records streamed to replicas",
        ).inc(records)

    def snapshot_sent(self) -> None:
        self.registry.counter(
            "graql_repl_snapshots_sent_total",
            "full snapshots shipped for replica catch-up",
        ).inc()

    def acked(self, peer: str) -> None:
        self.registry.counter(
            "graql_repl_acks_total", "replication acknowledgments received",
        ).inc()

    def set_lag(
        self,
        peer: str,
        *,
        records: float,
        bytes_: float,
        seconds: float,
    ) -> None:
        labels = {"peer": peer}
        self.registry.gauge(
            "graql_repl_lag_records",
            "committed records the peer has not acknowledged",
            labels=labels,
        ).set(max(0.0, records))
        self.registry.gauge(
            "graql_repl_lag_bytes",
            "WAL bytes written past the peer's stream position",
            labels=labels,
        ).set(max(0.0, bytes_))
        self.registry.gauge(
            "graql_repl_lag_seconds",
            "seconds since the peer's last acknowledgment",
            labels=labels,
        ).set(max(0.0, seconds))

    def clear_lag(self, peer: str) -> None:
        """Zero the peer's lag gauges when it unsubscribes (the registry
        keeps registrations; a stale non-zero lag would read as an
        unhealthy replica that in fact left cleanly)."""
        self.set_lag(peer, records=0.0, bytes_=0.0, seconds=0.0)

    # ------------------------------------------------------------------
    # Replica side
    # ------------------------------------------------------------------
    def applied(self, records: int, bytes_: int) -> None:
        self.registry.counter(
            "graql_repl_records_applied_total",
            "streamed WAL records durably applied",
        ).inc(records)
        self.registry.counter(
            "graql_repl_bytes_applied_total",
            "streamed WAL bytes durably applied",
        ).inc(bytes_)

    def snapshot_installed(self) -> None:
        self.registry.counter(
            "graql_repl_snapshots_installed_total",
            "full snapshots installed during catch-up",
        ).inc()

    def set_connected(self, connected: bool) -> None:
        self.registry.gauge(
            "graql_repl_connected",
            "1 while this replica is subscribed to its primary",
        ).set(1.0 if connected else 0.0)

    def promoted(self) -> None:
        self.registry.counter(
            "graql_repl_promotions_total", "replica-to-primary promotions",
        ).inc()
