"""Query profiles: what a statement actually did, measured.

A :class:`QueryProfile` rides on every
:class:`~repro.query.executor.StatementResult` (unless
``QueryOptions(profile=False)``) and carries:

* **per-stage wall time** — substitute / typecheck / plan / execute /
  materialize on the single node, plus ``compile_ir`` when the statement
  went through :class:`~repro.engine.server.Server`;
* **per-step estimated vs. actual cardinality** — the planner's
  frontier-recurrence estimates next to the sizes the executor really
  produced, per atom and step, with both direction costs;
* **executor counters** — edge-index lookups and edges scanned;
* **distributed counters** (cluster runs) — per-superstep frontier
  sizes, bytes shipped, envelope/message counts, retries, failovers and
  injected faults;
* optionally a **span tree** (``QueryOptions(trace=True)``).

``render()`` is the ``explain analyze`` text; ``to_dict()`` is the
machine-readable schema documented in docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.obs.metrics import SIZE_BUCKETS, MetricsRegistry
from repro.obs.trace import Span

#: cap on retained per-superstep entries (bounds profile memory on
#: pathological queries; the totals keep counting past the cap)
MAX_SUPERSTEP_ENTRIES = 128


class StepProfile:
    """One step of one atom: estimate(s) vs. measured cardinality."""

    __slots__ = ("index", "kind", "detail", "est_forward", "est_backward", "actual")

    def __init__(
        self,
        index: int,
        kind: str,  # 'vertex' | 'edge' | 'regex'
        detail: str,
        est_forward: Optional[float] = None,
        est_backward: Optional[float] = None,
        actual: Optional[int] = None,
    ) -> None:
        self.index = index
        self.kind = kind
        self.detail = detail
        self.est_forward = est_forward
        self.est_backward = est_backward
        self.actual = actual

    def estimated(self, direction: str) -> Optional[float]:
        return self.est_forward if direction == "forward" else self.est_backward

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "kind": self.kind,
            "detail": self.detail,
            "est_forward": self.est_forward,
            "est_backward": self.est_backward,
            "actual": self.actual,
        }


class AtomProfile:
    """One atom's plan choice and per-step numbers."""

    __slots__ = (
        "index", "direction", "cost_forward", "cost_backward", "forced",
        "steps", "access", "access_est", "access_forced",
    )

    def __init__(
        self,
        index: int,
        direction: str,
        cost_forward: float,
        cost_backward: float,
        forced: Optional[str] = None,
        access: Optional[str] = None,
        access_est: Optional[float] = None,
        access_forced: Optional[str] = None,
    ) -> None:
        self.index = index
        self.direction = direction
        self.cost_forward = cost_forward
        self.cost_backward = cost_backward
        #: why the direction was not the cost winner ('options' | 'label-ref')
        self.forced = forced
        #: anchor access path, e.g. ``"index-seek(by_age)"`` or ``"scan"``
        self.access = access
        #: estimated candidate rows out of the access path
        self.access_est = access_est
        #: why the access path ignored the cost model (None | 'hint')
        self.access_forced = access_forced
        self.steps: list[StepProfile] = []

    def access_line(self) -> Optional[str]:
        """The ``access: index-seek(I) est=...`` fragment, or None."""
        if self.access is None:
            return None
        txt = f"access: {self.access}"
        if self.access_est is not None:
            txt += f" est={self.access_est:.1f}"
        if self.access_forced:
            txt += f" (forced by {self.access_forced})"
        return txt

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "direction": self.direction,
            "cost_forward": self.cost_forward,
            "cost_backward": self.cost_backward,
            "forced": self.forced,
            "access": self.access,
            "access_est": self.access_est,
            "access_forced": self.access_forced,
            "steps": [s.to_dict() for s in self.steps],
        }


class QueryProfile:
    """Everything measured while executing one statement."""

    def __init__(self, kind: str = "") -> None:
        self.kind = kind  # 'ddl' | 'ingest' | 'table' | 'subgraph'
        self.strategy: Optional[str] = None
        #: ordered (stage name, milliseconds)
        self.stages: list[tuple[str, float]] = []
        self.atoms: list[AtomProfile] = []
        #: edge-index lookups (one per index consulted per step)
        self.index_hits = 0
        #: edges touched by those lookups
        self.edges_scanned = 0
        #: secondary attribute-index seeks (one per anchor seek)
        self.attr_seeks = 0
        #: candidate rows those seeks produced
        self.attr_seek_rows = 0
        #: rows (table) or vertices (subgraph) in the result
        self.rows_out = 0
        #: distributed-execution counters; None for single-node runs
        self.dist: Optional[dict] = None
        #: pipelined-pair stats (chunks / peak rows); None when not fused
        self.pipeline: Optional[dict] = None
        #: root span of the trace (QueryOptions(trace=True) only)
        self.trace: Optional[Span] = None
        #: True when the serving layer answered from the plan cache —
        #: parse/typecheck were skipped (rendered as ``cache: hit``)
        self.cache_hit = False

    # ------------------------------------------------------------------
    # Stage timing
    # ------------------------------------------------------------------
    def add_stage(self, name: str, ms: float) -> None:
        self.stages.append((name, ms))

    @contextmanager
    def time_stage(self, name: str) -> Iterator[None]:
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.add_stage(name, (time.perf_counter() - t0) * 1000.0)

    def stage_ms(self, name: str) -> Optional[float]:
        for n, ms in self.stages:
            if n == name:
                return ms
        return None

    @property
    def total_ms(self) -> float:
        return sum(ms for _, ms in self.stages)

    # ------------------------------------------------------------------
    # Dist counters
    # ------------------------------------------------------------------
    def ensure_dist(self) -> dict:
        if self.dist is None:
            self.dist = {
                "supersteps": 0,
                "messages": 0,
                "bytes": 0,
                "retries": 0,
                "failovers": 0,
                "backoff_ms": 0.0,
                "extra_messages": 0,
                "extra_bytes": 0,
                "faults": {},
                "steps": [],  # per-superstep entries (capped)
            }
        return self.dist

    def record_superstep(
        self,
        phase: str,
        frontier: int,
        messages: int,
        nbytes: int,
        retries: int = 0,
    ) -> None:
        d = self.ensure_dist()
        d["supersteps"] += 1
        d["messages"] += messages
        d["bytes"] += nbytes
        d["retries"] += retries
        if len(d["steps"]) < MAX_SUPERSTEP_ENTRIES:
            d["steps"].append(
                {
                    "phase": phase,
                    "frontier": frontier,
                    "messages": messages,
                    "bytes": nbytes,
                    "retries": retries,
                }
            )

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render(self) -> str:
        """The ``explain analyze`` text block for this statement."""
        head = f"PROFILE (kind={self.kind or '?'}"
        if self.strategy:
            head += f", strategy={self.strategy}"
        head += f", rows={self.rows_out})"
        lines = [head]
        if self.cache_hit:
            lines.append("  cache: hit")
        if self.stages:
            stage_txt = " ".join(f"{n}={ms:.3f}ms" for n, ms in self.stages)
            lines.append(f"  stages: {stage_txt} total={self.total_ms:.3f}ms")
        for ap in self.atoms:
            forced = f", forced by {ap.forced}" if ap.forced else ""
            lines.append(
                f"  atom {ap.index}: direction={ap.direction} "
                f"(cost fwd={ap.cost_forward:.1f}, bwd={ap.cost_backward:.1f}"
                f"{forced})"
            )
            access_line = ap.access_line()
            if access_line is not None:
                lines.append(f"    {access_line}")
            for sp in ap.steps:
                est = sp.estimated(ap.direction)
                est_txt = f"{est:.1f}" if est is not None else "?"
                actual_txt = str(sp.actual) if sp.actual is not None else "?"
                lines.append(
                    f"    step {sp.index} {sp.kind:<6} {sp.detail:<28} "
                    f"est={est_txt:>10} actual={actual_txt:>8}"
                )
        if self.index_hits or self.edges_scanned:
            lines.append(
                f"  index: {self.index_hits} lookups, "
                f"{self.edges_scanned} edges scanned"
            )
        if self.attr_seeks:
            lines.append(
                f"  attr-index: {self.attr_seeks} seeks, "
                f"{self.attr_seek_rows} candidate rows"
            )
        if self.pipeline is not None:
            lines.append(
                "  pipeline: chunks={chunks} paths={total_paths} "
                "peak_partial_rows={peak_partial_rows}".format(**self.pipeline)
            )
        if self.dist is not None:
            d = self.dist
            lines.append(
                f"  dist: supersteps={d['supersteps']} messages={d['messages']} "
                f"bytes={d['bytes']} retries={d['retries']} "
                f"failovers={d['failovers']}"
            )
            for i, s in enumerate(d["steps"]):
                lines.append(
                    f"    superstep {i} [{s['phase']}]: frontier={s['frontier']} "
                    f"messages={s['messages']} bytes={s['bytes']}"
                    + (f" retries={s['retries']}" if s["retries"] else "")
                )
            if d.get("faults"):
                faults = " ".join(
                    f"{k}={v}" for k, v in sorted(d["faults"].items())
                )
                lines.append(f"    faults: {faults}")
        if self.trace is not None:
            lines.append("  trace:")
            lines.append(
                "\n".join("    " + l for l in self.trace.render().splitlines())
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "kind": str(self.kind),
            "strategy": self.strategy,
            "cache_hit": self.cache_hit,
            "stages": [{"name": n, "ms": round(ms, 3)} for n, ms in self.stages],
            "atoms": [a.to_dict() for a in self.atoms],
            "index_hits": self.index_hits,
            "edges_scanned": self.edges_scanned,
            "attr_seeks": self.attr_seeks,
            "attr_seek_rows": self.attr_seek_rows,
            "rows_out": self.rows_out,
            "dist": self.dist,
            "pipeline": self.pipeline,
            "trace": self.trace.to_dict() if self.trace is not None else None,
        }

    def __repr__(self) -> str:
        return (
            f"QueryProfile(kind={self.kind!r}, strategy={self.strategy!r}, "
            f"stages={len(self.stages)}, total={self.total_ms:.3f}ms)"
        )


# ----------------------------------------------------------------------
# Registry recording
# ----------------------------------------------------------------------

def record_profile_metrics(registry: MetricsRegistry, profile: QueryProfile) -> None:
    """Fold one statement's profile into a metrics registry.

    Called at the session/server boundary after each statement, so every
    layer contributes through the profile instead of threading the
    registry through executor internals (metric names:
    docs/OBSERVABILITY.md).
    """
    registry.counter(
        "graql_statements_total",
        "statements executed",
        labels={"kind": profile.kind or "unknown"},
    ).inc()
    for name, ms in profile.stages:
        registry.histogram(
            "graql_stage_seconds",
            "per-stage wall time",
            labels={"stage": name},
        ).observe(ms / 1000.0)
    if profile.index_hits:
        registry.counter(
            "graql_index_hits_total", "edge-index lookups"
        ).inc(profile.index_hits)
    if profile.edges_scanned:
        registry.counter(
            "graql_edges_scanned_total", "edges touched by index lookups"
        ).inc(profile.edges_scanned)
    if profile.attr_seeks:
        registry.counter(
            "graql_index_seeks_total", "secondary attribute-index seeks"
        ).inc(profile.attr_seeks)
        registry.counter(
            "graql_index_seek_rows_total",
            "candidate rows produced by attribute-index seeks",
        ).inc(profile.attr_seek_rows)
    registry.histogram(
        "graql_rows_out",
        "result rows (tables) or vertices (subgraphs)",
        buckets=SIZE_BUCKETS,
    ).observe(float(profile.rows_out))
    if profile.strategy:
        registry.counter(
            "graql_plans_total",
            "planned graph selects",
            labels={"strategy": profile.strategy},
        ).inc()
    d = profile.dist
    if d is not None:
        registry.counter(
            "graql_dist_supersteps_total", "communication supersteps"
        ).inc(d["supersteps"])
        registry.counter(
            "graql_dist_messages_total", "remote message envelopes"
        ).inc(d["messages"])
        registry.counter(
            "graql_dist_bytes_total", "payload+envelope bytes shipped"
        ).inc(d["bytes"])
        registry.counter(
            "graql_dist_retries_total", "superstep retries"
        ).inc(d["retries"])
        registry.counter(
            "graql_dist_failovers_total", "partition failovers"
        ).inc(d["failovers"])
        hist = registry.histogram(
            "graql_dist_frontier_size",
            "per-superstep frontier sizes",
            buckets=SIZE_BUCKETS,
        )
        for s in d["steps"]:
            hist.observe(float(s["frontier"]))
        for fault, count in d.get("faults", {}).items():
            if isinstance(count, (int, float)) and count:
                registry.counter(
                    "graql_dist_faults_total",
                    "injected faults observed",
                    labels={"fault": fault},
                ).inc(count)
