"""Exception hierarchy for the GraQL/GEMS reproduction.

Every error raised by the library derives from :class:`GraQLError` so
applications can catch one type.  The hierarchy mirrors the stages of the
GEMS pipeline described in Section III of the paper: lexing/parsing on the
client, static analysis on the front-end server (catalog-based type
checking), and execution on the backend cluster.
"""

from __future__ import annotations


class GraQLError(Exception):
    """Base class for all errors raised by this library.

    Every error may carry a stable diagnostic ``code`` (``GQL0xx``, see
    docs/ANALYSIS.md) and a 1-based source position (``line``/``column``,
    0 when unknown).  :meth:`with_pos` attaches a position after the fact
    without changing the exception type — the static analyzer uses it to
    point errors raised deep inside the typechecker at the offending
    token.
    """

    #: stable diagnostic code (docs/ANALYSIS.md); None when unassigned
    code: "str | None" = None

    def with_pos(self, line: int, column: int) -> "GraQLError":
        """Attach a source position, appending ``(line L, column C)`` to
        the message once.  A position already present wins."""
        if line and not getattr(self, "line", 0):
            self.line = line
            self.column = column
            self.args = (f"{self.args[0]} (line {line}, column {column})",) + self.args[1:]
        return self

    def with_code(self, code: str) -> "GraQLError":
        """Attach a diagnostic code (existing code wins)."""
        if self.code is None:
            self.code = code
        return self


class LexError(GraQLError):
    """Raised when the lexer encounters an invalid character sequence.

    Carries ``line`` and ``column`` (1-based) of the offending position.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class ParseError(GraQLError):
    """Raised when the parser cannot build an AST from a token stream."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class TypeCheckError(GraQLError):
    """Raised by static query analysis (paper Section III-A).

    Examples: comparing a date to a float, using a table name where a
    vertex type is required, ill-formed path queries (vertex step followed
    by a vertex step), or referencing undeclared attributes.

    Carries an optional 1-based ``line``/``column`` (0 = unknown), same
    convention as :class:`ParseError`.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)
        self.line = line
        self.column = column


class CatalogError(GraQLError):
    """Raised for catalog violations: duplicate or unknown database objects."""


class IngestError(GraQLError):
    """Raised when CSV ingest fails (missing file, arity or type mismatch)."""


class ExecutionError(GraQLError):
    """Raised by the backend when a statically-valid query cannot execute."""


class PlanError(GraQLError):
    """Raised when the planner cannot produce a physical plan for a query."""


class IRError(GraQLError):
    """Raised when binary IR encoding, decoding or verification fails.

    ``offset`` positions the error at the offending byte of the IR
    stream (None when not applicable); ``instruction`` names the IR
    construct being decoded/verified when known.
    """

    def __init__(
        self,
        message: str,
        offset: "int | None" = None,
        instruction: "str | None" = None,
    ) -> None:
        where = ""
        if instruction is not None:
            where += f" in {instruction}"
        if offset is not None:
            where += f" at byte offset {offset}"
        super().__init__(f"{message}{where}" if where else message)
        self.offset = offset
        self.instruction = instruction


class AccessError(GraQLError):
    """Raised by the front-end server when a user lacks permission."""


class WalError(GraQLError):
    """Raised by the durable storage engine (docs/DURABILITY.md).

    Covers write-ahead-log append/fsync failures, unusable database
    directories, and corrupt files where corruption is *not* a normal
    recovery outcome (e.g. no valid checkpoint can be loaded at all).
    After an append or fsync failure the store poisons itself: the
    failed record may be torn on disk, so acknowledging later writes
    would break the committed-prefix guarantee — every subsequent
    mutation raises ``WalError`` until the database is re-opened
    (which truncates the torn tail).
    """


class ClosedError(ExecutionError):
    """Raised when a statement is submitted to a closed database.

    ``Database.close()`` (or leaving a ``with`` block) drains the
    serving layer's worker pool and flushes the WAL; afterwards every
    submission fails fast with this error instead of deadlocking on a
    shut-down pool at interpreter exit.
    """


class ProtocolError(GraQLError):
    """Raised by the network layer (docs/NETWORK.md).

    Covers malformed wire frames (bad magic, oversized length prefix,
    checksum mismatch, undecodable payload), protocol-version mismatch,
    and a peer that vanished mid-conversation (EOF inside a frame, a
    reset connection).  A frame that fails its checksum is *rejected*,
    never partially applied — the framing discipline mirrors the WAL's:
    nothing past the first bad byte is ever interpreted.
    """


class ServerBusy(GraQLError):
    """Raised by the serving layer's admission controller.

    The statement was *not* executed: either the server-wide bounded
    queue is full or the submitting user already has their maximum
    number of statements in flight.  Clients should back off and retry;
    rejections are counted in the server's
    :class:`~repro.obs.MetricsRegistry`
    (``graql_admission_rejected_total``).

    ``reason`` is ``"queue_full"`` or ``"user_limit"``.
    """

    def __init__(self, message: str, reason: str = "queue_full") -> None:
        super().__init__(message)
        self.reason = reason


# ----------------------------------------------------------------------
# Replication taxonomy (docs/REPLICATION.md)
# ----------------------------------------------------------------------

class NotPrimary(GraQLError):
    """Raised when a write is submitted to a read-only replica.

    The statement was *not* executed.  ``primary`` carries the
    ``graql://`` URL of the node this replica streams from (None when
    the replica has lost track of its primary, e.g. mid-failover);
    :class:`~repro.net.RemoteConnection` follows it as a redirect and
    retries the write there — a NotPrimary rejection is always safe to
    retry because nothing ran.
    """

    def __init__(self, message: str, primary: "str | None" = None) -> None:
        if primary:
            message = f"{message} (primary: {primary})"
        super().__init__(message)
        self.primary = primary


class ReplicaStale(GraQLError):
    """Raised when a streamed WAL record fails the epoch fence.

    A promoted replica bumps the replication epoch; records stamped
    with a lower epoch can only come from a deposed primary that kept
    writing after the failover, and applying them would fork history.
    ``seq`` / ``repl_epoch`` identify the rejected record.
    """

    def __init__(
        self,
        message: str,
        seq: "int | None" = None,
        repl_epoch: "int | None" = None,
    ) -> None:
        super().__init__(message)
        self.seq = seq
        self.repl_epoch = repl_epoch


class PromotionError(GraQLError):
    """Raised when a node cannot be promoted to primary.

    Promotion requires a replica whose applier has replayed its tail;
    promoting a node that is already primary, has no durable store, or
    cannot persist the bumped epoch fails with this.
    """


# ----------------------------------------------------------------------
# Backend fault taxonomy (simulated cluster, docs/RELIABILITY.md)
# ----------------------------------------------------------------------

class BackendError(GraQLError):
    """Runtime failure of the (simulated) backend cluster.

    Carries ``retryable``: retryable failures (a lost message, a worker
    that fail-stopped but has live replicas) are handled by superstep
    retry; fatal ones (partition lost, timeout, retry budget exhausted)
    escalate to the degradation policy in :class:`repro.dist.Cluster`.
    """

    retryable = False

    def __init__(self, message: str, retryable: bool | None = None) -> None:
        super().__init__(message)
        if retryable is not None:
            self.retryable = retryable


class WorkerFailed(BackendError):
    """A worker fail-stopped (injected or simulated).

    ``worker`` is the failed rank when known; ``partition`` the logical
    partition that became unreachable (set when *all* replicas are dead,
    in which case the error is fatal: the data is gone).
    """

    retryable = True

    def __init__(
        self,
        message: str,
        worker: int | None = None,
        partition: int | None = None,
        retryable: bool | None = None,
    ) -> None:
        super().__init__(message, retryable)
        self.worker = worker
        self.partition = partition


class CommFailure(BackendError):
    """A message was dropped or arrived corrupted (checksum mismatch).

    Detected at the superstep barrier; always retryable — re-running the
    superstep resends the lost traffic.
    """

    retryable = True


class QueryTimeout(BackendError):
    """A statement exceeded its wall-clock timeout budget. Fatal for the
    distributed attempt; the degradation policy may still fall back."""

    retryable = False


class DegradedMode(BackendError):
    """Distributed execution is unavailable (circuit breaker open or a
    fatal backend error) and degraded single-node fallback is disabled."""

    retryable = False


def is_retryable(exc: BaseException) -> bool:
    """True when *exc* is a transient backend fault worth retrying."""
    return isinstance(exc, BackendError) and exc.retryable
