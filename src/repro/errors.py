"""Exception hierarchy for the GraQL/GEMS reproduction.

Every error raised by the library derives from :class:`GraQLError` so
applications can catch one type.  The hierarchy mirrors the stages of the
GEMS pipeline described in Section III of the paper: lexing/parsing on the
client, static analysis on the front-end server (catalog-based type
checking), and execution on the backend cluster.
"""

from __future__ import annotations


class GraQLError(Exception):
    """Base class for all errors raised by this library."""


class LexError(GraQLError):
    """Raised when the lexer encounters an invalid character sequence.

    Carries ``line`` and ``column`` (1-based) of the offending position.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class ParseError(GraQLError):
    """Raised when the parser cannot build an AST from a token stream."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class TypeCheckError(GraQLError):
    """Raised by static query analysis (paper Section III-A).

    Examples: comparing a date to a float, using a table name where a
    vertex type is required, ill-formed path queries (vertex step followed
    by a vertex step), or referencing undeclared attributes.
    """


class CatalogError(GraQLError):
    """Raised for catalog violations: duplicate or unknown database objects."""


class IngestError(GraQLError):
    """Raised when CSV ingest fails (missing file, arity or type mismatch)."""


class ExecutionError(GraQLError):
    """Raised by the backend when a statically-valid query cannot execute."""


class PlanError(GraQLError):
    """Raised when the planner cannot produce a physical plan for a query."""


class IRError(GraQLError):
    """Raised when binary IR encoding or decoding fails."""


class AccessError(GraQLError):
    """Raised by the front-end server when a user lacks permission."""


# ----------------------------------------------------------------------
# Backend fault taxonomy (simulated cluster, docs/RELIABILITY.md)
# ----------------------------------------------------------------------

class BackendError(GraQLError):
    """Runtime failure of the (simulated) backend cluster.

    Carries ``retryable``: retryable failures (a lost message, a worker
    that fail-stopped but has live replicas) are handled by superstep
    retry; fatal ones (partition lost, timeout, retry budget exhausted)
    escalate to the degradation policy in :class:`repro.dist.Cluster`.
    """

    retryable = False

    def __init__(self, message: str, retryable: bool | None = None) -> None:
        super().__init__(message)
        if retryable is not None:
            self.retryable = retryable


class WorkerFailed(BackendError):
    """A worker fail-stopped (injected or simulated).

    ``worker`` is the failed rank when known; ``partition`` the logical
    partition that became unreachable (set when *all* replicas are dead,
    in which case the error is fatal: the data is gone).
    """

    retryable = True

    def __init__(
        self,
        message: str,
        worker: int | None = None,
        partition: int | None = None,
        retryable: bool | None = None,
    ) -> None:
        super().__init__(message, retryable)
        self.worker = worker
        self.partition = partition


class CommFailure(BackendError):
    """A message was dropped or arrived corrupted (checksum mismatch).

    Detected at the superstep barrier; always retryable — re-running the
    superstep resends the lost traffic.
    """

    retryable = True


class QueryTimeout(BackendError):
    """A statement exceeded its wall-clock timeout budget. Fatal for the
    distributed attempt; the degradation policy may still fall back."""

    retryable = False


class DegradedMode(BackendError):
    """Distributed execution is unavailable (circuit breaker open or a
    fatal backend error) and degraded single-node fallback is disabled."""

    retryable = False


def is_retryable(exc: BaseException) -> bool:
    """True when *exc* is a transient backend fault worth retrying."""
    return isinstance(exc, BackendError) and exc.retryable
